//! # trading-networks
//!
//! Facade crate for the `trading-networks` workspace: a simulation toolkit
//! for low-latency trading-network design, reproducing *"Network Design
//! Considerations for Trading Systems"* (HotNets '24).
//!
//! Each member crate is re-exported under a short module name; see the
//! README for the architecture overview and `DESIGN.md` for the experiment
//! index.

pub use tn_cloud as cloud;
pub use tn_core as core;
pub use tn_fault as fault;
pub use tn_feed as feed;
pub use tn_lab as lab;
pub use tn_market as market;
pub use tn_netdev as netdev;
pub use tn_sim as sim;
pub use tn_stats as stats;
pub use tn_switch as switch;
pub use tn_topo as topo;
pub use tn_trading as trading;
pub use tn_wire as wire;
