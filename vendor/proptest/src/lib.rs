//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest's API the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple strategies, [`prop_oneof!`],
//! `Just`, `any`, [`collection::vec`], and a tiny [`string::string_regex`].
//!
//! Differences from real proptest, on purpose:
//! - **Fully deterministic**: the RNG seed is derived from the test name,
//!   so every run explores the identical case sequence. That matches this
//!   repository's determinism-first policy (see `tn-audit`).
//! - **No shrinking**: a failure reports the case index and message; the
//!   deterministic seed makes it reproducible without persisted regression
//!   files (`.proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

/// A test-case failure message produced by the `prop_assert*` macros.
pub type TestCaseError = String;

pub mod test_runner {
    //! Deterministic case loop.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = SmallRng;

    /// Number of cases per property (override with `PROPTEST_CASES`).
    fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Run `body` for the configured number of cases with a seed derived
    /// from `name`. Panics (failing the enclosing `#[test]`) on the first
    /// `Err` with the case index, so the failure is reproducible.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), crate::TestCaseError>,
    {
        let seed = fnv1a(name.as_bytes());
        let n = cases();
        for case in 0..n {
            let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(case) << 32));
            if let Err(msg) = body(&mut rng) {
                panic!(
                    "proptest '{name}' failed at case {case}/{n} (seed {seed:#x}): {msg}\n\
                     (cases are deterministic; rerunning reproduces this failure)"
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// Something that can produce values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    /// Produce arbitrary values of a primitive type.
    pub fn any<T: ArbPrimitive>() -> Any<T> {
        Any(PhantomData)
    }

    /// Primitives supported by [`any`].
    pub trait ArbPrimitive: Sized {
        /// Draw an unconstrained value.
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbPrimitive> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    macro_rules! arb_prim {
        ($($t:ty),+ $(,)?) => {$(
            impl ArbPrimitive for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    rand::StandardSample::sample(rng)
                }
            }
        )+};
    }
    arb_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies.

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod string {
    //! A tiny regex-shaped string strategy.

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from [`string_regex`] on unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    struct Atom {
        /// Inclusive char ranges to choose from.
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a small regex subset:
    /// sequences of literal chars or `[a-zX]` classes, each optionally
    /// followed by `{m}`, `{m,n}`, `?`, `+`, or `*` (unbounded repeats
    /// are capped at 8).
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    /// Parse `pattern` into a [`RegexStrategy`].
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error(format!("unclosed class in {pattern:?}")))?
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    ranges
                }
                '\\' => {
                    i += 1;
                    if i >= chars.len() {
                        return Err(Error(format!("dangling escape in {pattern:?}")));
                    }
                    let c = chars[i];
                    i += 1;
                    vec![(c, c)]
                }
                c if "(){}?*+|.^$".contains(c) => {
                    return Err(Error(format!(
                        "unsupported regex construct {c:?} in {pattern:?}"
                    )))
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or_else(|| Error(format!("unclosed repeat in {pattern:?}")))?
                            + i;
                        let spec: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        let parts: Vec<&str> = spec.split(',').collect();
                        let lo: usize = parts[0]
                            .trim()
                            .parse()
                            .map_err(|_| Error(format!("bad repeat {spec:?}")))?;
                        let hi = if parts.len() > 1 {
                            parts[1]
                                .trim()
                                .parse()
                                .map_err(|_| Error(format!("bad repeat {spec:?}")))?
                        } else {
                            lo
                        };
                        (lo, hi)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error(format!("inverted repeat bounds in {pattern:?}")));
            }
            atoms.push(Atom { ranges, min, max });
        }
        Ok(RegexStrategy { atoms })
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let count = rng.gen_range(atom.min..=atom.max);
                let total: u32 = atom
                    .ranges
                    .iter()
                    .map(|&(a, b)| b as u32 - a as u32 + 1)
                    .sum();
                for _ in 0..count {
                    let mut pick = rng.gen_range(0..total);
                    for &(a, b) in &atom.ranges {
                        let span = b as u32 - a as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(a as u32 + pick).unwrap_or(a));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that samples the strategies and runs the body for a
/// fixed number of cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fallible assertion: fails the current proptest case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                __a, __b, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __a
            ));
        }
    }};
}

/// Uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
