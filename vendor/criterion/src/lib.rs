//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendors just
//! enough of criterion's API for the workspace's benches to compile and
//! run: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], `Bencher::iter` / `iter_batched`, [`black_box`],
//! [`Throughput`], and [`BatchSize`]. Timing is a simple median over a
//! fixed number of wall-clock samples — adequate for regression spotting,
//! not a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` amortizes per timing batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup for every iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample takes roughly a millisecond.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over values produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / u128::from(self.iters_per_sample))
            .collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

const SAMPLES: usize = 11;

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.median_ns();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / (ns as f64 / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if ns > 0 => {
            format!("  {:.0} elem/s", n as f64 / (ns as f64 / 1e9))
        }
        _ => String::new(),
    };
    println!("bench {name:<40} median {ns:>12} ns/iter{rate}");
}

/// Top-level benchmark registry (stand-in for criterion's).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept and ignore CLI arguments (filtering is not implemented).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Ignored (the stub uses a fixed sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name), &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
