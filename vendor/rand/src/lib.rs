//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the narrow slice of `rand` 0.8 it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, the same generator real `rand` 0.8
//! uses on 64-bit targets), the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, and uniform range sampling for the integer and float types the
//! simulator draws.
//!
//! Deliberate omission: there is **no** `from_entropy`, `thread_rng`, or
//! OS-randomness path. Every generator in this workspace must be
//! constructed from an explicit seed — that is a determinism requirement
//! (see `tn-audit`'s `det-unseeded-rng` lint), not a shortcut.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (matches `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 sequence, truncated to 32-bit words exactly the
            // way rand_core::SeedableRng::seed_from_u64 does it.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (multiply-based, as
    /// in `rand`'s `Standard` for floats).
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, bound)` via Lemire's widening-multiply
/// rejection method.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any word is uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit
    /// `SmallRng`. Fast, small, and entirely determined by its seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point for xoshiro; nudge it the
            // way rand_xoshiro does.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0x2545F4914F6CDD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<f64> = (0..8).map(|_| c.gen()).collect();
        let mut d = SmallRng::seed_from_u64(43);
        assert_eq!(same, (0..8).map(|_| d.gen::<f64>()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
