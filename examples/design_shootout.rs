//! Design shootout: run the identical firm + market over all three §4
//! designs and compare wire-to-wire reaction latency.
//!
//! ```sh
//! cargo run --release --example design_shootout [-- --cloud-fairness]
//! ```
//!
//! Expected shape (the paper's): the Layer-1 fabric beats commodity
//! switches on the network component by roughly two orders of magnitude,
//! the cloud's equalization constant puts it milliseconds behind both,
//! and the §5 FPGA hybrid keeps L1-class latency *with* multicast
//! semantics.
//!
//! `--cloud-fairness` swaps the cloud's magic equalization constant for
//! the real tn-cloud mechanism set (`CloudFairnessSpec::demo()`: relay
//! overlay + delay-equalizer gates + order sequencer) — the report grows
//! a `fairness` section and the cloud pays its hold/ceiling openly.

use trading_networks::core::design::{
    CloudDesign, FpgaHybrid, LayerOneSwitches, TradingNetworkDesign, TraditionalSwitches,
};
use trading_networks::core::ScenarioConfig;
use trading_networks::topo::{CloudConfig, CloudFairnessSpec};

fn main() {
    let scenario = ScenarioConfig::small(7);
    let cloud = CloudDesign {
        cloud: CloudConfig {
            fairness: if std::env::args().any(|a| a == "--cloud-fairness") {
                CloudFairnessSpec::demo()
            } else {
                CloudFairnessSpec::default()
            },
            ..CloudConfig::default()
        },
    };
    println!(
        "Scenario: {} events/s, {} strategies, software path {}",
        scenario.background_rate,
        scenario.strategies,
        scenario.software_path()
    );
    println!();

    let designs: Vec<Box<dyn TradingNetworkDesign>> = vec![
        Box::new(TraditionalSwitches::default()),
        Box::new(cloud),
        Box::new(LayerOneSwitches::default()),
        Box::new(FpgaHybrid::default()),
    ];

    let mut rows = Vec::new();
    for d in &designs {
        let r = d.run(&scenario);
        println!("{}", r.summary());
        println!();
        rows.push(r);
    }

    println!(
        "{:<34} {:>12} {:>16} {:>14} {:>8}",
        "design", "react min", "median reaction", "network time", "net %"
    );
    for r in &rows {
        println!(
            "{:<34} {:>12} {:>16} {:>14} {:>7.1}%",
            r.design,
            r.reaction.min.to_string(),
            r.reaction.median.to_string(),
            r.network_time().to_string(),
            r.network_share * 100.0
        );
    }

    // The uncongested (minimum) path isolates pure switching: identical
    // software and serialization cancel in the difference.
    let d1 = &rows[0];
    let d3 = &rows[2];
    println!(
        "\nswitching removed by the L1 fabric on the uncongested path: {}",
        d1.reaction.min.saturating_sub(d3.reaction.min)
    );
}
