//! Metro arbitrage: aggregate market data across two co-location
//! facilities and measure what the §2 microwave links buy.
//!
//! ```sh
//! cargo run --release --example metro_arbitrage
//! ```
//!
//! Two exchanges trade the same instruments in different colos (Figure
//! 1(a)'s metro triangle). The firm sits in colo 0: the remote exchange's
//! feed crosses the metro circuit, gets normalized, and merges with the
//! local feed into a cross-market arbitrage strategy that fires when one
//! exchange's bid crosses the other's ask. Running the identical scenario
//! over fiber and over microwave shows the speed-of-light edge — the
//! reason firms run rain-faded microwave at all.

use trading_networks::fault::{FaultConnect, LinkSpec};
use trading_networks::feed::SubscriptionSet;
use trading_networks::market::{Exchange, ExchangeConfig, PartitionScheme, SymbolDirectory};
use trading_networks::sim::{PortId, SimTime, Simulator};
use trading_networks::switch::l1s::{L1Config, L1Switch};
use trading_networks::topo::metro::{CircuitKind, MetroRegion};
use trading_networks::trading::{
    normalizer, strategy, CrossMarketArb, Normalizer, NormalizerConfig, Strategy, StrategyConfig,
};
use trading_networks::wire::Symbol;

struct Outcome {
    opportunities: u64,
    records: u64,
    median_feed_latency: SimTime,
}

fn run(kind: CircuitKind) -> Outcome {
    let metro = MetroRegion::nj_triangle();
    let dir = SymbolDirectory::synthetic(30);
    let symbols: Vec<Symbol> = dir.instruments().iter().map(|i| i.symbol).collect();
    let partitions = 4u16;
    let mut sim = Simulator::new(11);

    // Exchanges in colo 0 (local) and colo 1 (remote).
    let mut mk_exchange = |id: u8, mcast_base: u32| {
        let mut cfg = ExchangeConfig::new(id, dir.clone());
        cfg.scheme = PartitionScheme::ByHash { units: 2 };
        cfg.mcast_base = mcast_base;
        cfg.background_rate = 30_000.0;
        cfg.tick_interval = SimTime::from_us(100);
        cfg.seed = 100 + u64::from(id); // independent order flow
        sim.add_node(format!("exch{id}"), Exchange::new(cfg))
    };
    let exch_local = mk_exchange(1, 0);
    let exch_remote = mk_exchange(2, 100);

    // One normalizer per exchange, both in colo 0.
    let mut mk_norm = |i: u32, exchange_id: u8| {
        let mut cfg = NormalizerConfig::new(exchange_id, i);
        cfg.out_partitions = partitions;
        cfg.out_mcast_base = 20_000;
        cfg.preload = symbols.clone();
        cfg.per_message_service = SimTime::from_ns(650);
        sim.add_node(format!("norm{i}"), Normalizer::new(cfg))
    };
    let norm_local = mk_norm(0, 1);
    let norm_remote = mk_norm(1, 2);

    // Feed circuits: local cross-connect vs metro circuit.
    let cross_connect = LinkSpec::ten_gig(SimTime::from_ns(25));
    sim.connect_spec(
        exch_local,
        PortId(0),
        norm_local,
        normalizer::FEED_A,
        &cross_connect,
    );
    // The metro circuit stays positional: `MetroRegion::circuit` hands
    // back a fully profiled link (rate, physics-derived delay, microwave
    // fade) that a hand-built spec would only restate, so the already-
    // built model goes in directly, one instance per direction.
    let circuit = metro.circuit(1, 0, kind);
    sim.install_link(
        exch_remote,
        PortId(0),
        norm_remote,
        normalizer::FEED_A,
        Box::new(circuit.clone()),
    );
    sim.install_link(
        norm_remote,
        normalizer::FEED_A,
        exch_remote,
        PortId(0),
        Box::new(circuit),
    );

    // Merge both normalized feeds onto the strategy's NIC with an L1 mux.
    let mut mux = L1Switch::new(L1Config::default());
    mux.provision_merge(PortId(0), PortId(2));
    mux.provision_merge(PortId(1), PortId(2));
    let mux = sim.add_node("mux", mux);
    sim.connect_spec(norm_local, normalizer::OUT, mux, PortId(0), &cross_connect);
    sim.connect_spec(norm_remote, normalizer::OUT, mux, PortId(1), &cross_connect);

    let mut cfg = StrategyConfig::new(0, symbols.clone());
    cfg.mcast_base = 20_000;
    let mut subs = SubscriptionSet::unbounded();
    for p in 0..partitions {
        subs.subscribe(p);
    }
    cfg.subscriptions = subs;
    cfg.send_igmp_joins = false;
    let strat = sim.add_node("arb", Strategy::new(cfg, CrossMarketArb::default()));
    sim.connect_spec(mux, PortId(2), strat, strategy::FEED, &cross_connect);

    sim.schedule_timer(SimTime::ZERO, exch_local, trading_networks::market::TICK);
    sim.schedule_timer(SimTime::ZERO, exch_remote, trading_networks::market::TICK);
    sim.run_until(SimTime::from_ms(80));

    let node = sim
        .node::<Strategy<CrossMarketArb>>(strat)
        .expect("strategy");
    let mut lat = trading_networks::stats::Summary::new();
    lat.extend(node.decision_latency_ps.iter().copied());
    Outcome {
        opportunities: node.logic().opportunities,
        records: node.stats().records_evaluated,
        median_feed_latency: SimTime::from_ps(lat.median()),
    }
}

fn main() {
    let metro = MetroRegion::nj_triangle();
    println!(
        "remote colo at {:.1} km: fiber one-way {} vs microwave {}\n",
        metro.distance_km(0, 1),
        metro.propagation(0, 1, CircuitKind::Fiber),
        metro.propagation(0, 1, CircuitKind::Microwave),
    );

    let fiber = run(CircuitKind::Fiber);
    let microwave = run(CircuitKind::Microwave);
    println!(
        "{:<11} {:>9} records {:>6} crossed-market detections, median detection latency {}",
        "fiber:", fiber.records, fiber.opportunities, fiber.median_feed_latency
    );
    println!(
        "{:<11} {:>9} records {:>6} crossed-market detections, median detection latency {}",
        "microwave:", microwave.records, microwave.opportunities, microwave.median_feed_latency
    );
    println!();
    let edge = fiber
        .median_feed_latency
        .saturating_sub(microwave.median_feed_latency);
    println!(
        "microwave edge on remote-triggered detections: ~{edge} — the §2 trade: \
         less bandwidth,\nweather loss, but every cross-colo signal lands sooner \
         than the competition's fiber."
    );
    assert!(microwave.median_feed_latency < fiber.median_feed_latency);
    assert!(fiber.opportunities > 0 && microwave.opportunities > 0);
}
