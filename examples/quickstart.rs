//! Quickstart: build the Figure 1 architecture end to end and watch one
//! market-data event turn into an order.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --example quickstart -- --shards 4
//! ```
//!
//! This assembles the paper's reference architecture — an exchange
//! publishing a PITCH-like multicast feed, a firm with normalizers,
//! strategies and gateways on a leaf-spine fabric (Design 1) — runs a few
//! simulated milliseconds of market activity, and prints the latency
//! report.
//!
//! `--shards N` runs the same scenario through the sharded kernel
//! (auto-partitioned, conservative lookahead; see DESIGN.md §12). The
//! report — digest included — is bit-identical to the serial run; the
//! summary just gains a `shard` line describing the partition.

use trading_networks::core::design::{TradingNetworkDesign, TraditionalSwitches};
use trading_networks::core::{ScenarioConfig, ShardSpec};
use trading_networks::sim::ObsConfig;

fn main() {
    let shards: u16 = std::env::args()
        .skip_while(|a| a != "--shards")
        .nth(1)
        .map(|v| v.parse().expect("--shards takes a shard count"))
        .unwrap_or(0);
    // The common scenario: one exchange, 2 normalizers, 6 strategies,
    // 2 gateways, 50k market events/second. The builder starts from the
    // `small` preset and validates whatever you override.
    //
    // The flight recorder and kernel self-profiler ride along: both are
    // digest-neutral, so the report below is bit-identical to a bare run
    // — it just also says what the kernel did to produce it.
    let mut obs = ObsConfig::off();
    obs.flight = true;
    obs.profile = true;
    let scenario = ScenarioConfig::builder(42)
        .obs(obs)
        .shards(if shards > 0 {
            ShardSpec::Auto(shards)
        } else {
            ShardSpec::Serial
        })
        .build()
        .expect("valid scenario");

    println!("Figure 1 architecture, Design 1 (commodity leaf-spine):");
    println!(
        "  {} symbols, {} feed units -> {} normalizers -> {} internal partitions",
        scenario.symbols, scenario.feed_units, scenario.normalizers, scenario.internal_partitions
    );
    println!(
        "  {} strategies (momentum, {} per-record) -> {} gateways -> exchange",
        scenario.strategies, scenario.decision_service, scenario.gateways
    );
    println!();

    let report = TraditionalSwitches::default().run(&scenario);
    println!("{}", report.summary());
    println!();
    println!(
        "Median wire-to-wire reaction {} = {} software + {} network/exchange ({}% network)",
        report.reaction.median,
        report.software_path,
        report.network_time(),
        (report.network_share * 100.0).round(),
    );
}
