//! Quickstart: build the Figure 1 architecture end to end and watch one
//! market-data event turn into an order.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This assembles the paper's reference architecture — an exchange
//! publishing a PITCH-like multicast feed, a firm with normalizers,
//! strategies and gateways on a leaf-spine fabric (Design 1) — runs a few
//! simulated milliseconds of market activity, and prints the latency
//! report.

use trading_networks::core::design::{TradingNetworkDesign, TraditionalSwitches};
use trading_networks::core::ScenarioConfig;
use trading_networks::sim::ObsConfig;

fn main() {
    // The common scenario: one exchange, 2 normalizers, 6 strategies,
    // 2 gateways, 50k market events/second. The builder starts from the
    // `small` preset and validates whatever you override.
    //
    // The flight recorder and kernel self-profiler ride along: both are
    // digest-neutral, so the report below is bit-identical to a bare run
    // — it just also says what the kernel did to produce it.
    let mut obs = ObsConfig::off();
    obs.flight = true;
    obs.profile = true;
    let scenario = ScenarioConfig::builder(42)
        .obs(obs)
        .build()
        .expect("valid scenario");

    println!("Figure 1 architecture, Design 1 (commodity leaf-spine):");
    println!(
        "  {} symbols, {} feed units -> {} normalizers -> {} internal partitions",
        scenario.symbols, scenario.feed_units, scenario.normalizers, scenario.internal_partitions
    );
    println!(
        "  {} strategies (momentum, {} per-record) -> {} gateways -> exchange",
        scenario.strategies, scenario.decision_service, scenario.gateways
    );
    println!();

    let report = TraditionalSwitches::default().run(&scenario);
    println!("{}", report.summary());
    println!();
    println!(
        "Median wire-to-wire reaction {} = {} software + {} network/exchange ({}% network)",
        report.reaction.median,
        report.software_path,
        report.network_time(),
        (report.network_share * 100.0).round(),
    );
}
