//! The multicast table cliff (§3 "Multicast Trends"), live.
//!
//! ```sh
//! cargo run --example mcast_cliff
//! ```
//!
//! Joins an increasing number of multicast groups on a commodity switch
//! whose mroute table holds 64 entries, then blasts one packet per group
//! and reports delivery latency per group class. Groups that fit run in
//! hardware at 500 ns; overflow groups fall back to ~25 µs software
//! forwarding and drop heavily under load — "cripples performance and
//! induces heavy packet loss."

use trading_networks::fault::{FaultConnect, LinkSpec};
use trading_networks::sim::{Context, Frame, Node, PortId, SimTime, Simulator};
use trading_networks::switch::{CommoditySwitch, SwitchConfig};
use trading_networks::wire::{eth, igmp, ipv4, stack};

struct Receiver {
    arrivals: Vec<(u32, SimTime)>, // (group index, time)
}

impl Node for Receiver {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
        if let Ok(v) = stack::parse_udp(&f.bytes) {
            if let Some(idx) = v.dst_ip.multicast_index() {
                self.arrivals.push((idx, ctx.now()));
            }
        }
    }
}

fn main() {
    let table_size = 64usize;
    let total_groups = 96usize;

    let cfg = SwitchConfig {
        mcast_table_size: table_size,
        sw_service: SimTime::from_us(25),
        sw_queue: 16,
        ..SwitchConfig::default()
    };
    let mut sim = Simulator::new(3);
    let sw = sim.add_node("switch", CommoditySwitch::new(cfg));
    let rx = sim.add_node("rx", Receiver { arrivals: vec![] });
    sim.connect_spec(
        sw,
        PortId(1),
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO),
    );

    // Join all the groups from the receiver port.
    for g in 0..total_groups as u32 {
        let join = trading_networks::switch::commodity::igmp_frame(
            igmp::MessageType::Report,
            eth::MacAddr::host(2),
            ipv4::Addr::host(2),
            ipv4::Addr::multicast_group(g),
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
    }
    sim.run();
    {
        let s = sim.node::<CommoditySwitch>(sw).unwrap();
        println!(
            "groups joined: {} in hardware, {} overflowed to software",
            s.hw_group_count(),
            s.sw_group_count()
        );
    }

    // One burst: a packet to every group, back to back.
    let t0 = sim.now();
    for g in 0..total_groups as u32 {
        let frame = stack::build_udp(
            eth::MacAddr::host(1),
            None,
            ipv4::Addr::host(1),
            ipv4::Addr::multicast_group(g),
            30_001,
            30_001,
            &[0u8; 100],
        );
        let f = sim.frame().copy_from(&frame).build();
        sim.inject_frame(t0, sw, PortId(0), f);
    }
    sim.run();

    let arrivals = sim.node::<Receiver>(rx).unwrap().arrivals.clone();
    let hw: Vec<u64> = arrivals
        .iter()
        .filter(|(g, _)| (*g as usize) < table_size)
        .map(|(_, t)| (*t - t0).as_ns())
        .collect();
    let sw_lat: Vec<u64> = arrivals
        .iter()
        .filter(|(g, _)| (*g as usize) >= table_size)
        .map(|(_, t)| (*t - t0).as_ns())
        .collect();
    let stats = sim.node::<CommoditySwitch>(sw).unwrap().stats();

    println!(
        "hardware groups: {}/{} delivered, first at {} ns",
        hw.len(),
        table_size,
        hw.first().copied().unwrap_or(0)
    );
    println!(
        "software groups: {}/{} delivered (queue depth 16), first at {} ns, last at {} ns",
        sw_lat.len(),
        total_groups - table_size,
        sw_lat.first().copied().unwrap_or(0),
        sw_lat.last().copied().unwrap_or(0)
    );
    println!("drops at the software path: {}", stats.mcast_dropped);
    println!();
    println!(
        "the cliff: {}x latency and {:.0}% loss once the mroute table overflows",
        sw_lat.first().copied().unwrap_or(0) / hw.first().copied().unwrap_or(1).max(1),
        100.0 * stats.mcast_dropped as f64 / (total_groups - table_size) as f64
    );
}
