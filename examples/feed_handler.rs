//! Feed handler: consume a raw PITCH-like A/B feed, arbitrate, build
//! books, and normalize — the §2 pipeline in isolation, without a
//! network simulation.
//!
//! ```sh
//! cargo run --example feed_handler
//! ```
//!
//! Generates one second of bursty feed traffic with the matching engine,
//! duplicates it into A/B copies with independent loss, and shows the
//! arbiter recovering from single-side loss while counting the gaps that
//! hit both sides.

use trading_networks::feed::normalize::{HashRepartition, NormalizerCore};
use trading_networks::market::{FeedPublisher, PartitionScheme};
use trading_networks::market::{FlowMix, MatchingEngine, OrderFlowGenerator, SymbolDirectory};
use trading_networks::sim::{Rng, SeedableRng, SmallRng};
use trading_networks::wire::norm;

fn main() {
    let dir = SymbolDirectory::synthetic(100);
    let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
    let mut flow = OrderFlowGenerator::new(&dir, FlowMix::default());
    let mut publisher = FeedPublisher::new(PartitionScheme::ByHash { units: 4 }, 1400, 0);
    let mut rng = SmallRng::seed_from_u64(99);

    // One simulated second at ~20k events/s, published in 2 ms batches.
    let mut packets: Vec<Vec<u8>> = Vec::new();
    for batch in 0..500u64 {
        let mut msgs = Vec::new();
        for _ in 0..40 {
            msgs.extend(flow.step(&dir, &mut engine, &mut rng, (batch * 2_000_000) as u32));
        }
        let time_ns = 34_200_000_000_000 + batch * 2_000_000;
        for p in publisher.publish(&dir, time_ns, &msgs) {
            packets.push(p.bytes);
        }
    }
    println!("generated {} feed packets", packets.len());

    // A/B copies with independent 2% loss — far worse than any real
    // fiber pair, to make arbitration visible.
    let mut normalizer = NormalizerCore::new(1, HashRepartition { partitions: 16 });
    normalizer.preload_symbols(dir.instruments().iter().map(|i| i.symbol));
    let mut records = 0usize;
    let mut bbo = 0usize;
    for (i, pkt) in packets.iter().enumerate() {
        let drop_a = rng.gen::<f64>() < 0.02;
        let drop_b = rng.gen::<f64>() < 0.02;
        let t = 34_200_000_000_000 + i as u64;
        if !drop_a {
            for out in normalizer.on_packet(pkt, t).expect("valid packet") {
                records += 1;
                if out.record.kind == norm::Kind::Bbo {
                    bbo += 1;
                }
            }
        }
        if !drop_b {
            for out in normalizer.on_packet(pkt, t).expect("valid packet") {
                records += 1;
                if out.record.kind == norm::Kind::Bbo {
                    bbo += 1;
                }
            }
        }
    }

    let arb = normalizer.arbiter().stats();
    let stats = normalizer.stats();
    println!(
        "arbitration: accepted={} duplicates={} gaps={} (in {} gap events)",
        arb.accepted, arb.duplicates, arb.gap_messages, arb.gap_events
    );
    println!(
        "normalized:  {} native messages -> {} records ({} BBO updates)",
        stats.messages_in, records, bbo
    );
    println!(
        "loss handling: both-sides loss probability 0.02^2 = 0.04% of packets -> {} gap events",
        arb.gap_events
    );
    assert!(
        arb.duplicates > 0,
        "B side should have been mostly redundant"
    );
}
