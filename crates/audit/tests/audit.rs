//! Integration tests: each lint fires on its fixture exactly once *via
//! the call-graph pipeline*, suppression is honoured, the JSON schema is
//! stable, the baseline/schema CLI gates work, and the real workspace
//! passes its own audit.

use tn_audit::{counts, render_json, scan_sources, scope_for, SourceFile};

/// Scan one fixture through the same pipeline the workspace scan uses:
/// parse, build the call graph, propagate taint, lint.
fn scan_fixture(name: &str, text: &str) -> Vec<tn_audit::Finding> {
    let rel = format!("crates/fixture/src/{name}.rs");
    let scope = scope_for(&rel).expect("fixture path is in scope");
    scan_sources(&[(SourceFile::parse(&rel, text), scope)])
}

macro_rules! fixture {
    ($name:literal) => {
        ($name, include_str!(concat!("fixtures/", $name, ".rs")))
    };
}

#[test]
fn each_lint_fires_exactly_once_on_its_fixture() {
    for (lint, (name, text)) in [
        ("det-hashmap-iter", fixture!("det_hashmap_iter")),
        ("det-wallclock", fixture!("det_wallclock")),
        ("det-unseeded-rng", fixture!("det_unseeded_rng")),
        ("hotpath-unwrap", fixture!("hotpath_unwrap")),
        ("hotpath-alloc", fixture!("hotpath_alloc")),
        ("perf-arena-leak", fixture!("perf_arena_leak")),
        ("schema-version", fixture!("schema_version")),
    ] {
        let findings = scan_fixture(name, text);
        assert_eq!(
            findings.len(),
            1,
            "{name}: expected one finding, got {findings:#?}"
        );
        assert_eq!(findings[0].lint, lint, "{name}");
        assert!(!findings[0].suppressed, "{name}");
    }
}

#[test]
fn taint_gated_findings_cite_their_call_chain() {
    let (name, text) = fixture!("hotpath_unwrap");
    let f = scan_fixture(name, text);
    let note = f[0].note.as_deref().expect("hot finding carries a note");
    assert!(
        note.contains("Node::on_frame") && note.contains("decode"),
        "chain cited: {note}"
    );

    let (name, text) = fixture!("det_hashmap_iter");
    let f = scan_fixture(name, text);
    let note = f[0].note.as_deref().expect("det finding carries a note");
    assert!(
        note.contains("Simulator::inject_frame") || note.contains("schedule"),
        "chain cited: {note}"
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    // `parse_header` has an unwrap but no path from any dispatch root:
    // under the old name heuristic it was flagged, under reachability
    // it is clean.
    let (name, text) = fixture!("clean");
    let findings = scan_fixture(name, text);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn suppression_is_honoured_and_counted() {
    let (name, text) = fixture!("suppressed");
    let findings = scan_fixture(name, text);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.suppressed), "{findings:#?}");
    let c = counts(&findings);
    assert_eq!((c.total, c.suppressed, c.active), (2, 2, 0));
}

#[test]
fn json_schema_is_stable() {
    let (name, text) = fixture!("schema_version");
    let mut findings = scan_fixture(name, text);
    tn_audit::report::sort(&mut findings);
    let json = render_json(&findings);
    // The exact layout downstream tooling can rely on.
    assert!(
        json.starts_with("{\"schema\":\"tn-audit/v1\",\"findings\":["),
        "{json}"
    );
    assert!(
        json.trim_end()
            .ends_with("\"counts\":{\"total\":1,\"suppressed\":0,\"active\":1}}"),
        "{json}"
    );
    for key in [
        "\"lint\":",
        "\"severity\":",
        "\"file\":",
        "\"line\":",
        "\"column\":",
        "\"message\":",
        "\"suppressed\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let empty = render_json(&[]);
    assert_eq!(
        empty,
        "{\"schema\":\"tn-audit/v1\",\"findings\":[],\"counts\":{\"total\":0,\"suppressed\":0,\"active\":0}}\n"
    );
}

#[test]
fn reports_validate_against_their_own_schema() {
    let (name, text) = fixture!("suppressed");
    let findings = scan_fixture(name, text);
    let doc = tn_audit::baseline::parse(&render_json(&findings)).unwrap();
    tn_audit::baseline::validate_report(&doc).unwrap();
}

#[test]
fn workspace_audit_is_clean() {
    // The repo must pass its own audit: everything fixed or waived.
    let findings = tn_audit::scan_workspace(&tn_audit::scan::default_root()).unwrap();
    let active: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(active.is_empty(), "active findings: {active:#?}");
}

#[test]
fn workspace_findings_match_the_committed_baseline() {
    let root = tn_audit::scan::default_root();
    let findings = tn_audit::scan_workspace(&root).unwrap();
    let text = std::fs::read_to_string(root.join("AUDIT_BASELINE.json")).unwrap();
    let doc = tn_audit::baseline::parse(&text).unwrap();
    tn_audit::baseline::validate_report(&doc).unwrap();
    let diff = tn_audit::baseline::diff_against_baseline(&findings, &doc).unwrap();
    assert!(
        diff.new.is_empty(),
        "findings not in AUDIT_BASELINE.json (regenerate with \
         `cargo run -p tn-audit -- lint --json AUDIT_BASELINE.json`): {:#?}",
        diff.new
    );
}

#[test]
fn cli_lint_exits_zero_on_this_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .arg("lint")
        .output()
        .expect("run tn-audit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("active"), "{stdout}");
}

#[test]
fn cli_baseline_gate_passes_and_catches_new_findings() {
    let dir = std::env::temp_dir();
    let report = dir.join("tn-audit-test-report.json");
    let empty = dir.join("tn-audit-test-empty-baseline.json");

    // A fresh report used as its own baseline: zero new findings.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["lint", "--json"])
        .arg(&report)
        .output()
        .expect("run tn-audit");
    assert!(out.status.success());
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["lint", "--baseline"])
        .arg(&report)
        .output()
        .expect("run tn-audit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // An empty baseline: every current finding (suppressed or not) is
    // new, so the gate must fail.
    std::fs::write(
        &empty,
        "{\"schema\":\"tn-audit/v1\",\"findings\":[],\
         \"counts\":{\"total\":0,\"suppressed\":0,\"active\":0}}\n",
    )
    .unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["lint", "--baseline"])
        .arg(&empty)
        .output()
        .expect("run tn-audit");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("NEW finding"), "{stdout}");
}

#[test]
fn cli_schema_validates_reports() {
    let dir = std::env::temp_dir();
    let report = dir.join("tn-audit-test-schema-report.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["lint", "--json"])
        .arg(&report)
        .output()
        .expect("run tn-audit");
    assert!(out.status.success());
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["schema", "--json"])
        .arg(&report)
        .output()
        .expect("run tn-audit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bogus = dir.join("tn-audit-test-bogus.json");
    std::fs::write(&bogus, "{\"schema\":\"tn-audit/v2\",\"findings\":[]}").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .args(["schema", "--json"])
        .arg(&bogus)
        .output()
        .expect("run tn-audit");
    assert!(!out.status.success());
}

#[test]
fn cli_rejects_unknown_arguments() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .arg("--bogus")
        .output()
        .expect("run tn-audit");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn divergence_registry_dual_runs_agree() {
    // One cheap end-to-end divergence pass (the full registry runs in CI
    // via `tn-audit check`).
    let outcomes = tn_audit::divergence::run_all(Some("mcast-cliff"));
    assert!(outcomes.iter().all(|o| o.passed()), "{outcomes:#?}");
}
