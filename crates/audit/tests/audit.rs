//! Integration tests: each lint fires on its fixture exactly once,
//! suppression is honoured, the JSON schema is stable, and the real
//! workspace passes its own audit.

use tn_audit::{counts, render_json, scan_file, Scope, SourceFile};

fn scan_fixture(name: &str, text: &str) -> Vec<tn_audit::Finding> {
    scan_file(&SourceFile::parse(name, text), Scope::full())
}

macro_rules! fixture {
    ($name:literal) => {
        ($name, include_str!(concat!("fixtures/", $name, ".rs")))
    };
}

#[test]
fn each_lint_fires_exactly_once_on_its_fixture() {
    for (lint, (name, text)) in [
        ("det-hashmap-iter", fixture!("det_hashmap_iter")),
        ("det-wallclock", fixture!("det_wallclock")),
        ("det-unseeded-rng", fixture!("det_unseeded_rng")),
        ("hotpath-unwrap", fixture!("hotpath_unwrap")),
        ("hotpath-alloc", fixture!("hotpath_alloc")),
        ("perf-arena-leak", fixture!("perf_arena_leak")),
    ] {
        let findings = scan_fixture(name, text);
        assert_eq!(
            findings.len(),
            1,
            "{name}: expected one finding, got {findings:#?}"
        );
        assert_eq!(findings[0].lint, lint, "{name}");
        assert!(!findings[0].suppressed, "{name}");
    }
}

#[test]
fn clean_fixture_has_no_findings() {
    let (name, text) = fixture!("clean");
    let findings = scan_fixture(name, text);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn suppression_is_honoured_and_counted() {
    let (name, text) = fixture!("suppressed");
    let findings = scan_fixture(name, text);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.suppressed), "{findings:#?}");
    let c = counts(&findings);
    assert_eq!((c.total, c.suppressed, c.active), (2, 2, 0));
}

#[test]
fn json_schema_is_stable() {
    let (name, text) = fixture!("det_wallclock");
    let mut findings = scan_fixture(name, text);
    tn_audit::report::sort(&mut findings);
    let json = render_json(&findings);
    // The exact layout downstream tooling can rely on.
    assert!(json.starts_with("{\"version\":1,\"findings\":["), "{json}");
    assert!(
        json.trim_end()
            .ends_with("\"counts\":{\"total\":1,\"suppressed\":0,\"active\":1}}"),
        "{json}"
    );
    for key in [
        "\"lint\":",
        "\"severity\":",
        "\"file\":",
        "\"line\":",
        "\"column\":",
        "\"message\":",
        "\"suppressed\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let empty = render_json(&[]);
    assert_eq!(
        empty,
        "{\"version\":1,\"findings\":[],\"counts\":{\"total\":0,\"suppressed\":0,\"active\":0}}\n"
    );
}

#[test]
fn workspace_audit_is_clean() {
    // The repo must pass its own audit: everything fixed or waived.
    let findings = tn_audit::scan_workspace(&tn_audit::scan::default_root()).unwrap();
    let active: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(active.is_empty(), "active findings: {active:#?}");
}

#[test]
fn cli_lint_exits_zero_on_this_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .arg("lint")
        .output()
        .expect("run tn-audit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("active"), "{stdout}");
}

#[test]
fn cli_rejects_unknown_arguments() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tn-audit"))
        .arg("--bogus")
        .output()
        .expect("run tn-audit");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn divergence_registry_dual_runs_agree() {
    // One cheap end-to-end divergence pass (the full registry runs in CI
    // via `tn-audit check`).
    let outcomes = tn_audit::divergence::run_all(Some("mcast-cliff"));
    assert!(outcomes.iter().all(|o| o.passed()), "{outcomes:#?}");
}
