//! Fixture: triggers `det-hashmap-iter` exactly once. The iteration is
//! reached *from* schedule-feeding code (forward extension of the det
//! taint); keyed access stays clean.
use std::collections::HashMap;

pub struct Simulator {
    injected: u64,
}

impl Simulator {
    pub fn inject_frame(&mut self, at: u64) {
        self.injected = at;
    }
}

pub struct Positions {
    by_symbol: HashMap<u32, i64>,
}

impl Positions {
    pub fn get(&self, s: u32) -> Option<i64> {
        self.by_symbol.get(&s).copied() // keyed access: clean
    }

    /// Called from the schedule-feeding `replay` below: flagged.
    pub fn gross(&self) -> u64 {
        self.by_symbol.values().map(|p| p.unsigned_abs()).sum()
    }
}

/// Feeds the schedule from the position book.
pub fn replay(sim: &mut Simulator, pos: &Positions) {
    sim.inject_frame(pos.gross());
}
