//! Fixture: triggers `det-hashmap-iter` exactly once.
use std::collections::HashMap;

pub struct Positions {
    by_symbol: HashMap<u32, i64>,
}

impl Positions {
    pub fn get(&self, s: u32) -> Option<i64> {
        self.by_symbol.get(&s).copied() // keyed access: clean
    }

    pub fn gross(&self) -> u64 {
        self.by_symbol.values().map(|p| p.unsigned_abs()).sum()
    }
}
