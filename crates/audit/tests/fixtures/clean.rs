//! Fixture: deterministic, allocation-free hot path — zero findings.
use std::collections::BTreeMap;

pub struct Counter {
    per_port: BTreeMap<u16, u64>,
}

impl Node for Counter {
    fn on_frame(&mut self, port: u16) {
        let slot = self.per_port.entry(port).or_insert(0);
        *slot += 1;
    }
}

impl Counter {
    pub fn total(&self) -> u64 {
        self.per_port.values().sum()
    }
}

/// Named like the old heuristic's `parse_*` hot set, but unreachable
/// from any dispatch root — the call graph knows better.
pub fn parse_header(bytes: &[u8]) -> u16 {
    u16::from(*bytes.first().unwrap())
}
