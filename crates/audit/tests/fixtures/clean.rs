//! Fixture: deterministic, allocation-free hot path — zero findings.
use std::collections::BTreeMap;

pub struct Counter {
    per_port: BTreeMap<u16, u64>,
}

impl Counter {
    pub fn on_frame(&mut self, port: u16) -> u64 {
        let slot = self.per_port.entry(port).or_insert(0);
        *slot += 1;
        *slot
    }

    pub fn total(&self) -> u64 {
        self.per_port.values().sum()
    }
}
