//! Fixture: triggers `hotpath-unwrap` exactly once.
pub fn on_frame(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}

pub fn cold_path(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap() // not a hot fn: clean
}
