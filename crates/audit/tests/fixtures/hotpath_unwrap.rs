//! Fixture: triggers `hotpath-unwrap` exactly once, via reachability
//! from the `Node::on_frame` dispatch root.
pub struct Rx {
    last: u64,
}

impl Node for Rx {
    fn on_frame(&mut self, bytes: &[u8]) {
        self.last = decode(bytes);
    }
}

/// Reached from the dispatch root above: flagged.
fn decode(bytes: &[u8]) -> u64 {
    u64::from(*bytes.first().unwrap())
}

/// Same body, unreachable from any root: clean.
pub fn cold_decode(bytes: &[u8]) -> u64 {
    u64::from(*bytes.first().unwrap())
}
