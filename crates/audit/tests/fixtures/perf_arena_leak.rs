//! Fixture: triggers `perf-arena-leak` exactly once, inside a hot
//! dispatch handler.
pub struct Sink;

impl Node for Sink {
    fn on_frame(&mut self, frame: Frame) {
        drop(frame);
    }
}

/// Unreachable from any root: dropping here is clean.
pub fn cold_retire(frame: Frame) {
    drop(frame);
}

/// Not a frame buffer: clean even on a hot path.
pub fn retire_guard(guard: Guard) {
    drop(guard);
}
