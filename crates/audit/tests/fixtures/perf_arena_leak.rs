//! Fixture: triggers `perf-arena-leak` exactly once.
pub fn retire(frame: Frame) {
    drop(frame);
}

pub fn retire_guard(guard: Guard) {
    drop(guard); // not a frame buffer: clean
}
