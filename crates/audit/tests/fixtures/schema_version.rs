//! Fixture: triggers `schema-version` exactly once.
pub fn header() -> &'static str {
    "tn-mystery/v9"
}

pub fn known() -> &'static str {
    "tn-trace/v1" // registered: clean
}
