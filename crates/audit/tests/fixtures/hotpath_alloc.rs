//! Fixture: triggers `hotpath-alloc` exactly once, via reachability
//! from the `Node::on_timer` dispatch root.
pub struct Ticker {
    log: Vec<String>,
}

impl Node for Ticker {
    fn on_timer(&mut self, n: u64) {
        self.log.push(label(n));
    }
}

/// Reached from the timer dispatch root above: flagged.
fn label(n: u64) -> String {
    format!("timer {n}")
}

/// Same body, unreachable from any root: clean.
pub fn cold_label(n: u64) -> String {
    format!("cold {n}")
}
