//! Fixture: triggers `hotpath-alloc` exactly once.
pub fn on_timer(n: u64) -> String {
    format!("timer {n}")
}

pub fn cold_format(n: u64) -> String {
    format!("cold {n}") // not a hot fn: clean
}
