//! Fixture: triggers `det-wallclock` exactly once. The wall-clock read
//! sits in a function that feeds the simulator schedule, so it carries
//! determinism taint; a cold read would be clean.
pub struct Simulator {
    horizon: u64,
}

impl Simulator {
    pub fn inject_frame(&mut self, at: u64) {
        self.horizon = self.horizon.max(at);
    }
}

/// Schedule-feeding, so the wall-clock read is flagged.
pub fn seed(sim: &mut Simulator) {
    let t = std::time::Instant::now();
    sim.inject_frame(t.elapsed().as_nanos() as u64);
}
