//! Fixture: triggers `det-wallclock` exactly once.
pub fn elapsed_ps() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64 * 1000
}
