//! Fixture: one finding of each family, every one waived in place.
pub struct Rx {
    last: u8,
}

impl Node for Rx {
    fn on_frame(&mut self, bytes: &[u8]) {
        // audit:allow(hotpath-unwrap): fixture demonstrates suppression
        self.last = *bytes.first().unwrap();
    }
}

pub struct Simulator {
    at: u64,
}

impl Simulator {
    pub fn inject_frame(&mut self, at: u64) {
        self.at = at;
    }
}

/// Schedule-feeding, so the wall-clock read fires — and is waived.
pub fn stamp(sim: &mut Simulator) {
    // audit:allow(det-wallclock): fixture demonstrates suppression
    let t = std::time::Instant::now();
    sim.inject_frame(t.elapsed().as_nanos() as u64);
}
