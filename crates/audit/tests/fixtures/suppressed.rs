//! Fixture: one finding of each family, every one waived in place.
pub fn on_frame(bytes: &[u8]) -> u8 {
    // audit:allow(hotpath-unwrap): fixture demonstrates suppression
    *bytes.first().unwrap()
}

pub fn stamp_ns() -> u64 {
    // audit:allow(det-wallclock): fixture demonstrates suppression
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
