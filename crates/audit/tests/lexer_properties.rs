//! Property tests for the audit front-end.
//!
//! Two invariants the whole analysis rests on:
//!
//! 1. the lexer is *lossless*: concatenating the token texts of any
//!    input — well-formed or not — rebuilds it byte-identically;
//! 2. findings are *semantic*: perturbing comments and whitespace never
//!    changes what the lints report (modulo the line shifts the
//!    perturbation itself introduces).

use proptest::prelude::*;
use tn_audit::{scan_sources, scope_for, SourceFile};

/// Fragment pool exercising every token kind plus malformed tails.
fn arb_lex_input() -> impl Strategy<Value = String> {
    let frag = prop_oneof![
        Just("fn f() { let x = 1; }\n".to_string()),
        Just("let s = \"str with \\\" escape\";\n".to_string()),
        Just("let r = r#\"raw \" quote\"#;\n".to_string()),
        Just("let b = b\"bytes\"; let rb = br#\"raw\"#;\n".to_string()),
        Just("let c = '\\n'; let d = '\\''; let e = '\"';\n".to_string()),
        Just("let lt: &'static str = \"\";\n".to_string()),
        Just("// line comment with \"quote\" and 'tick\n".to_string()),
        Just("/* block /* nested */ comment */\n".to_string()),
        Just("/* unterminated tail".to_string()),
        Just("\"unterminated str".to_string()),
        Just("r\"no-hash raw\"; r##\"double\"##;\n".to_string()),
        Just("'a 'static '_\n".to_string()),
        Just("}{)(][ ;;; ,,, ->=>::\n".to_string()),
        Just("idéntifier_🦀; // émoji\n".to_string()),
        (0u32..0xD800).prop_map(|c| {
            let ch = char::from_u32(c).unwrap_or('x');
            format!("{ch}{ch} ")
        }),
    ];
    proptest::collection::vec(frag, 0..40).prop_map(|v| v.concat())
}

proptest! {
    /// Concatenating lexed token texts rebuilds any input byte-for-byte.
    #[test]
    fn lex_round_trips_byte_identically(src in arb_lex_input()) {
        let rebuilt: String = tn_audit::lexer::lex(&src)
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(&rebuilt, &src, "lexer must be lossless");
    }
}

// ---------------------------------------------------------------------
// Findings are invariant under comment/whitespace perturbation.
// ---------------------------------------------------------------------

// Item fragments the generated programs are assembled from. All comments
// and literals are single-line, so every line boundary in a generated
// program is outside any multi-line token and a perturbation can safely
// append to or insert between lines.
const ITEM_HOT_UNWRAP: &str = "\
pub struct Rx { last: u64 }

impl Node for Rx {
    fn on_frame(&mut self, bytes: &[u8]) {
        self.last = decode(bytes);
    }
}

fn decode(bytes: &[u8]) -> u64 {
    u64::from(*bytes.first().unwrap())
}
";

const ITEM_COLD_UNWRAP: &str = "\
pub fn parse_tail(bytes: &[u8]) -> u8 {
    *bytes.last().unwrap()
}
";

const ITEM_SINK: &str = "\
pub struct Simulator { horizon: u64 }

impl Simulator {
    pub fn inject_frame(&mut self, at: u64) {
        self.horizon = at;
    }
}

pub fn seed_schedule(sim: &mut Simulator) {
    let t = std::time::Instant::now();
    sim.inject_frame(t.elapsed().as_nanos() as u64);
}
";

const ITEM_HASHMAP: &str = "\
use std::collections::HashMap;

pub struct Ledger { by_id: HashMap<u32, i64> }

impl Ledger {
    pub fn gross(&self) -> u64 {
        self.by_id.values().map(|v| v.unsigned_abs()).sum()
    }
}

pub fn settle(sim: &mut Simulator, l: &Ledger) {
    sim.inject_frame(l.gross());
}
";

const ITEM_SCHEMA: &str = "\
pub fn header() -> &'static str {
    \"tn-weird/v3\"
}
";

const ITEM_PLAIN: &str = "\
pub fn checksum(xs: &[u8]) -> u8 {
    xs.iter().fold(0u8, |a, b| a.wrapping_add(*b))
}
";

fn arb_program() -> impl Strategy<Value = String> {
    let item = prop_oneof![
        Just(ITEM_HOT_UNWRAP.to_string()),
        Just(ITEM_COLD_UNWRAP.to_string()),
        Just(ITEM_SINK.to_string()),
        Just(ITEM_HASHMAP.to_string()),
        Just(ITEM_SCHEMA.to_string()),
        Just(ITEM_PLAIN.to_string()),
    ];
    proptest::collection::vec(item, 1..6).prop_map(|v| v.concat())
}

/// (kind, position) perturbation ops; positions are taken mod the line
/// count when applied.
fn arb_perturbations() -> impl Strategy<Value = Vec<(u8, usize)>> {
    proptest::collection::vec((0u8..3, 0usize..500), 0..12)
}

/// Scan `text` through the full pipeline and return (lint, line, column)
/// triples, sorted.
fn scan_triples(text: &str) -> Vec<(String, usize, usize)> {
    let rel = "crates/fixture/src/prog.rs";
    let scope = scope_for(rel).expect("in scope");
    let mut out: Vec<(String, usize, usize)> =
        scan_sources(&[(SourceFile::parse(rel, text), scope)])
            .into_iter()
            .map(|f| (f.lint.to_string(), f.line, f.column))
            .collect();
    out.sort();
    out
}

proptest! {
    /// Comments and whitespace are semantically inert to the lints.
    #[test]
    fn findings_survive_comment_and_whitespace_perturbation(
        base in arb_program(),
        ops in arb_perturbations(),
    ) {
        let mut lines: Vec<String> = base.lines().map(String::from).collect();
        let normalized = format!("{}\n", lines.join("\n"));
        let before = scan_triples(&normalized);

        // Line-preserving perturbations first: end-of-line comments and
        // trailing whitespace never move or suppress anything.
        let mut inserts: Vec<usize> = Vec::new();
        for &(kind, pos) in &ops {
            let p = pos % lines.len();
            match kind {
                0 => lines[p].push_str("  // padding comment about buffers"),
                1 => lines[p].push_str("   "),
                _ => inserts.push(p),
            }
        }
        // Whole-line comment inserts shift everything below them down;
        // apply bottom-up so earlier positions stay valid.
        inserts.sort_unstable();
        for &p in inserts.iter().rev() {
            lines.insert(p, "// an inserted standalone comment line".to_string());
        }
        let perturbed = format!("{}\n", lines.join("\n"));
        let after = scan_triples(&perturbed);

        // Map each original finding through the inserts and compare.
        let expected: Vec<(String, usize, usize)> = before
            .iter()
            .map(|(lint, line, col)| {
                let shift = inserts.iter().filter(|&&p| p < *line).count();
                (lint.clone(), line + shift, *col)
            })
            .collect();
        prop_assert_eq!(expected, after, "perturbation changed the findings");
    }
}
