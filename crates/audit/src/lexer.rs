//! A lossless full-file lexer for Rust source.
//!
//! This is the ground truth the whole analysis pipeline is built on:
//! [`crate::source::SourceFile`] derives its blanked per-line code view
//! from these tokens, and [`crate::items`] parses item structure out of
//! the non-trivia stream. Losslessness is the load-bearing property —
//! the concatenation of every token's `text` reproduces the input byte
//! for byte (property-tested in `tests/lexer_properties.rs`) — because
//! it guarantees the lexer never silently eats source the lints should
//! have seen.
//!
//! The lexer is total: any input produces a token stream. Malformed
//! source (unterminated strings, stray punctuation) degrades into
//! reasonable tokens instead of errors, since the auditor must keep
//! working on code that does not yet compile.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal (alphanumeric/`_` run).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A run of whitespace (may contain newlines).
    Whitespace,
    /// `// ...` to end of line (newline not included).
    LineComment,
    /// `/* ... */`, nesting honoured; may span lines.
    BlockComment,
    /// `"..."` or `b"..."` including delimiters and escapes.
    Str,
    /// `r"..."` / `r#"..."#` raw string including delimiters.
    RawStr,
    /// `'x'` / `'\n'` char literal including quotes.
    Char,
    /// `'label` lifetime (or loop label): quote plus identifier run.
    Lifetime,
}

/// One lossless token: `text` is the exact source slice.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (concatenating all tokens rebuilds the file).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based char column of the first character.
    pub col: usize,
}

/// Lex `input` into a lossless token stream.
pub fn lex(input: &str) -> Vec<Token> {
    Lexer {
        chars: input.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Emit `chars[start..self.i]` as one token anchored at (line, col).
    fn emit(&mut self, kind: TokKind, start: usize, line: usize, col: usize) {
        let text: String = self.chars[start..self.i].iter().collect();
        // Advance the position cursor over the emitted text.
        for c in &self.chars[start..self.i] {
            if *c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.i < self.chars.len() {
            let (line, col) = (self.line, self.col);
            let start = self.i;
            let c = self.chars[self.i];
            let kind = if c.is_whitespace() {
                while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                    self.i += 1;
                }
                TokKind::Whitespace
            } else if c == '/' && self.peek(1) == Some('/') {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.i += 1;
                }
                TokKind::LineComment
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment()
            } else if c == '"' {
                self.i += 1;
                self.string_body('"');
                TokKind::Str
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.i += 2;
                self.string_body('"');
                TokKind::Str
            } else if c == 'r' && self.raw_str_hashes(1).is_some() {
                self.raw_string(self.raw_str_hashes(1).unwrap())
            } else if (c == 'b') && self.peek(1) == Some('r') && self.raw_str_hashes(2).is_some() {
                let h = self.raw_str_hashes(2).unwrap();
                self.i += 1; // the `b`; raw_string consumes from `r`
                self.raw_string(h)
            } else if c == '\'' {
                self.quote()
            } else if c.is_alphanumeric() || c == '_' {
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    self.i += 1;
                }
                TokKind::Ident
            } else {
                self.i += 1;
                TokKind::Punct
            };
            self.emit(kind, start, line, col);
        }
        self.out
    }

    /// Nested block comment, cursor on the leading `/`.
    fn block_comment(&mut self) -> TokKind {
        let mut depth = 0u32;
        while self.i < self.chars.len() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.i += 1;
            }
        }
        TokKind::BlockComment
    }

    /// Consume a (byte) string body after its opening quote, honouring
    /// `\"` escapes; leaves the cursor past the closing quote (or EOF).
    fn string_body(&mut self, close: char) {
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.i += 2.min(self.chars.len() - self.i);
            } else if c == close {
                self.i += 1;
                return;
            } else {
                self.i += 1;
            }
        }
    }

    /// If `chars[i + from..]` opens a raw string (`#*"`), its hash count.
    fn raw_str_hashes(&self, from: usize) -> Option<u32> {
        let mut h = 0u32;
        while self.peek(from + h as usize) == Some('#') {
            h += 1;
        }
        (self.peek(from + h as usize) == Some('"')).then_some(h)
    }

    /// Raw string, cursor on the `r`. Consumes through `"#…#` of `h` hashes.
    fn raw_string(&mut self, h: u32) -> TokKind {
        self.i += 2 + h as usize; // r, hashes, opening quote
        while self.i < self.chars.len() {
            if self.peek(0) == Some('"') && (0..h as usize).all(|k| self.peek(1 + k) == Some('#')) {
                self.i += 1 + h as usize;
                return TokKind::RawStr;
            }
            self.i += 1;
        }
        TokKind::RawStr
    }

    /// `'` disambiguation: char literal vs lifetime/label, cursor on `'`.
    fn quote(&mut self) -> TokKind {
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            // `'a'` is a char; `'a` followed by anything else is a lifetime.
            Some(c) if c.is_alphanumeric() || c == '_' => self.peek(2) == Some('\''),
            // `'('`, `' '` etc. — treat as a char literal attempt.
            Some(_) => true,
            None => false,
        };
        if is_char {
            self.i += 1;
            self.string_body('\'');
            TokKind::Char
        } else {
            self.i += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.i += 1;
            }
            TokKind::Lifetime
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuild(toks: &[Token]) -> String {
        toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let src = "fn main() {\n    let s = \"hi \\\" there\"; // c\n    /* b /* n */ e */ let c = 'x';\n    let r = r#\"raw \"q\" \"#;\n    let lt: &'static str = \"\";\n}\n";
        let toks = lex(src);
        assert_eq!(rebuild(&toks), src);
    }

    #[test]
    fn kinds_are_classified() {
        let toks = lex("let a = b\"x\"; 'l: loop { break 'l; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "b\"x\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'l"));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("ab cd\nef");
        let ef = toks.iter().find(|t| t.text == "ef").unwrap();
        assert_eq!((ef.line, ef.col), (2, 1));
        let cd = toks.iter().find(|t| t.text == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (1, 4));
    }

    #[test]
    fn unterminated_inputs_still_roundtrip() {
        for src in ["\"never closed", "/* open", "r#\"open", "'"] {
            assert_eq!(rebuild(&lex(src)), src, "{src:?}");
        }
    }

    #[test]
    fn byte_raw_strings_and_raw_idents() {
        let src = "br#\"x\"# r#type";
        assert_eq!(rebuild(&lex(src)), src);
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::RawStr);
    }
}
