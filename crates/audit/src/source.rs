//! Source model: per-line views of a file derived from the lossless
//! [`crate::lexer`] token stream.
//!
//! Full parsing (`syn`) is deliberately out of scope — the audit runs in
//! offline environments with no registry access — so this module exposes
//! the minimum a lint pass needs to be trustworthy:
//!
//! * comments and string/char literal *contents* are blanked out of the
//!   `code` view, so `"thread_rng"` in a doc string never trips a lint;
//! * string-literal text is collected per line, so the `schema-version`
//!   lint can check wire-format version strings against the registry;
//! * `// audit:allow(<lint>, ...)` suppression comments are collected per
//!   line (they apply to their own line and the line that follows);
//! * `#[cfg(test)]` regions are brace-tracked and marked, so test-only
//!   code is exempt from the lints.
//!
//! The `code` view preserves column positions (every skipped character is
//! replaced by a space), so findings can point at real source columns.

use crate::lexer::{lex, TokKind};

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments stripped and literal contents blanked (delimiters
    /// kept). Same character count as `raw` for ASCII source.
    pub code: String,
    /// The raw line as written.
    pub raw: String,
    /// Comment text found on the line (line + block comments, concatenated).
    pub comment: String,
    /// String-literal text starting on this line: `(column, exact text)`.
    pub lits: Vec<(usize, String)>,
    /// Lint ids named by `audit:allow(...)` on this line.
    pub allows: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repository root (used in reports).
    pub rel: String,
    /// Lexed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lex `text` into lines. `rel` is the path used in findings.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut lines: Vec<Line> = raw_lines
            .iter()
            .map(|raw| Line {
                code: String::with_capacity(raw.len()),
                raw: (*raw).to_string(),
                comment: String::new(),
                lits: Vec::new(),
                allows: Vec::new(),
                in_test: false,
            })
            .collect();
        if lines.is_empty() {
            lines.push(Line {
                code: String::new(),
                raw: String::new(),
                comment: String::new(),
                lits: Vec::new(),
                allows: Vec::new(),
                in_test: false,
            });
        }

        for tok in lex(text) {
            let mut lineno = tok.line; // 1-based
            if matches!(tok.kind, TokKind::Str | TokKind::RawStr) {
                if let Some(line) = lines.get_mut(lineno - 1) {
                    line.lits.push((tok.col, tok.text.clone()));
                }
            }
            let last = tok.text.chars().count().saturating_sub(1);
            for (k, c) in tok.text.chars().enumerate() {
                if c == '\n' {
                    lineno += 1;
                    continue;
                }
                let Some(line) = lines.get_mut(lineno - 1) else {
                    continue;
                };
                match tok.kind {
                    TokKind::Ident | TokKind::Punct | TokKind::Whitespace | TokKind::Lifetime => {
                        line.code.push(c)
                    }
                    TokKind::LineComment | TokKind::BlockComment => {
                        line.code.push(' ');
                        line.comment.push(c);
                    }
                    // Literals keep their first and last character (the
                    // delimiters, visually anchoring the span); contents
                    // are blanked so they can never trip a token lint.
                    TokKind::Str | TokKind::RawStr | TokKind::Char => {
                        line.code.push(if k == 0 || k == last { c } else { ' ' });
                    }
                }
            }
        }

        for line in &mut lines {
            line.allows = parse_allows(&line.comment);
        }
        let mut sf = SourceFile {
            rel: rel.to_string(),
            lines,
        };
        sf.mark_test_regions();
        sf
    }

    /// Read and lex a file from disk.
    pub fn load(path: &std::path::Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(rel, &text))
    }

    /// Is lint `id` suppressed at 1-based line `line`? An `audit:allow`
    /// applies to its own line and to the following line (so it can sit on
    /// a comment line directly above the flagged code).
    pub fn allowed(&self, line: usize, id: &str) -> bool {
        let hit = |l: usize| {
            self.lines
                .get(l.wrapping_sub(1))
                .map(|ln| ln.allows.iter().any(|a| a == id || a == "all"))
                .unwrap_or(false)
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// Mark lines belonging to `#[cfg(test)]` or `#[test]` items by brace
    /// tracking (`#[test]` matters in root `tests/` files, whose test fns
    /// sit outside any `#[cfg(test)]` module).
    fn mark_test_regions(&mut self) {
        let n = self.lines.len();
        let mut i = 0usize;
        while i < n {
            if self.lines[i].code.contains("#[cfg(test)]") || self.lines[i].code.contains("#[test]")
            {
                // Find the opening brace of the annotated item, then its
                // matching close, and mark everything in between.
                let mut depth: i32 = 0;
                let mut opened = false;
                let mut j = i;
                'scan: while j < n {
                    for ch in self.lines[j].code.chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            // An attribute on a braceless item (e.g. a
                            // `use`) ends at `;` before any brace opens.
                            ';' if !opened => {
                                break 'scan;
                            }
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                let end = j.min(n - 1);
                for ln in &mut self.lines[i..=end] {
                    ln.in_test = true;
                }
                i = end + 1;
            } else {
                i += 1;
            }
        }
    }
}

/// Extract lint ids from `audit:allow(a, b)` occurrences in a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("audit:allow(") {
        let after = &rest[pos + "audit:allow(".len()..];
        if let Some(close) = after.find(')') {
            for id in after[..close].split(',') {
                let id = id.trim();
                if !id.is_empty() {
                    out.push(id.to_string());
                }
            }
            rest = &after[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Split a `code` view line into (column, token) pairs. Tokens are
/// identifiers (including keywords) or single punctuation characters;
/// whitespace separates. Columns are 1-based char positions.
pub fn tokenize(code: &str) -> Vec<(usize, Tok)> {
    let mut out = Vec::new();
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push((start + 1, Tok::Ident(chars[start..i].iter().collect())));
        } else {
            out.push((i + 1, Tok::Punct(c)));
            i += 1;
        }
    }
    out
}

/// A lexed token: identifier/keyword or one punctuation char.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// Is this exactly punctuation `c`?
    pub fn is(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let sf = SourceFile::parse(
            "x.rs",
            "let a = \"thread_rng\"; // thread_rng here too\nlet b = 1; /* Instant */ let c = 2;\n",
        );
        assert!(!sf.lines[0].code.contains("thread_rng"));
        assert!(sf.lines[0].comment.contains("thread_rng"));
        assert!(!sf.lines[1].code.contains("Instant"));
        assert!(sf.lines[1].code.contains("let c"));
    }

    #[test]
    fn columns_are_preserved() {
        let raw = "let a = \"xy\"; // tail";
        let sf = SourceFile::parse("x.rs", raw);
        assert_eq!(sf.lines[0].code.chars().count(), raw.chars().count());
        assert!(sf.lines[0].code.starts_with("let a = \""));
    }

    #[test]
    fn raw_strings_and_chars() {
        let sf = SourceFile::parse(
            "x.rs",
            "let a = r#\"panic!(\"x\")\"#;\nlet b = '\\n'; let lt: &'static str = \"\";\n",
        );
        assert!(!sf.lines[0].code.contains("panic"));
        assert!(sf.lines[1].code.contains("static"), "{}", sf.lines[1].code);
    }

    #[test]
    fn multiline_block_comment() {
        let sf = SourceFile::parse("x.rs", "/* Instant::now()\n SystemTime */ let x = 1;\n");
        assert!(!sf.lines[0].code.contains("Instant"));
        assert!(!sf.lines[1].code.contains("SystemTime"));
        assert!(sf.lines[1].code.contains("let x"));
    }

    #[test]
    fn string_literals_are_collected_per_line() {
        let sf = SourceFile::parse("x.rs", "let a = \"tn-lab/v1\";\nlet b = 2;\n");
        assert_eq!(sf.lines[0].lits.len(), 1);
        let (col, text) = &sf.lines[0].lits[0];
        assert_eq!(*col, 9);
        assert_eq!(text, "\"tn-lab/v1\"");
        assert!(sf.lines[1].lits.is_empty());
    }

    #[test]
    fn allows_parse_and_apply() {
        let sf = SourceFile::parse(
            "x.rs",
            "// audit:allow(det-wallclock): reason\nlet t = 1;\nlet u = 2; // audit:allow(a, b)\n",
        );
        assert_eq!(sf.lines[0].allows, vec!["det-wallclock"]);
        assert!(sf.allowed(1, "det-wallclock"));
        assert!(
            sf.allowed(2, "det-wallclock"),
            "allow reaches the next line"
        );
        assert!(!sf.allowed(3, "det-wallclock"));
        assert!(sf.allowed(3, "a") && sf.allowed(3, "b"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let m = 1; }\n}\nfn after() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(!sf.lines[0].in_test);
        assert!(
            sf.lines[1].in_test
                && sf.lines[2].in_test
                && sf.lines[3].in_test
                && sf.lines[4].in_test
        );
        assert!(!sf.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let text = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let sf = SourceFile::parse("x.rs", text);
        assert!(sf.lines[0].in_test && sf.lines[1].in_test);
        assert!(!sf.lines[2].in_test);
    }

    #[test]
    fn tokenize_splits_idents_and_punct() {
        let toks = tokenize("self.books.keys()");
        let idents: Vec<&str> = toks.iter().filter_map(|(_, t)| t.ident()).collect();
        assert_eq!(idents, vec!["self", "books", "keys"]);
        assert!(toks[1].1.is('.'));
    }
}
