//! Workspace call graph and taint propagation.
//!
//! Two properties are computed for every function the item parser found:
//!
//! * **hot** — reachable from a registered kernel dispatch entry point
//!   ([`HOT_ROOTS`]): `Node::on_frame`/`on_timer` handlers, `Scheduler`
//!   queue operations, `Link` timing methods, and `Simulator::step`
//!   itself. Hot code runs once per simulated frame/event, so the
//!   `hotpath-*` lints apply to it.
//! * **det** — determinism-critical: hot code, plus any function from
//!   which a schedule-feeding kernel API ([`DET_SINKS`]) is reachable,
//!   plus everything reachable from those. If such code consults the
//!   wall clock or iterates a `HashMap`, two runs of the same scenario
//!   can diverge. The `det-*` lints apply to it.
//!
//! Name resolution is deliberately over-approximate (no type inference):
//! an unqualified method call edges to every workspace method of that
//! name, *except* names on the [`COMMON`] blocklist — std-dominated
//! names (`push`, `get`, `iter`, ...) whose matches would be noise.
//! Qualified calls (`Type::m`) resolve only against known workspace
//! types, so `Vec::new` or `Instant::now` never create edges. A missed
//! edge can under-taint (a lint stays quiet), never crash; the golden
//! divergence check remains the dynamic backstop.

use std::collections::BTreeSet;

use crate::items::{Call, FnDef, ParsedFile};

/// How a hot root is identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// Any impl (or default body) of `OWNER::METHOD` where `OWNER` is a
    /// trait: every implementor's method is an independent root.
    Trait,
    /// The inherent method `OWNER::METHOD` of a concrete type.
    Inherent,
}

/// One registered hot-path entry point.
#[derive(Debug, Clone, Copy)]
pub struct RootSpec {
    /// Trait or type name owning the method.
    pub owner: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Trait-dispatch or inherent.
    pub kind: RootKind,
    /// Why this is hot (shown in `tn-audit lints` and docs).
    pub why: &'static str,
}

/// The hot-root registry: kernel dispatch entry points. Everything
/// reachable from these runs once per simulated frame or event.
pub const HOT_ROOTS: &[RootSpec] = &[
    RootSpec {
        owner: "Node",
        method: "on_frame",
        kind: RootKind::Trait,
        why: "per-frame dispatch handler",
    },
    RootSpec {
        owner: "Node",
        method: "on_timer",
        kind: RootKind::Trait,
        why: "timer dispatch handler",
    },
    RootSpec {
        owner: "Scheduler",
        method: "push",
        kind: RootKind::Trait,
        why: "event-queue insert, once per scheduled event",
    },
    RootSpec {
        owner: "Scheduler",
        method: "pop",
        kind: RootKind::Trait,
        why: "event-queue extract, once per dispatched event",
    },
    RootSpec {
        owner: "Scheduler",
        method: "next_at",
        kind: RootKind::Trait,
        why: "event-queue peek on the dispatch loop",
    },
    RootSpec {
        owner: "Link",
        method: "transmit",
        kind: RootKind::Trait,
        why: "per-frame link timing",
    },
    RootSpec {
        owner: "Link",
        method: "decompose",
        kind: RootKind::Trait,
        why: "per-hop latency decomposition",
    },
    RootSpec {
        owner: "Simulator",
        method: "step",
        kind: RootKind::Inherent,
        why: "the kernel dispatch loop itself",
    },
    // `build` sits on the COMMON blocklist (builder-pattern calls would
    // otherwise edge every hot fn into every workspace `build`), so the
    // per-frame arena builder is registered as a root of its own.
    RootSpec {
        owner: "FrameBuilder",
        method: "build",
        kind: RootKind::Inherent,
        why: "arena frame finalization, once per constructed frame",
    },
];

/// Schedule-feeding kernel APIs: calling one of these means the caller's
/// behaviour shapes the event schedule, so the caller (and everything it
/// can reach) must be deterministic.
pub const DET_SINKS: &[(&str, &str)] = &[
    ("Simulator", "new"),
    ("Simulator", "with_scheduler"),
    ("Simulator", "add_node"),
    ("Simulator", "connect"),
    ("Simulator", "connect_directed"),
    ("Simulator", "inject_frame"),
    ("Simulator", "schedule_timer"),
    ("Simulator", "install_link"),
    ("Simulator", "new_frame"),
    ("Simulator", "new_frame_zeroed"),
    ("Simulator", "new_frame_copied"),
    ("Simulator", "recycle_frame"),
    ("Simulator", "frame"),
    ("Context", "send"),
    ("Context", "set_timer"),
    ("Context", "deliver_local"),
    ("Context", "new_frame"),
    ("Context", "new_frame_with_meta"),
    ("Context", "new_frame_zeroed"),
    ("Context", "new_frame_copied"),
    ("Context", "recycle"),
    ("Context", "frame"),
    ("Context", "clone_frame"),
    ("FrameBuilder", "build"),
];

/// Method names so dominated by std receivers (`Vec`, `Option`, slices,
/// iterators, maps) that an unqualified `.name(` call must not resolve
/// onto same-named workspace methods. A call spelled `self.name(...)`
/// still resolves against the caller's own type first, so a workspace
/// type using one of these names keeps its own intra-type edges.
pub const COMMON: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    // Builder-pattern terminator: `.build()` chains off `ctx.frame()` on
    // every hot path and would otherwise edge into each workspace
    // `build` (fabric builders, report builders, ...). FrameBuilder's
    // own `build` is covered by its HOT_ROOTS / DET_SINKS entries.
    "build",
    "bytes",
    "chain",
    "chars",
    "checked_add",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "push",
    "push_str",
    "read",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_whitespace",
    "splitn",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "then",
    "then_some",
    "to_le_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
];

/// Std module names: a `mod::f(...)` call whose qualifier is one of these
/// is a std call, never a workspace one.
const STD_MODULES: &[&str] = &[
    "mem",
    "ptr",
    "cmp",
    "fmt",
    "str",
    "slice",
    "iter",
    "time",
    "thread",
    "fs",
    "io",
    "env",
    "process",
    "collections",
    "convert",
    "array",
    "char",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
];

/// Taint verdict for one function.
#[derive(Debug, Clone, Default)]
pub struct FnTaint {
    /// `Some(note)` if hot; the note cites the call chain from its root.
    pub hot: Option<String>,
    /// `Some(note)` if determinism-critical (superset of hot).
    pub det: Option<String>,
}

/// Compute per-function taints for the whole workspace. `files` pairs
/// each parsed file with whether its functions are allowed to *be* hot
/// roots (crate sources yes; examples/tests scaffolding no). The result
/// is indexed `[file][fn]`, parallel to `files[i].0.fns`.
pub fn analyze(files: &[(&ParsedFile, bool)]) -> Vec<Vec<FnTaint>> {
    // Flatten non-test fns into one indexable table.
    let mut defs: Vec<(usize, usize, &FnDef)> = Vec::new();
    for (fi, (pf, _)) in files.iter().enumerate() {
        for (li, d) in pf.fns.iter().enumerate() {
            if !d.is_test {
                defs.push((fi, li, d));
            }
        }
    }
    let n = defs.len();

    let mut known_types: BTreeSet<&str> = BTreeSet::new();
    for (_, _, d) in &defs {
        if let Some(t) = &d.self_ty {
            known_types.insert(t.as_str());
        }
        if let Some(t) = &d.trait_name {
            known_types.insert(t.as_str());
        }
    }

    let free_named = |name: &str| -> Vec<usize> {
        defs.iter()
            .enumerate()
            .filter(|(_, (_, _, d))| d.self_ty.is_none() && d.name == name)
            .map(|(g, _)| g)
            .collect()
    };
    let method_named = |name: &str| -> Vec<usize> {
        defs.iter()
            .enumerate()
            .filter(|(_, (_, _, d))| d.self_ty.is_some() && d.name == name)
            .map(|(g, _)| g)
            .collect()
    };
    let type_method = |ty: &str, name: &str| -> Vec<usize> {
        defs.iter()
            .enumerate()
            .filter(|(_, (_, _, d))| d.self_ty.as_deref() == Some(ty) && d.name == name)
            .map(|(g, _)| g)
            .collect()
    };

    // Resolve call sites to edges.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (g, (fi, _, d)) in defs.iter().enumerate() {
        let std_imports = &files[*fi].0.std_imports;
        for call in &d.calls {
            let targets: Vec<usize> = match call {
                Call::Free(name) => {
                    if std_imports.iter().any(|s| s == name) {
                        Vec::new()
                    } else {
                        free_named(name)
                    }
                }
                Call::Method { name, on_self } => {
                    let own: Vec<usize> = match (&d.self_ty, on_self) {
                        (Some(ty), true) => type_method(ty, name),
                        _ => Vec::new(),
                    };
                    if !own.is_empty() {
                        own
                    } else if COMMON.contains(&name.as_str()) {
                        Vec::new()
                    } else {
                        method_named(name)
                    }
                }
                Call::Qual { qualifier, name } => {
                    let q: Option<&str> = if qualifier == "Self" {
                        d.self_ty.as_deref()
                    } else {
                        Some(qualifier.as_str())
                    };
                    match q {
                        Some(q) if q.starts_with(char::is_lowercase) => {
                            if STD_MODULES.contains(&q) {
                                Vec::new()
                            } else {
                                free_named(name)
                            }
                        }
                        Some(q) if known_types.contains(q) => type_method(q, name),
                        // Unknown (std) type: Vec::new, Instant::now, ...
                        _ => Vec::new(),
                    }
                }
            };
            for t in targets {
                if t != g {
                    edges[g].insert(t);
                }
            }
        }
    }
    let mut redges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (g, outs) in edges.iter().enumerate() {
        for &t in outs {
            redges[t].insert(g);
        }
    }

    let qualified = |g: usize| defs[g].2.qualified();
    let matches_root = |d: &FnDef, r: &RootSpec| match r.kind {
        RootKind::Trait => d.trait_name.as_deref() == Some(r.owner) && d.name == r.method,
        RootKind::Inherent => {
            d.self_ty.as_deref() == Some(r.owner) && d.trait_name.is_none() && d.name == r.method
        }
    };

    // ---- hot: forward closure from the roots ------------------------
    let mut hot_parent: Vec<Option<usize>> = vec![None; n];
    let mut hot_root: Vec<Option<&RootSpec>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (g, (fi, _, d)) in defs.iter().enumerate() {
        let hot_ok = files[*fi].1;
        if !hot_ok {
            continue;
        }
        if let Some(r) = HOT_ROOTS.iter().find(|r| matches_root(d, r)) {
            hot_root[g] = Some(r);
            queue.push(g);
        }
    }
    let mut hot_seen: Vec<bool> = vec![false; n];
    for &g in &queue {
        hot_seen[g] = true;
    }
    let mut qi = 0;
    while qi < queue.len() {
        let g = queue[qi];
        qi += 1;
        for &t in &edges[g] {
            if !hot_seen[t] {
                hot_seen[t] = true;
                hot_parent[t] = Some(g);
                queue.push(t);
            }
        }
    }
    let hot_chain = |mut g: usize| -> Vec<usize> {
        let mut chain = vec![g];
        while let Some(p) = hot_parent[g] {
            chain.push(p);
            g = p;
        }
        chain.reverse();
        chain
    };

    // ---- det: hot ∪ forward-closure(backward-closure(sinks)) --------
    let is_sink = |d: &FnDef| {
        DET_SINKS.iter().any(|(ty, m)| {
            d.name == *m
                && (d.self_ty.as_deref() == Some(*ty) || d.trait_name.as_deref() == Some(*ty))
        })
    };
    // Backward: from each fn, the next hop toward a sink (if any).
    let mut to_sink: Vec<Option<usize>> = vec![None; n];
    let mut back_seen: Vec<bool> = vec![false; n];
    let mut bq: Vec<usize> = Vec::new();
    for (g, (_, _, d)) in defs.iter().enumerate() {
        if is_sink(d) {
            back_seen[g] = true;
            bq.push(g);
        }
    }
    let mut bi = 0;
    while bi < bq.len() {
        let g = bq[bi];
        bi += 1;
        for &c in &redges[g] {
            if !back_seen[c] {
                back_seen[c] = true;
                to_sink[c] = Some(g);
                bq.push(c);
            }
        }
    }
    let sink_chain = |mut g: usize| -> Vec<usize> {
        let mut chain = vec![g];
        while let Some(s) = to_sink[g] {
            chain.push(s);
            g = s;
        }
        chain
    };
    // Forward extension: everything reachable from the backward set.
    let mut det_parent: Vec<Option<usize>> = vec![None; n];
    let mut det_seen = back_seen.clone();
    let mut fq: Vec<usize> = bq.clone();
    let mut fi2 = 0;
    while fi2 < fq.len() {
        let g = fq[fi2];
        fi2 += 1;
        for &t in &edges[g] {
            if !det_seen[t] {
                det_seen[t] = true;
                det_parent[t] = Some(g);
                fq.push(t);
            }
        }
    }

    // ---- render ------------------------------------------------------
    let mut out: Vec<Vec<FnTaint>> = files
        .iter()
        .map(|(pf, _)| vec![FnTaint::default(); pf.fns.len()])
        .collect();
    for (g, (fi, li, d)) in defs.iter().enumerate() {
        let mut t = FnTaint::default();
        if hot_seen[g] {
            let chain = hot_chain(g);
            let root = hot_root[chain[0]].expect("hot chain starts at a root");
            let path: Vec<String> = chain.iter().map(|&c| qualified(c)).collect();
            t.hot = Some(if chain.len() == 1 {
                format!(
                    "hot root {}::{} ({}): {}",
                    root.owner, root.method, root.why, path[0]
                )
            } else {
                format!(
                    "reachable from hot root {}::{}: {}",
                    root.owner,
                    root.method,
                    path.join(" -> ")
                )
            });
        }
        if det_seen[g] {
            t.det = Some(if is_sink(d) {
                format!("schedule-feeding kernel API {}", qualified(g))
            } else if back_seen[g] {
                let path: Vec<String> = sink_chain(g).iter().map(|&c| qualified(c)).collect();
                format!("feeds the simulator schedule: {}", path.join(" -> "))
            } else {
                let mut chain = vec![g];
                let mut c = g;
                while let Some(p) = det_parent[c] {
                    chain.push(p);
                    c = p;
                }
                chain.reverse();
                let path: Vec<String> = chain.iter().map(|&c| qualified(c)).collect();
                format!(
                    "reachable from schedule-feeding code: {}",
                    path.join(" -> ")
                )
            });
        } else if let Some(h) = &t.hot {
            t.det = Some(h.clone());
        }
        out[*fi][*li] = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::source::SourceFile;

    fn taints(srcs: &[&str]) -> Vec<Vec<FnTaint>> {
        let parsed: Vec<_> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| parse_file(&SourceFile::parse(&format!("f{i}.rs"), s)))
            .collect();
        let refs: Vec<(&crate::items::ParsedFile, bool)> =
            parsed.iter().map(|p| (p, true)).collect();
        analyze(&refs)
    }

    fn named<'a>(t: &'a [Vec<FnTaint>], srcs: &[&str], name: &str) -> &'a FnTaint {
        for (fi, s) in srcs.iter().enumerate() {
            let pf = parse_file(&SourceFile::parse("x.rs", s));
            if let Some(li) = pf.fns.iter().position(|f| f.name == name) {
                return &t[fi][li];
            }
        }
        panic!("fn {name} not found");
    }

    #[test]
    fn on_frame_impl_is_a_hot_root_and_taints_callees() {
        let srcs = &[
            "impl Node for Gateway {\n  fn on_frame(&mut self) { self.route(); }\n}\n\
             impl Gateway {\n  fn route(&mut self) { helper(); }\n}\n\
             fn helper() {}\nfn cold() {}\n",
        ];
        let t = taints(srcs);
        assert!(named(&t, srcs, "on_frame").hot.is_some());
        let route = named(&t, srcs, "route");
        assert!(route.hot.as_deref().unwrap().contains("on_frame"));
        assert!(named(&t, srcs, "helper").hot.is_some());
        assert!(named(&t, srcs, "cold").hot.is_none());
    }

    #[test]
    fn hot_propagates_across_files() {
        let srcs = &[
            "impl Node for Tap {\n  fn on_frame(&mut self) { decode_header(0); }\n}\n",
            "pub fn decode_header(x: u32) -> u32 { x }\n",
        ];
        let t = taints(srcs);
        let d = named(&t, srcs, "decode_header");
        assert!(d.hot.is_some(), "{d:?}");
    }

    #[test]
    fn common_method_names_do_not_create_edges() {
        let srcs = &[
            "impl Node for S {\n  fn on_frame(&mut self) { self.q.push(1); v.get(0); }\n}\n\
             impl Queue {\n  fn push(&mut self, x: u32) {}\n  fn get(&self, i: usize) {}\n}\n",
        ];
        let t = taints(srcs);
        // Queue::push matches no Scheduler trait; `.push(` is COMMON.
        assert!(named(&t, srcs, "get").hot.is_none());
    }

    #[test]
    fn qualified_std_calls_do_not_resolve() {
        let srcs = &[
            "impl Node for S {\n  fn on_frame(&mut self) { let v = Vec::new(); }\n}\n\
             impl Pool {\n  fn new() -> Pool { Pool }\n}\n",
        ];
        let t = taints(srcs);
        assert!(named(&t, srcs, "new").hot.is_none());
    }

    #[test]
    fn scheduler_impls_are_hot_without_name_heuristics() {
        let srcs = &[
            "impl Scheduler for CalendarQueue {\n  fn pop(&mut self) -> u32 { self.rotate() }\n}\n\
             impl CalendarQueue {\n  fn rotate(&mut self) -> u32 { 0 }\n}\n",
        ];
        let t = taints(srcs);
        assert!(named(&t, srcs, "rotate").hot.is_some());
    }

    #[test]
    fn schedule_feeders_become_det_critical() {
        let srcs = &["impl Simulator {\n  fn inject_frame(&mut self) {}\n}\n\
             fn build(sim: &mut Simulator) { sim.inject_frame(); shared(); }\n\
             fn shared() {}\nfn unrelated() {}\n"];
        let t = taints(srcs);
        let b = named(&t, srcs, "build");
        assert!(b.det.is_some() && b.hot.is_none(), "{b:?}");
        assert!(b.det.as_deref().unwrap().contains("inject_frame"));
        // Forward extension: called from det code.
        assert!(named(&t, srcs, "shared").det.is_some());
        assert!(named(&t, srcs, "unrelated").det.is_none());
    }

    #[test]
    fn hot_fns_are_det_too() {
        let srcs = &["impl Node for S {\n  fn on_frame(&mut self) {}\n}\n"];
        let t = taints(srcs);
        assert!(named(&t, srcs, "on_frame").det.is_some());
    }

    #[test]
    fn test_fns_are_excluded() {
        let srcs = &[
            "#[cfg(test)]\nmod t {\n  impl Node for Probe {\n    fn on_frame(&mut self) { live(); }\n  }\n}\nfn live() {}\n",
        ];
        let t = taints(srcs);
        assert!(named(&t, srcs, "live").hot.is_none());
    }

    #[test]
    fn non_root_files_contribute_no_roots() {
        let parsed = parse_file(&SourceFile::parse(
            "tests/x.rs",
            "impl Node for Probe {\n  fn on_frame(&mut self) { helper(); }\n}\nfn helper() {}\n",
        ));
        let t = analyze(&[(&parsed, false)]);
        assert!(t[0].iter().all(|f| f.hot.is_none()));
    }
}
