//! The wire-format schema registry.
//!
//! Every JSON/JSONL artifact the workspace emits self-identifies with a
//! `tn-<family>/v<N>` marker string. This module is the single source of
//! truth for which markers exist; the `schema-version` lint flags any
//! string literal that *looks* like a marker (`tn-…/v<digits>`) but is
//! not registered — catching both typos (`tn-trce/v1`) and silent
//! version bumps that skip the registry.

/// Every wire-format version string the workspace may emit or parse.
/// Keep sorted; adding a format or bumping a version starts here.
pub const SCHEMA_REGISTRY: &[&str] = &[
    "tn-audit/v1",
    "tn-bench/v1",
    "tn-exp/v1",
    "tn-flight/v1",
    "tn-lab-spec/v1",
    "tn-lab/v1",
    "tn-report/v1",
    "tn-trace/v1",
];

/// Is `marker` a registered wire-format version?
pub fn is_registered(marker: &str) -> bool {
    SCHEMA_REGISTRY.contains(&marker)
}

/// Scan one string-literal's text (delimiters included) for version-
/// marker-shaped substrings: `tn-<kebab>/v<digits>`. Returns each marker
/// with its char offset inside `lit`.
pub fn find_markers(lit: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = lit.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let tail_ch = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-';
    while i + 1 < chars.len() {
        // Candidate start: `tn-` at a non-word boundary.
        let boundary = i == 0 || !tail_ch(chars[i - 1]);
        if !(boundary
            && chars[i] == 't'
            && chars.get(i + 1) == Some(&'n')
            && chars.get(i + 2) == Some(&'-'))
        {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        while j < chars.len() && tail_ch(chars[j]) {
            j += 1;
        }
        // Family must be non-empty and followed by `/v<digits>`.
        if j > i + 3 && chars.get(j) == Some(&'/') && chars.get(j + 1) == Some(&'v') {
            let mut k = j + 2;
            while k < chars.len() && chars[k].is_ascii_digit() {
                k += 1;
            }
            if k > j + 2 {
                out.push((i, chars[i..k].iter().collect()));
                i = k;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_registered() {
        let mut sorted = SCHEMA_REGISTRY.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, SCHEMA_REGISTRY);
        assert!(is_registered("tn-trace/v1"));
        assert!(!is_registered("tn-trace/v2"));
    }

    #[test]
    fn markers_are_found_in_literals() {
        let hits = find_markers("\"schema\":\"tn-lab/v1\"");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "tn-lab/v1");
        assert_eq!(find_markers("\"plain text\""), Vec::new());
    }

    #[test]
    fn boundary_prevents_partial_matches() {
        // `btn-lab/v1` is not a marker; `tn-lab/v12` is (version 12).
        assert!(find_markers("\"btn-lab/v1\"").is_empty());
        let hits = find_markers("\"tn-lab/v12\"");
        assert_eq!(hits[0].1, "tn-lab/v12");
    }

    #[test]
    fn multiple_markers_in_one_literal() {
        let hits = find_markers("\"tn-trace/v1 then tn-bogus/v9\"");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].1, "tn-bogus/v9");
    }
}
