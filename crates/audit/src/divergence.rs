//! Dual-run divergence checking.
//!
//! The static lints catch *sources* of nondeterminism; this module checks
//! the *property itself*: every registered scenario is run twice with the
//! same seed, and the kernel trace digests (FNV-1a over the full event
//! stream, see `tn_sim::TraceLog`) must match bit-for-bit. Any HashMap
//! iteration order, address-dependent hash, or stray entropy that escapes
//! into event timing or ordering flips the digest.
//!
//! The registry mirrors every example under `examples/` — same topologies,
//! same seeds — with durations trimmed so `tn-audit check` stays fast. The
//! feed-handler example has no simulator, so its signature hashes the
//! published packet bytes instead of a kernel trace.

use tn_core::{
    CloudDesign, FpgaHybrid, LayerOneSwitches, ScenarioConfig, ShardSpec, TradingNetworkDesign,
    TraditionalSwitches,
};
use tn_sim::{SchedulerKind, SimTime, Simulator, EMPTY_DIGEST};

/// What one scenario run distills to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSignature {
    /// Trace digest (or content digest for non-kernel scenarios).
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
}

/// A registered divergence scenario.
pub struct Scenario {
    /// Stable name (mirrors the example it covers).
    pub name: &'static str,
    /// Execute one run under the given event scheduler and return its
    /// signature. Scenarios with no kernel (feed-handler) ignore the kind.
    pub run: fn(SchedulerKind) -> RunSignature,
}

/// Result of checking one scenario: two reference-scheduler runs (the
/// classic dual-run determinism check) plus one calendar-queue run (the
/// scheduler-equivalence check).
#[derive(Debug, Clone)]
pub struct DivergenceOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// First run (reference binary-heap scheduler).
    pub first: RunSignature,
    /// Second run (reference binary-heap scheduler).
    pub second: RunSignature,
    /// Calendar-queue run; must equal the reference runs bit-for-bit.
    pub calendar: RunSignature,
}

impl DivergenceOutcome {
    /// Did the dual runs agree with each other *and* with the
    /// calendar-queue run?
    pub fn passed(&self) -> bool {
        self.first == self.second && self.first == self.calendar
    }
}

/// All registered scenarios: one (or more) per example in `examples/`.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "quickstart",
            run: run_quickstart,
        },
        Scenario {
            name: "shootout-traditional",
            run: |k| run_design(&TraditionalSwitches::default(), 7, k),
        },
        Scenario {
            name: "shootout-cloud",
            run: |k| run_design(&CloudDesign::default(), 7, k),
        },
        Scenario {
            name: "shootout-l1",
            run: |k| run_design(&LayerOneSwitches::default(), 7, k),
        },
        Scenario {
            name: "shootout-fpga",
            run: |k| run_design(&FpgaHybrid::default(), 7, k),
        },
        Scenario {
            name: "feed-handler",
            run: run_feed_handler,
        },
        Scenario {
            name: "mcast-cliff",
            run: run_mcast_cliff,
        },
        Scenario {
            name: "metro-arbitrage-fiber",
            run: |k| run_metro(tn_topo::metro::CircuitKind::Fiber, k),
        },
        Scenario {
            name: "metro-arbitrage-microwave",
            run: |k| run_metro(tn_topo::metro::CircuitKind::Microwave, k),
        },
        Scenario {
            name: "fault-loss-recovery",
            run: run_fault_loss_recovery,
        },
        Scenario {
            name: "fault-ab-failover",
            run: run_fault_ab_failover,
        },
        Scenario {
            name: "fault-quickstart-degraded",
            run: run_quickstart_degraded,
        },
        Scenario {
            name: "obs-on-vs-off",
            run: run_quickstart_obs_on_vs_off,
        },
        Scenario {
            name: "flight-on-vs-off",
            run: run_quickstart_flight_on_vs_off,
        },
        Scenario {
            name: "latency-decomposition",
            run: run_latency_decomposition,
        },
        Scenario {
            name: "shard-vs-serial-quickstart",
            run: run_shard_quickstart,
        },
        Scenario {
            name: "shard-vs-serial-faulted",
            run: run_shard_faulted,
        },
        Scenario {
            name: "lab-parallel-vs-serial",
            run: run_lab_parallel_vs_serial,
        },
        Scenario {
            name: "lab-run-vs-standalone",
            run: run_lab_run_vs_standalone,
        },
        Scenario {
            name: "cloud-zero-knobs-transparent",
            run: run_cloud_zero_knobs,
        },
        Scenario {
            name: "cloud-fairness-design",
            run: run_cloud_fairness_design,
        },
        Scenario {
            name: "cloud-fairness-frontier",
            run: run_cloud_fairness_frontier,
        },
    ]
}

/// Run each scenario (optionally filtered by substring) twice under the
/// reference scheduler and once under the calendar queue, and collect the
/// outcomes.
pub fn run_all(filter: Option<&str>) -> Vec<DivergenceOutcome> {
    registry()
        .iter()
        .filter(|s| filter.is_none_or(|f| s.name.contains(f)))
        .map(|s| DivergenceOutcome {
            name: s.name,
            first: (s.run)(SchedulerKind::BinaryHeap),
            second: (s.run)(SchedulerKind::BinaryHeap),
            calendar: (s.run)(SchedulerKind::CalendarQueue),
        })
        .collect()
}

/// Divergence scenarios trim the measured interval: digest equality is a
/// property of the machinery, not of how long it runs.
fn trimmed(mut sc: ScenarioConfig) -> ScenarioConfig {
    sc.duration = SimTime::from_ms(8);
    sc.warmup = SimTime::from_ms(1);
    sc
}

fn run_quickstart(kind: SchedulerKind) -> RunSignature {
    // Mirrors `examples/quickstart.rs`: TraditionalSwitches, seed 42.
    run_design(&TraditionalSwitches::default(), 42, kind)
}

fn run_design(design: &dyn TradingNetworkDesign, seed: u64, kind: SchedulerKind) -> RunSignature {
    let mut sc = trimmed(ScenarioConfig::small(seed));
    sc.scheduler = kind;
    let report = design.run(&sc);
    RunSignature {
        digest: report.trace_digest,
        events: report.events_recorded,
    }
}

fn sim_signature(sim: &Simulator) -> RunSignature {
    RunSignature {
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
    }
}

/// Mirrors `examples/feed_handler.rs`: matching engine → publisher →
/// A/B-arbitrating normalizer, no network. The signature hashes every
/// published packet and every normalized record count.
fn run_feed_handler(kind: SchedulerKind) -> RunSignature {
    // No kernel here — the scenario hashes publisher bytes directly, so
    // the scheduler cannot matter; accept the kind for registry symmetry.
    let _ = kind;
    use tn_feed::normalize::{HashRepartition, NormalizerCore};
    use tn_market::{
        FeedPublisher, FlowMix, MatchingEngine, OrderFlowGenerator, PartitionScheme,
        SymbolDirectory,
    };
    use tn_sim::{Rng, SeedableRng, SmallRng};

    let dir = SymbolDirectory::synthetic(100);
    let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
    let mut flow = OrderFlowGenerator::new(&dir, FlowMix::default());
    let mut publisher = FeedPublisher::new(PartitionScheme::ByHash { units: 4 }, 1400, 0);
    let mut rng = SmallRng::seed_from_u64(99);

    let mut digest = EMPTY_DIGEST;
    let mut events = 0u64;
    let fold = |digest: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *digest ^= u64::from(b);
            *digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    };

    let mut packets: Vec<Vec<u8>> = Vec::new();
    for batch in 0..100u64 {
        let mut msgs = Vec::new();
        for _ in 0..40 {
            msgs.extend(flow.step(&dir, &mut engine, &mut rng, (batch * 2_000_000) as u32));
        }
        let time_ns = 34_200_000_000_000 + batch * 2_000_000;
        for p in publisher.publish(&dir, time_ns, &msgs) {
            packets.push(p.bytes);
        }
    }

    let mut normalizer = NormalizerCore::new(1, HashRepartition { partitions: 16 });
    normalizer.preload_symbols(dir.instruments().iter().map(|i| i.symbol));
    for (i, pkt) in packets.iter().enumerate() {
        fold(&mut digest, pkt);
        events += 1;
        let drop_a = rng.gen::<f64>() < 0.02;
        let drop_b = rng.gen::<f64>() < 0.02;
        let t = 34_200_000_000_000 + i as u64;
        for (side_dropped, _) in [(drop_a, 'a'), (drop_b, 'b')] {
            if side_dropped {
                continue;
            }
            if let Ok(outs) = normalizer.on_packet(pkt, t) {
                for out in outs {
                    fold(&mut digest, &[out.record.kind as u8]);
                    fold(&mut digest, &out.partition.to_le_bytes());
                    events += 1;
                }
            }
        }
    }
    RunSignature { digest, events }
}

/// Mirrors `examples/mcast_cliff.rs`: 96 IGMP joins against a 64-entry
/// mroute table, then one packet per group; seed 3.
fn run_mcast_cliff(kind: SchedulerKind) -> RunSignature {
    use tn_netdev::EtherLink;
    use tn_sim::{Context, Frame, Node, PortId};
    use tn_switch::{commodity, CommoditySwitch, SwitchConfig};
    use tn_wire::{eth, igmp, ipv4, stack};

    struct Receiver;
    impl Node for Receiver {
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _p: PortId, _f: Frame) {}
    }

    let cfg = SwitchConfig {
        mcast_table_size: 64,
        sw_service: SimTime::from_us(25),
        sw_queue: 16,
        ..SwitchConfig::default()
    };
    let mut sim = Simulator::with_scheduler(3, kind);
    let sw = sim.add_node("switch", CommoditySwitch::new(cfg));
    let rx = sim.add_node("rx", Receiver);
    // EtherLink has no LinkSpec equivalent: install the built model
    // directly, one instance per direction.
    let link = EtherLink::ten_gig(SimTime::ZERO);
    sim.install_link(sw, PortId(1), rx, PortId(0), Box::new(link.clone()));
    sim.install_link(rx, PortId(0), sw, PortId(1), Box::new(link));

    for g in 0..96u32 {
        let join = commodity::igmp_frame(
            igmp::MessageType::Report,
            eth::MacAddr::host(2),
            ipv4::Addr::host(2),
            ipv4::Addr::multicast_group(g),
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
    }
    sim.run();

    let t0 = sim.now();
    for g in 0..96u32 {
        let frame = stack::build_udp(
            eth::MacAddr::host(1),
            None,
            ipv4::Addr::host(1),
            ipv4::Addr::multicast_group(g),
            30_001,
            30_001,
            &[0u8; 100],
        );
        let f = sim.frame().copy_from(&frame).build();
        sim.inject_frame(t0, sw, PortId(0), f);
    }
    sim.run();
    sim_signature(&sim)
}

/// Mirrors `examples/metro_arbitrage.rs`: two exchanges in two colos, the
/// remote feed over a metro circuit, L1-muxed into a cross-market arb
/// strategy; seed 11, trimmed to 12 ms.
fn run_metro(kind: tn_topo::metro::CircuitKind, sched: SchedulerKind) -> RunSignature {
    use tn_market::{Exchange, ExchangeConfig, PartitionScheme, SymbolDirectory};
    use tn_netdev::EtherLink;
    use tn_sim::PortId;
    use tn_switch::l1s::{L1Config, L1Switch};
    use tn_topo::metro::MetroRegion;
    use tn_trading::{
        normalizer, strategy, CrossMarketArb, Normalizer, NormalizerConfig, Strategy,
        StrategyConfig,
    };
    use tn_wire::Symbol;

    let metro = MetroRegion::nj_triangle();
    let dir = SymbolDirectory::synthetic(30);
    let symbols: Vec<Symbol> = dir.instruments().iter().map(|i| i.symbol).collect();
    let partitions = 4u16;
    let mut sim = Simulator::with_scheduler(11, sched);

    let mk_exchange = |sim: &mut Simulator, id: u8, mcast_base: u32| {
        let mut cfg = ExchangeConfig::new(id, dir.clone());
        cfg.scheme = PartitionScheme::ByHash { units: 2 };
        cfg.mcast_base = mcast_base;
        cfg.background_rate = 30_000.0;
        cfg.tick_interval = SimTime::from_us(100);
        cfg.seed = 100 + u64::from(id);
        sim.add_node(format!("exch{id}"), Exchange::new(cfg))
    };
    let exch_local = mk_exchange(&mut sim, 1, 0);
    let exch_remote = mk_exchange(&mut sim, 2, 100);

    let mk_norm = |sim: &mut Simulator, i: u32, exchange_id: u8| {
        let mut cfg = NormalizerConfig::new(exchange_id, i);
        cfg.out_partitions = partitions;
        cfg.out_mcast_base = 20_000;
        cfg.preload = symbols.clone();
        cfg.per_message_service = SimTime::from_ns(650);
        sim.add_node(format!("norm{i}"), Normalizer::new(cfg))
    };
    let norm_local = mk_norm(&mut sim, 0, 1);
    let norm_remote = mk_norm(&mut sim, 1, 2);

    // Concrete link models (EtherLink, metro circuits) have no LinkSpec
    // equivalent: install the built models directly, one per direction.
    let attach = |sim: &mut Simulator,
                  a: tn_sim::NodeId,
                  ap: PortId,
                  b: tn_sim::NodeId,
                  bp: PortId,
                  link: Box<dyn tn_sim::Link>,
                  back: Box<dyn tn_sim::Link>| {
        sim.install_link(a, ap, b, bp, link);
        sim.install_link(b, bp, a, ap, back);
    };
    let l = EtherLink::ten_gig(SimTime::from_ns(25));
    attach(
        &mut sim,
        exch_local,
        PortId(0),
        norm_local,
        normalizer::FEED_A,
        Box::new(l.clone()),
        Box::new(l),
    );
    let circuit = metro.circuit(1, 0, kind);
    attach(
        &mut sim,
        exch_remote,
        PortId(0),
        norm_remote,
        normalizer::FEED_A,
        Box::new(circuit.clone()),
        Box::new(circuit),
    );

    let mut mux = L1Switch::new(L1Config::default());
    mux.provision_merge(PortId(0), PortId(2));
    mux.provision_merge(PortId(1), PortId(2));
    let mux = sim.add_node("mux", mux);
    let l = EtherLink::ten_gig(SimTime::from_ns(25));
    attach(
        &mut sim,
        norm_local,
        normalizer::OUT,
        mux,
        PortId(0),
        Box::new(l.clone()),
        Box::new(l.clone()),
    );
    attach(
        &mut sim,
        norm_remote,
        normalizer::OUT,
        mux,
        PortId(1),
        Box::new(l.clone()),
        Box::new(l),
    );

    let mut cfg = StrategyConfig::new(0, symbols.clone());
    cfg.mcast_base = 20_000;
    let mut subs = tn_feed::SubscriptionSet::unbounded();
    for p in 0..partitions {
        subs.subscribe(p);
    }
    cfg.subscriptions = subs;
    cfg.send_igmp_joins = false;
    let strat = sim.add_node("arb", Strategy::new(cfg, CrossMarketArb::default()));
    let l = EtherLink::ten_gig(SimTime::from_ns(25));
    attach(
        &mut sim,
        mux,
        PortId(2),
        strat,
        strategy::FEED,
        Box::new(l.clone()),
        Box::new(l),
    );

    sim.schedule_timer(SimTime::ZERO, exch_local, tn_market::TICK);
    sim.schedule_timer(SimTime::ZERO, exch_remote, tn_market::TICK);
    sim.run_until(SimTime::from_ms(12));
    sim_signature(&sim)
}

/// Mirrors `exp_loss_recovery` (trimmed): lossy feed, gap requests,
/// retransmission fills. The fault layer owns its own PRNG, so two runs
/// must agree even though every drop decision is random-looking.
fn run_fault_loss_recovery(kind: SchedulerKind) -> RunSignature {
    use tn_bench::faultsim::{run_loss_recovery, LossRecoveryConfig};
    use tn_fault::FaultSpec;

    let mut cfg = LossRecoveryConfig::new(1, FaultSpec::new(11).with_iid_loss(0.01));
    cfg.packets = 800;
    cfg.scheduler = kind;
    let run = run_loss_recovery(&cfg);
    RunSignature {
        digest: run.digest,
        events: run.events,
    }
}

/// Mirrors `exp_ab_failover` (trimmed): A-side outage, arbitration keeps
/// the stream whole out of B.
fn run_fault_ab_failover(kind: SchedulerKind) -> RunSignature {
    use tn_bench::faultsim::{run_ab_failover, AbFailoverConfig};

    let mut cfg = AbFailoverConfig::new(2);
    cfg.packets = 2_400; // 12 ms: through the outage start
    cfg.scheduler = kind;
    let run = run_ab_failover(&cfg);
    RunSignature {
        digest: run.digest,
        events: run.events,
    }
}

/// The quickstart scenario with a burst-degraded feed: the full design-1
/// topology with FaultLink-wrapped publish links must still dual-run to
/// identical digests.
fn run_quickstart_degraded(kind: SchedulerKind) -> RunSignature {
    use tn_fault::FaultSpec;

    let mut sc = trimmed(ScenarioConfig::small(42));
    sc.scheduler = kind;
    sc.feed_fault = Some(FaultSpec::new(13).with_burst_loss(0.01, 0.3, 0.0, 0.9));
    let report = TraditionalSwitches::default().run(&sc);
    RunSignature {
        digest: report.trace_digest,
        events: report.events_recorded,
    }
}

/// The quickstart scenario executed through the sharded kernel: for every
/// shard count 1..=8 the auto-partitioned run must reproduce the serial
/// event stream bit-for-bit — the conservative-lookahead windows, the
/// K-way dispatch merge, and the provisional-id translation are pure
/// plumbing around the same event order. Returns the serial signature
/// (pinned against the golden quickstart digest in tests).
fn run_shard_quickstart(kind: SchedulerKind) -> RunSignature {
    let serial = run_quickstart(kind);
    for k in 1..=8u16 {
        let mut sc = trimmed(ScenarioConfig::small(42));
        sc.scheduler = kind;
        sc.shards = ShardSpec::Auto(k);
        let report = TraditionalSwitches::default().run(&sc);
        let sharded = RunSignature {
            digest: report.trace_digest,
            events: report.events_recorded,
        };
        assert_eq!(
            serial, sharded,
            "sharded quickstart (k={k}) must equal the serial run"
        );
    }
    serial
}

/// The degraded quickstart (burst-lossy feed) through the sharded kernel:
/// FaultLink owns its PRNG, so fault decisions are identical no matter
/// which shard replays the link — the sharded run must reproduce the
/// serial faulted stream for every shard count.
fn run_shard_faulted(kind: SchedulerKind) -> RunSignature {
    use tn_fault::FaultSpec;

    let serial = run_quickstart_degraded(kind);
    for k in [2u16, 4, 8] {
        let mut sc = trimmed(ScenarioConfig::small(42));
        sc.scheduler = kind;
        sc.feed_fault = Some(FaultSpec::new(13).with_burst_loss(0.01, 0.3, 0.0, 0.9));
        sc.shards = ShardSpec::Auto(k);
        let report = TraditionalSwitches::default().run(&sc);
        let sharded = RunSignature {
            digest: report.trace_digest,
            events: report.events_recorded,
        };
        assert_eq!(
            serial, sharded,
            "sharded faulted quickstart (k={k}) must equal the serial run"
        );
    }
    serial
}

/// The quickstart scenario with every telemetry switch on, compared
/// against the same run with telemetry off: provenance accumulation, the
/// metrics registry, and trace export are pure side-state, so the two
/// event streams must be bit-for-bit identical. Returns the telemetry-on
/// signature (pinned against the golden quickstart digest in tests).
fn run_quickstart_obs_on_vs_off(kind: SchedulerKind) -> RunSignature {
    let off = run_quickstart(kind);
    let mut sc = trimmed(ScenarioConfig::small(42));
    sc.scheduler = kind;
    sc.obs = tn_sim::ObsConfig::full();
    let report = TraditionalSwitches::default().run(&sc);
    let on = RunSignature {
        digest: report.trace_digest,
        events: report.events_recorded,
    };
    assert_eq!(off, on, "telemetry must not perturb the event stream");
    on
}

/// The quickstart scenario with the tn-flight recorder and kernel
/// profiler on, compared against the same run with both off: recording
/// the last-N ring and bumping profiler counters is pure side-state, so
/// the event streams must be bit-for-bit identical. On mismatch the
/// assert carries the flight dump — the recorder's own post-mortem of
/// the diverged run. Returns the flight-on signature (pinned against
/// the golden quickstart digest in tests).
fn run_quickstart_flight_on_vs_off(kind: SchedulerKind) -> RunSignature {
    let off = run_quickstart(kind);
    let mut sc = trimmed(ScenarioConfig::small(42));
    sc.scheduler = kind;
    sc.obs.flight = true;
    sc.obs.flight_capacity = 512;
    sc.obs.profile = true;
    let report = TraditionalSwitches::default().run(&sc);
    let on = RunSignature {
        digest: report.trace_digest,
        events: report.events_recorded,
    };
    assert_eq!(
        off,
        on,
        "flight recorder/profiler must not perturb the event stream\n{}",
        report.flight_dump.as_deref().unwrap_or("(no flight dump)")
    );
    assert!(
        report.profile.is_some(),
        "profiler was enabled; the report must carry a KernelProfile"
    );
    on
}

/// Mirrors `exp_latency_decomposition` (E21): the shared decomposition
/// chain with full telemetry — per-frame provenance through a tap and a
/// store-and-forward relay.
fn run_latency_decomposition(kind: SchedulerKind) -> RunSignature {
    use tn_bench::obssim::{run_decomposition, DecompositionConfig};

    let mut cfg = DecompositionConfig::new(42);
    cfg.scheduler = kind;
    let run = run_decomposition(&cfg, tn_sim::ObsConfig::full());
    assert_eq!(
        run.max_residual_ps, 0,
        "provenance must reconcile against the kernel clock"
    );
    RunSignature {
        digest: run.digest,
        events: run.events,
    }
}

/// The tn-lab tentpole invariant: the smoke grid (3 strategies × 3
/// thresholds × 2 tick intervals on design 1) run on 4 workers must
/// render the *byte-identical* `tn-lab/v1` document a 1-worker run
/// renders, and the grid's first cell — the trimmed quickstart — must
/// carry the golden quickstart digest. The signature hashes the merged
/// document with the kernel's own FNV-1a fold.
fn run_lab_parallel_vs_serial(kind: SchedulerKind) -> RunSignature {
    use tn_lab::{run_batch, LabReport, ScenarioExecutor, SweepSpec};

    let exec = ScenarioExecutor { scheduler: kind };
    let spec = SweepSpec::smoke();
    let manifest = spec.expand().expect("smoke spec expands");
    let serial = run_batch(&manifest, 1, &exec).expect("serial batch");
    let parallel = run_batch(&manifest, 4, &exec).expect("parallel batch");
    let serial_doc = LabReport::build(&spec.name, &spec.base, &manifest, &serial).to_json();
    let parallel_doc = LabReport::build(&spec.name, &spec.base, &manifest, &parallel).to_json();
    assert_eq!(
        serial_doc, parallel_doc,
        "4-worker tn-lab/v1 output must be byte-identical to 1-worker"
    );
    assert_eq!(
        serial[0].digest, 0xff1dbcd7cf7e729e,
        "the grid's first cell is the trimmed quickstart"
    );
    RunSignature {
        digest: tn_sim::fnv1a_fold(EMPTY_DIGEST, serial_doc.as_bytes()),
        events: serial.iter().map(|o| o.events).sum(),
    }
}

/// A lab-executed cell must match the same config run directly: one
/// single-cell spec (the trimmed quickstart), executed through the lab's
/// expand → batch → aggregate pipeline, compared against a bare
/// `TraditionalSwitches::run` on a hand-built config. Pinned to the
/// golden quickstart digest.
fn run_lab_run_vs_standalone(kind: SchedulerKind) -> RunSignature {
    use tn_lab::{run_batch, ScenarioExecutor, SweepSpec};

    let mut spec = SweepSpec::smoke();
    spec.axes.clear(); // overrides only: exactly the trimmed quickstart
    let manifest = spec.expand().expect("single-cell spec expands");
    assert_eq!(manifest.len(), 1);
    let exec = ScenarioExecutor { scheduler: kind };
    let lab = &run_batch(&manifest, 1, &exec).expect("cell runs")[0];

    let standalone = run_quickstart(kind);
    assert_eq!(
        (lab.digest, lab.events),
        (standalone.digest, standalone.events),
        "lab-executed cell must equal the standalone run"
    );
    RunSignature {
        digest: lab.digest,
        events: lab.events,
    }
}

/// The PR-10 transparency invariant: `CloudFairnessSpec` gates the
/// whole mechanism set on `overlay_fanout` alone. With the fan-out
/// zeroed, every other knob may be set and the design must still build
/// the pre-fairness constant-based fabric — consuming no randomness and
/// perturbing no event — so its digest equals the plain default's.
fn run_cloud_zero_knobs(kind: SchedulerKind) -> RunSignature {
    use tn_topo::{CloudConfig, CloudFairnessSpec};

    let baseline = run_design(&CloudDesign::default(), 7, kind);
    let knobs_without_gate = CloudDesign {
        cloud: CloudConfig {
            fairness: CloudFairnessSpec {
                overlay_fanout: 0,
                ..CloudFairnessSpec::demo()
            },
            ..CloudConfig::default()
        },
    };
    let sig = run_design(&knobs_without_gate, 7, kind);
    assert_eq!(
        baseline, sig,
        "a fan-out-0 fairness spec must be bit-transparent"
    );
    sig
}

/// Design 2 with the full demo mechanism set live on the hot path:
/// overlay relay tree on the internal feed, a delay-equalizer gate per
/// strategy, and the hold-and-release sequencer spliced into the order
/// path. The assembly must dual-run and stay scheduler-neutral, and an
/// enabled spec must surface `FairnessStats` in the report.
fn run_cloud_fairness_design(kind: SchedulerKind) -> RunSignature {
    use tn_topo::{CloudConfig, CloudFairnessSpec};

    let mut sc = trimmed(ScenarioConfig::small(7));
    sc.scheduler = kind;
    let design = CloudDesign {
        cloud: CloudConfig {
            fairness: CloudFairnessSpec::demo(),
            ..CloudConfig::default()
        },
    };
    let report = design.run(&sc);
    assert!(
        report.fairness.is_some(),
        "an enabled fairness spec must report FairnessStats"
    );
    RunSignature {
        digest: report.trace_digest,
        events: report.events_recorded,
    }
}

/// The tn-cloud harness point `bench_cloud` measures at jitter 2 µs: a
/// fan-out-4 overlay with a 5 µs hold and 20 ns residual. Jitter rides
/// `FaultLink` streams and the residual rides the node-owned stream, so
/// the whole frontier point must dual-run bit-for-bit; its digest is
/// what `BENCH_cloud.json` reports for this cell.
fn run_cloud_fairness_frontier(kind: SchedulerKind) -> RunSignature {
    use tn_cloud::{run_fairness, DesignKind, FairnessScenario};

    let mut sc = FairnessScenario::small(7);
    sc.scheduler = kind;
    let run = run_fairness(
        &sc,
        &DesignKind::Cloud {
            fanout: 4,
            jitter: SimTime::from_us(2),
            hold: SimTime::from_us(5),
            residual: SimTime::from_ns(20),
        },
    );
    assert!(
        run.added_median_ps >= run.hold_ps,
        "the fairness frontier point must charge at least its hold: {} < {}",
        run.added_median_ps,
        run.hold_ps
    );
    RunSignature {
        digest: run.digest,
        events: run.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_example() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        for example in [
            "quickstart",
            "shootout",
            "feed-handler",
            "mcast-cliff",
            "metro-arbitrage",
        ] {
            assert!(
                names.iter().any(|n| n.contains(example)),
                "no divergence scenario mirrors example {example}"
            );
        }
    }

    #[test]
    fn quickstart_digest_is_pinned() {
        // Golden digest from before the fault layer existed: the refactor
        // (LinkSpec, builder, RecoveryStats) must not perturb a single
        // kernel event on the zero-fault path.
        let sig = run_quickstart(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);
    }

    #[test]
    fn golden_digests_hold_under_the_calendar_queue() {
        // The scheduler swap must be invisible: the calendar queue has to
        // reproduce the pinned binary-heap digests bit for bit, with and
        // without telemetry and under the fault layer.
        let sig = run_quickstart(SchedulerKind::CalendarQueue);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);

        let obs = run_quickstart_obs_on_vs_off(SchedulerKind::CalendarQueue);
        assert_eq!(obs.digest, 0xff1dbcd7cf7e729e, "{obs:?}");

        let decomp = run_latency_decomposition(SchedulerKind::CalendarQueue);
        assert_eq!(decomp.digest, 0xb97aeac301534e76, "{decomp:?}");
        assert_eq!(decomp.events, 1_088);

        for runner in [run_fault_loss_recovery, run_fault_ab_failover] {
            assert_eq!(
                runner(SchedulerKind::BinaryHeap),
                runner(SchedulerKind::CalendarQueue),
                "fault scenarios must agree across schedulers"
            );
        }
    }

    #[test]
    fn golden_digests_hold_under_the_timing_wheel() {
        // Third scheduler, same contract: the hierarchical wheel must
        // reproduce the pinned binary-heap digest bit for bit.
        let sig = run_quickstart(SchedulerKind::TimingWheel);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);

        let decomp = run_latency_decomposition(SchedulerKind::TimingWheel);
        assert_eq!(decomp.digest, 0xb97aeac301534e76, "{decomp:?}");
        assert_eq!(decomp.events, 1_088);
    }

    #[test]
    fn frame_pooling_off_reproduces_the_golden_quickstart_digest() {
        // The arena is pure side-state: a run that allocates every
        // payload buffer fresh must not perturb a single kernel event.
        let mut sc = trimmed(ScenarioConfig::small(42));
        sc.frame_pooling = false;
        let report = TraditionalSwitches::default().run(&sc);
        assert_eq!(report.trace_digest, 0xff1dbcd7cf7e729e);
        assert_eq!(report.events_recorded, 19_924);
    }

    #[test]
    fn zero_fault_spec_reproduces_quickstart_digest() {
        // A no-op FaultSpec routes the feed through FaultLink wrappers;
        // the wrapping itself must be bit-transparent.
        let baseline = run_quickstart(SchedulerKind::BinaryHeap);
        let mut sc = trimmed(ScenarioConfig::small(42));
        sc.feed_fault = Some(tn_fault::FaultSpec::new(0));
        let report = TraditionalSwitches::default().run(&sc);
        assert_eq!(report.trace_digest, baseline.digest);
        assert_eq!(report.events_recorded, baseline.events);
    }

    #[test]
    fn full_telemetry_reproduces_the_golden_quickstart_digest() {
        // The tentpole invariant of tn-obs: turning everything on leaves
        // the pre-telemetry golden digest untouched.
        let sig = run_quickstart_obs_on_vs_off(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);
    }

    #[test]
    fn flight_recorder_reproduces_the_golden_quickstart_digest() {
        // The PR-8 tentpole invariant: a fully-on flight recorder and
        // kernel profiler leave the pinned golden digest untouched.
        let sig = run_quickstart_flight_on_vs_off(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);
    }

    #[test]
    fn sharded_quickstart_reproduces_the_golden_digest() {
        // The PR-9 tentpole invariant: the sharded kernel reproduces the
        // pinned golden digest for every shard count 1..=8 (asserted
        // inside the runner) under all three schedulers.
        for kind in [
            SchedulerKind::BinaryHeap,
            SchedulerKind::CalendarQueue,
            SchedulerKind::TimingWheel,
        ] {
            let sig = run_shard_quickstart(kind);
            assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{kind:?} {sig:?}");
            assert_eq!(sig.events, 19_924);
        }
    }

    #[test]
    fn sharded_faulted_quickstart_matches_serial() {
        // Fault decisions live in FaultLink's own PRNG, so the sharded
        // replay must agree with serial even on a lossy feed.
        let sig = run_shard_faulted(SchedulerKind::BinaryHeap);
        assert!(sig.events > 0, "{sig:?}");
    }

    #[test]
    fn latency_decomposition_digest_is_pinned() {
        let sig = run_latency_decomposition(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xb97aeac301534e76, "{sig:?}");
        assert_eq!(sig.events, 1_088);
    }

    #[test]
    fn lab_parallel_vs_serial_holds_and_is_pinned() {
        // One full evaluation: 18 cells serial + 18 cells on 4 workers,
        // documents asserted byte-equal inside the runner fn. The event
        // total is pinned: any change to the smoke grid or to a cell's
        // schedule moves it.
        let sig = run_lab_parallel_vs_serial(SchedulerKind::BinaryHeap);
        assert!(sig.events > 18 * 1_000, "{sig:?}");
        let again = run_lab_parallel_vs_serial(SchedulerKind::BinaryHeap);
        assert_eq!(sig, again, "merged document must dual-run identically");
    }

    #[test]
    fn lab_run_vs_standalone_reproduces_the_golden_digest() {
        let sig = run_lab_run_vs_standalone(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xff1dbcd7cf7e729e, "{sig:?}");
        assert_eq!(sig.events, 19_924);
        let cal = run_lab_run_vs_standalone(SchedulerKind::CalendarQueue);
        assert_eq!(sig, cal, "lab cell must be scheduler-neutral");
    }

    #[test]
    fn cloud_scenarios_are_deterministic() {
        // Covers shootout-cloud plus the three fairness scenarios: dual
        // run + calendar queue, with the transparency and hold-charge
        // asserts firing inside the runners.
        for o in run_all(Some("cloud")) {
            assert!(o.passed(), "{o:?}");
            assert!(o.first.events > 0, "{:?}", o.name);
        }
    }

    #[test]
    fn cloud_frontier_digest_is_pinned() {
        // The exact cell `bench_cloud` reports at jitter 2 µs: the
        // digest in BENCH_cloud.json and the one the registry replays
        // must be the same number.
        let sig = run_cloud_fairness_frontier(SchedulerKind::BinaryHeap);
        assert_eq!(sig.digest, 0xb6000289d5a38e48, "{sig:?}");
        assert_eq!(sig.events, 1_400);
        let wheel = run_cloud_fairness_frontier(SchedulerKind::TimingWheel);
        assert_eq!(sig, wheel, "frontier point must be scheduler-neutral");
    }

    #[test]
    fn fault_scenarios_are_deterministic() {
        for o in run_all(Some("fault")) {
            assert!(o.passed(), "{o:?}");
            assert!(o.first.events > 0, "{:?}", o.name);
        }
    }

    #[test]
    fn mcast_cliff_is_deterministic() {
        let o = run_all(Some("mcast-cliff"));
        assert_eq!(o.len(), 1);
        assert!(o[0].passed(), "{:?}", o[0]);
        assert!(o[0].first.events > 0, "mirror should generate traffic");
    }

    #[test]
    fn feed_handler_is_deterministic() {
        let a = run_feed_handler(SchedulerKind::BinaryHeap);
        let b = run_feed_handler(SchedulerKind::CalendarQueue);
        assert_eq!(a, b);
        assert!(a.events > 0);
    }
}
