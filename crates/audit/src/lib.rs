//! # tn-audit — determinism & hot-path auditing
//!
//! The kernel promises: same scenario + same seed ⇒ the same run,
//! bit-for-bit. This crate turns that comment into an enforced invariant,
//! from both directions:
//!
//! * **Static** ([`lints`], [`scan`]): a lossless lexer ([`lexer`]) feeds
//!   a lightweight item parser ([`items`]) that builds a workspace-wide
//!   call graph ([`callgraph`]). Hot taint is propagated from the
//!   kernel's registered dispatch roots (`Node::on_frame`/`on_timer`,
//!   `Scheduler` queue ops, `Link` timing, `Simulator::step`) and
//!   determinism taint from the schedule-feeding APIs, then token-level
//!   lints flag the classic ways determinism dies in Rust — iterating a
//!   `HashMap`/`HashSet` (address-seeded order), wall-clock reads,
//!   entropy-seeded RNGs — plus hot-path hygiene (panics and allocation
//!   reachable from a dispatch root) and wire-format schema drift
//!   ([`schema`]). Every taint-gated finding cites its call chain.
//!   Findings can be waived in place with
//!   `// audit:allow(<lint>): <justification>`.
//! * **Dynamic** ([`divergence`]): every example scenario is run twice
//!   with the same seed and the kernel trace digests
//!   ([`tn_sim::TraceLog::digest`]) must match exactly.
//!
//! The binary (`cargo run -p tn-audit -- check`) runs both and exits
//! non-zero on any active finding or digest mismatch; `scripts/ci.sh`
//! wires it into the build together with a committed-baseline diff gate
//! ([`baseline`]).

pub mod baseline;
pub mod callgraph;
pub mod divergence;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;
pub mod schema;
pub mod source;

pub use callgraph::{DET_SINKS, HOT_ROOTS};
pub use lints::{scan_file, FileTaint, Finding, LintInfo, Scope, Severity, LINTS};
pub use report::{counts, render_json, render_text, Counts};
pub use scan::{scan_sources, scan_workspace, scope_for};
pub use schema::SCHEMA_REGISTRY;
pub use source::SourceFile;
