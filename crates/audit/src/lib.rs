//! # tn-audit — determinism & hot-path auditing
//!
//! The kernel promises: same scenario + same seed ⇒ the same run,
//! bit-for-bit. This crate turns that comment into an enforced invariant,
//! from both directions:
//!
//! * **Static** ([`lints`], [`scan`]): a token-level lint pass over every
//!   workspace crate flags the classic ways determinism dies in Rust —
//!   iterating a `HashMap`/`HashSet` (address-seeded order), wall-clock
//!   reads, entropy-seeded RNGs — plus hot-path hygiene (panics and
//!   allocation inside `on_frame`/`on_timer`/`decode*`/`parse*`).
//!   Findings can be waived in place with
//!   `// audit:allow(<lint>): <justification>`.
//! * **Dynamic** ([`divergence`]): every example scenario is run twice
//!   with the same seed and the kernel trace digests
//!   ([`tn_sim::TraceLog::digest`]) must match exactly.
//!
//! The binary (`cargo run -p tn-audit -- check`) runs both and exits
//! non-zero on any active finding or digest mismatch; `scripts/ci.sh`
//! wires it into the build.

pub mod divergence;
pub mod lints;
pub mod report;
pub mod scan;
pub mod source;

pub use lints::{scan_file, Finding, LintInfo, Scope, Severity, LINTS};
pub use report::{counts, render_json, render_text, Counts};
pub use scan::{scan_workspace, scope_for};
pub use source::SourceFile;
