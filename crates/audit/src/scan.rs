//! Workspace walking and the two-pass analysis pipeline.
//!
//! Pass 1 parses every in-scope file into its item structure and builds
//! the workspace-wide call graph; pass 2 runs the token lints with the
//! per-line taint verdicts the graph produced. There are no per-crate
//! special cases left: a crate's code is hot iff the call graph proves
//! it reachable from a registered hot root, and determinism-critical iff
//! it can reach (or is reached from code that reaches) a schedule-feeding
//! kernel API.

use crate::callgraph;
use crate::items::{parse_file, ParsedFile};
use crate::lints::{scan_file, FileTaint, Finding, Scope};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Lint scope for a file at `rel` (repo-relative, `/`-separated), or
/// `None` if the file is out of scope.
///
/// * `crates/<k>/src/**` — full scope. The only named crate is the
///   auditor itself, which is skipped: its sources are lint-pattern
///   fragments and fixtures (its correctness is covered by its tests).
/// * root `src/`, `examples/`, `tests/` — scaffolding scope: the det
///   lints apply wherever the call graph finds schedule-feeding code,
///   but nothing here is kernel-dispatched per frame, so the `hotpath-*`
///   and `perf-*` families stay off.
pub fn scope_for(rel: &str) -> Option<Scope> {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => {
            let krate = parts.next()?;
            if krate == "audit" {
                return None;
            }
            if parts.next() != Some("src") {
                return None;
            }
            Some(Scope {
                hotpath: true,
                obs: krate == "obs",
                perf: true,
                schema: true,
            })
        }
        Some("src") | Some("examples") | Some("tests") => Some(Scope {
            hotpath: false,
            obs: false,
            perf: false,
            schema: true,
        }),
        _ => None,
    }
}

/// Every `.rs` file under `crates/*/src` plus the root `src/`,
/// `examples/`, and `tests/` trees, sorted for stable output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    for top in ["src", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Turn per-function taints into a per-line [`FileTaint`]. Functions are
/// visited in ascending signature-line order, so on shared lines an
/// inner (nested) function's verdict overwrites its enclosing one.
fn file_taint(sf: &SourceFile, parsed: &ParsedFile, taints: &[callgraph::FnTaint]) -> FileTaint {
    let n = sf.lines.len();
    let mut t = FileTaint::cold(n);
    let mut order: Vec<usize> = (0..parsed.fns.len()).collect();
    order.sort_by_key(|&i| parsed.fns[i].lines.map(|(a, _)| a).unwrap_or(usize::MAX));
    for i in order {
        let Some((a, b)) = parsed.fns[i].lines else {
            continue;
        };
        let ft = &taints[i];
        for line in a..=b.min(n) {
            t.hot[line - 1] = ft.hot.clone();
            t.det[line - 1] = ft.det.clone();
            t.in_fn[line - 1] = true;
        }
    }
    t.file_det = taints.iter().any(|ft| ft.det.is_some());
    t
}

/// Run the full two-pass analysis over already-loaded sources and return
/// the findings, unsorted. The call graph spans *all* the given files,
/// so cross-file reachability works exactly as it does in
/// [`scan_workspace`].
pub fn scan_sources(inputs: &[(SourceFile, Scope)]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> = inputs.iter().map(|(sf, _)| parse_file(sf)).collect();
    let refs: Vec<(&ParsedFile, bool)> = parsed
        .iter()
        .zip(inputs.iter())
        .map(|(pf, (_, scope))| (pf, scope.hotpath))
        .collect();
    let taints = callgraph::analyze(&refs);

    let mut findings = Vec::new();
    for (i, (sf, scope)) in inputs.iter().enumerate() {
        let taint = file_taint(sf, &parsed[i], &taints[i]);
        findings.extend(scan_file(sf, *scope, &taint));
    }
    findings
}

/// Scan the whole workspace under `root`, sorted into report order.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut inputs = Vec::new();
    for (path, rel) in workspace_files(root)? {
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        inputs.push((SourceFile::load(&path, &rel)?, scope));
    }
    let mut findings = scan_sources(&inputs);
    crate::report::sort(&mut findings);
    Ok(findings)
}

/// The repository root: `--root` override, else the workspace that built
/// this binary (two levels up from the audit crate's manifest).
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rules() {
        let sim = scope_for("crates/sim/src/kernel.rs").unwrap();
        assert!(sim.hotpath && sim.perf && sim.schema && !sim.obs);
        let obs = scope_for("crates/obs/src/lib.rs").unwrap();
        assert!(obs.obs && obs.hotpath, "obs has no whole-crate exemption");
        let lab = scope_for("crates/lab/src/json.rs").unwrap();
        assert!(lab.hotpath, "lab has no whole-crate exemption");
        assert!(
            scope_for("crates/audit/src/lints.rs").is_none(),
            "auditor skips itself"
        );
        assert!(
            scope_for("crates/sim/tests/props.rs").is_none(),
            "crate test dirs out of scope"
        );
        let ex = scope_for("examples/quickstart.rs").unwrap();
        assert!(!ex.hotpath && !ex.perf && !ex.obs && ex.schema);
        let t = scope_for("tests/scheduler_equivalence.rs").unwrap();
        assert!(!t.hotpath && t.schema);
    }

    #[test]
    fn workspace_walk_finds_kernel_and_root_trees() {
        let files = workspace_files(&default_root()).unwrap();
        assert!(files
            .iter()
            .any(|(_, rel)| rel == "crates/sim/src/kernel.rs"));
        assert!(
            files.iter().any(|(_, rel)| rel.starts_with("examples/")),
            "root examples are walked"
        );
        assert!(
            files.iter().any(|(_, rel)| rel.starts_with("tests/")),
            "root tests are walked"
        );
        assert!(
            files.windows(2).all(|w| w[0].1 < w[1].1),
            "sorted, no dupes"
        );
    }

    #[test]
    fn pipeline_taints_through_the_call_graph() {
        let src = "impl Node for S {\n    fn on_frame(&mut self) { self.go(); }\n}\n\
                   impl S {\n    fn go(&self) { q.unwrap(); }\n}\n";
        let scope = scope_for("crates/x/src/lib.rs").unwrap();
        let f = scan_sources(&[(SourceFile::parse("crates/x/src/lib.rs", src), scope)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "hotpath-unwrap");
        let note = f[0].note.as_deref().unwrap();
        assert!(note.contains("on_frame"), "chain cited: {note}");
    }

    #[test]
    fn scaffolding_scope_suppresses_hot_lints() {
        let src = "impl Node for S {\n    fn on_frame(&mut self) { q.unwrap(); }\n}\n";
        let scope = scope_for("tests/t.rs").unwrap();
        let f = scan_sources(&[(SourceFile::parse("tests/t.rs", src), scope)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
