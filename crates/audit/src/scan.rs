//! Workspace walking: which files get scanned, with which lint scope.

use crate::lints::{scan_file, Finding, Scope};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Crates whose runtime logic feeds the deterministic simulation; the
/// `det-*` structure lints apply here. `wire`/`stats` are pure functions
/// of their inputs and `bench` is a measurement harness, so they only get
/// the RNG and hot-path lints.
const DET_CRATES: &[&str] = &[
    "sim", "switch", "feed", "trading", "market", "topo", "core", "netdev", "fault", "obs", "lab",
];

/// Crates whose code creates, forwards, or retires kernel frame buffers;
/// the `perf-*` arena-discipline lints apply here. `wire`/`stats`/`topo`
/// never hold a `Frame`, and `obs` only reads exported traces.
const PERF_CRATES: &[&str] = &[
    "sim", "switch", "feed", "trading", "market", "core", "netdev", "fault", "bench",
];

/// Crates not scanned at all. The auditor's own sources are full of lint
/// pattern fragments and parser functions named `parse_*`, so it audits
/// the workspace, not itself (its correctness is covered by its tests).
const SKIP_CRATES: &[&str] = &["audit"];

/// Lint scope for a file at `rel` (repo-relative, `/`-separated), or
/// `None` if the file is out of scope.
pub fn scope_for(rel: &str) -> Option<Scope> {
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if SKIP_CRATES.contains(&krate) {
        return None;
    }
    if parts.next() != Some("src") {
        return None;
    }
    Some(Scope {
        det: DET_CRATES.contains(&krate),
        // tn-obs's `parse*` functions are offline trace readers, not
        // per-frame handlers, so the hot-path name heuristic would flag
        // them wholesale; its recording paths are guarded by the
        // dedicated `obs-wallclock` lint instead. tn-lab's `parse*`
        // functions likewise read sweep specs and merged documents
        // offline — the lab never runs inside the event loop — but its
        // runner *is* determinism-critical, so it keeps the det lints.
        hotpath: krate != "obs" && krate != "lab",
        obs: krate == "obs",
        perf: PERF_CRATES.contains(&krate),
    })
}

/// Every `.rs` file under `crates/*/src`, sorted for stable output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Scan the whole workspace under `root`, sorted into report order.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (path, rel) in workspace_files(root)? {
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let sf = SourceFile::load(&path, &rel)?;
        findings.extend(scan_file(&sf, scope));
    }
    crate::report::sort(&mut findings);
    Ok(findings)
}

/// The repository root: `--root` override, else the workspace that built
/// this binary (two levels up from the audit crate's manifest).
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rules() {
        let det = scope_for("crates/sim/src/kernel.rs").unwrap();
        assert!(det.det && det.hotpath && det.perf);
        let wire = scope_for("crates/wire/src/pitch.rs").unwrap();
        assert!(!wire.det && wire.hotpath && !wire.perf);
        let bench = scope_for("crates/bench/src/obssim.rs").unwrap();
        assert!(bench.perf, "bench handles pooled frames");
        let lab = scope_for("crates/lab/src/json.rs").unwrap();
        assert!(lab.det, "lab runner must stay deterministic");
        assert!(!lab.hotpath, "lab parsers are offline, like obs");
        assert!(
            scope_for("crates/audit/src/lints.rs").is_none(),
            "auditor skips itself"
        );
        assert!(
            scope_for("crates/sim/tests/props.rs").is_none(),
            "tests out of scope"
        );
        assert!(scope_for("examples/quickstart.rs").is_none());
    }

    #[test]
    fn workspace_walk_finds_kernel() {
        let files = workspace_files(&default_root()).unwrap();
        assert!(files
            .iter()
            .any(|(_, rel)| rel == "crates/sim/src/kernel.rs"));
        assert!(
            files.windows(2).all(|w| w[0].1 < w[1].1),
            "sorted, no dupes"
        );
    }
}
