//! `tn-audit` — the workspace determinism auditor.
//!
//! ```sh
//! cargo run -p tn-audit -- check              # static lints + divergence
//! cargo run -p tn-audit -- lint --json out.json --baseline AUDIT_BASELINE.json
//! cargo run -p tn-audit -- divergence --filter shootout
//! cargo run -p tn-audit -- schema --json out.json   # validate a report
//! cargo run -p tn-audit -- lints              # list known lints + hot roots
//! ```
//!
//! Exit status: 0 when every finding is suppressed, no finding is new
//! against the baseline (if one is given), and every dual run agrees;
//! 1 otherwise; 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use tn_audit::{baseline, divergence, render_json, render_text, scan, HOT_ROOTS, LINTS};

struct Args {
    command: String,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    filter: Option<String>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "check".to_string());
    let mut args = Args {
        command,
        json: None,
        root: None,
        filter: None,
        baseline: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = Some(PathBuf::from(argv.next().ok_or("--json needs a path")?)),
            "--root" => args.root = Some(PathBuf::from(argv.next().ok_or("--root needs a path")?)),
            "--filter" => args.filter = Some(argv.next().ok_or("--filter needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a path")?))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tn-audit: {e}");
            eprintln!(
                "usage: tn-audit [check|lint|divergence|schema|lints] [--json PATH] \
                 [--root PATH] [--filter NAME] [--baseline PATH]"
            );
            return ExitCode::from(2);
        }
    };

    match args.command.as_str() {
        "lints" => {
            for l in LINTS {
                println!("{:<18} {:<8} {}", l.id, l.severity.name(), l.summary);
            }
            println!();
            println!("hot roots (the `hotpath-*` lints flag code reachable from these):");
            for r in HOT_ROOTS {
                println!("  {:<22} {}", format!("{}::{}", r.owner, r.method), r.why);
            }
            ExitCode::SUCCESS
        }
        "lint" => run_lint(&args),
        "divergence" => run_divergence(&args),
        "schema" => run_schema(&args),
        "check" => {
            let lint = run_lint(&args);
            let div = run_divergence(&args);
            if lint == ExitCode::SUCCESS && div == ExitCode::SUCCESS {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("tn-audit: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &Args) -> ExitCode {
    let root = args.root.clone().unwrap_or_else(scan::default_root);
    let findings = match scan::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tn-audit: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", render_text(&findings));
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, render_json(&findings)) {
            eprintln!("tn-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("json report written to {}", path.display());
    }

    let mut failed = findings.iter().any(|f| !f.suppressed);
    if let Some(path) = &args.baseline {
        match check_baseline(&findings, path) {
            Ok(clean) => failed = failed || !clean,
            Err(e) => {
                eprintln!("tn-audit: baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Diff findings against the committed baseline; returns Ok(false) when
/// new findings appeared (including suppressed ones — suppression creep
/// must be visible in review, not waved through).
fn check_baseline(findings: &[tn_audit::Finding], path: &PathBuf) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = baseline::parse(&text)?;
    baseline::validate_report(&doc)?;
    let diff = baseline::diff_against_baseline(findings, &doc)?;
    for k in &diff.new {
        println!("baseline: NEW finding {k}");
    }
    println!(
        "baseline: {} entr{}, {} new, {} resolved",
        diff.baseline_total,
        if diff.baseline_total == 1 { "y" } else { "ies" },
        diff.new.len(),
        diff.resolved
    );
    if diff.resolved > 0 && diff.new.is_empty() {
        println!(
            "baseline: regenerate with `tn-audit lint --json {}`",
            path.display()
        );
    }
    Ok(diff.new.is_empty())
}

/// Validate that a written report parses as `tn-audit/v1`.
fn run_schema(args: &Args) -> ExitCode {
    let Some(path) = &args.json else {
        eprintln!("tn-audit: schema needs --json PATH (the report to validate)");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tn-audit: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match baseline::parse(&text).and_then(|doc| baseline::validate_report(&doc)) {
        Ok(()) => {
            println!("schema: {} is a valid tn-audit/v1 report", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("schema: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn run_divergence(args: &Args) -> ExitCode {
    let outcomes = divergence::run_all(args.filter.as_deref());
    if outcomes.is_empty() {
        eprintln!("tn-audit: no divergence scenario matches the filter");
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    for o in &outcomes {
        if o.passed() {
            println!(
                "divergence {:<26} ok   digest={:016x} events={}",
                o.name, o.first.digest, o.first.events
            );
        } else {
            failed += 1;
            println!(
                "divergence {:<26} FAIL run1 digest={:016x} events={} run2 digest={:016x} events={} calendar digest={:016x} events={}",
                o.name,
                o.first.digest,
                o.first.events,
                o.second.digest,
                o.second.events,
                o.calendar.digest,
                o.calendar.events
            );
        }
    }
    println!(
        "divergence: {}/{} scenario(s) deterministic",
        outcomes.len() - failed,
        outcomes.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
