//! The lint pass: determinism / hot-path / schema lints over lexed source.
//!
//! Determinism lints (`det-*`) guard the property `tn-audit divergence`
//! verifies dynamically: same scenario + same seed ⇒ same trace digest.
//! Hot-path lints (`hotpath-*`) guard the per-frame code paths against
//! panics and allocation — the paper's whole argument is that the hot
//! path is measured in nanoseconds.
//!
//! Since tn-audit v2, *which* lines are hot or determinism-critical is
//! not decided here (and not by function-name heuristics): the workspace
//! call graph ([`crate::callgraph`]) propagates taint from the kernel's
//! registered hot roots and schedule-feeding APIs, and this pass receives
//! the per-line verdicts as a [`FileTaint`]. Detection itself stays
//! token-level, so every finding can still be waived in place with
//! `// audit:allow(<lint>): <justification>`.

use crate::schema;
use crate::source::{tokenize, Line, SourceFile, Tok};

/// How bad a finding is. Both severities fail the build when active; the
/// split exists for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks the determinism contract (or ships an unregistered schema).
    Error,
    /// Hurts the hot path.
    Warning,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Static description of one lint.
pub struct LintInfo {
    /// Stable id, used in reports and `audit:allow(...)`.
    pub id: &'static str,
    /// Report severity.
    pub severity: Severity,
    /// One-line description for `tn-audit lints`.
    pub summary: &'static str,
}

/// Every lint the pass knows about.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "det-hashmap-iter",
        severity: Severity::Error,
        summary: "iteration over a HashMap/HashSet in determinism-critical code — visit order is nondeterministic",
    },
    LintInfo {
        id: "det-wallclock",
        severity: Severity::Error,
        summary: "wall-clock time source (Instant/SystemTime) in determinism-critical code",
    },
    LintInfo {
        id: "det-unseeded-rng",
        severity: Severity::Error,
        summary: "entropy-seeded RNG (thread_rng/from_entropy/OsRng) — runs are not reproducible",
    },
    LintInfo {
        id: "obs-wallclock",
        severity: Severity::Error,
        summary: "std::time type (Duration/UNIX_EPOCH/...) in telemetry code — timestamps must be simulated picoseconds",
    },
    LintInfo {
        id: "hotpath-unwrap",
        severity: Severity::Warning,
        summary: "unwrap/expect/panic! on a path reachable from a kernel dispatch root",
    },
    LintInfo {
        id: "hotpath-alloc",
        severity: Severity::Warning,
        summary: "heap allocation (Vec::new/format!/to_vec/...) on a path reachable from a kernel dispatch root",
    },
    LintInfo {
        id: "perf-arena-leak",
        severity: Severity::Warning,
        summary: "frame buffer dropped (`drop(frame)`) instead of returned to the arena",
    },
    LintInfo {
        id: "schema-version",
        severity: Severity::Error,
        summary: "wire-format version string absent from the schema registry (crates/audit/src/schema.rs)",
    },
];

/// Look up a lint's metadata by id.
pub fn lint_info(id: &str) -> &'static LintInfo {
    LINTS.iter().find(|l| l.id == id).expect("unknown lint id")
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id.
    pub lint: &'static str,
    /// Severity (from the lint).
    pub severity: Severity,
    /// File, relative to the repo root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
    /// The raw source line, for the report.
    pub snippet: String,
    /// Why the lint applied here: the call chain from a hot root or to a
    /// schedule-feeding API, rendered by the call-graph analysis.
    pub note: Option<String>,
    /// Whether an `audit:allow` waives it.
    pub suppressed: bool,
}

/// Which lint families may apply to a file at all. Whether a given line
/// actually triggers the taint-gated lints is decided by [`FileTaint`].
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// `hotpath-*` lints may fire (crate sources; off for examples/tests
    /// scaffolding, whose handlers are not kernel-dispatched in anger).
    pub hotpath: bool,
    /// Apply `obs-wallclock` (telemetry code: the tn-obs crate).
    pub obs: bool,
    /// Apply `perf-*` lints (frame-arena discipline).
    pub perf: bool,
    /// Apply `schema-version` (any code that may emit wire formats).
    pub schema: bool,
}

impl Scope {
    /// Everything on (used by tests and fixtures).
    pub fn full() -> Scope {
        Scope {
            hotpath: true,
            obs: true,
            perf: true,
            schema: true,
        }
    }
}

/// Per-line taint verdicts for one file, produced by the call-graph
/// analysis. All vectors are indexed by 0-based line.
#[derive(Debug, Clone)]
pub struct FileTaint {
    /// `Some(chain note)` when the line is inside a hot function.
    pub hot: Vec<Option<String>>,
    /// `Some(reason)` when the line is inside a determinism-critical
    /// function (superset of hot).
    pub det: Vec<Option<String>>,
    /// Whether the line is inside any function body at all.
    pub in_fn: Vec<bool>,
    /// Whether any function in the file is determinism-critical: lines
    /// outside every function (`use`, statics) inherit this as their
    /// det verdict, since imports serve the functions below them.
    pub file_det: bool,
}

impl FileTaint {
    /// No line is hot or det (an untainted file).
    pub fn cold(lines: usize) -> FileTaint {
        FileTaint {
            hot: vec![None; lines],
            det: vec![None; lines],
            in_fn: vec![false; lines],
            file_det: false,
        }
    }

    /// Every line hot and det — the unit-test harness for detection
    /// logic, standing in for a fully tainted file.
    pub fn full(lines: usize) -> FileTaint {
        FileTaint {
            hot: vec![Some("test taint".to_string()); lines],
            det: vec![Some("test taint".to_string()); lines],
            in_fn: vec![true; lines],
            file_det: true,
        }
    }
}

/// Methods whose receiver iteration order escapes into program behaviour.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Panicking calls flagged on hot paths: `.NAME(` receivers.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panicking macros flagged on hot paths: `NAME!`.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
/// Allocating macros flagged on hot paths.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Allocating `TYPE::METHOD` paths flagged on hot paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];
/// Allocating `.METHOD(` receivers flagged on hot paths.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned"];

/// Run every applicable lint over one file, with per-line taints.
pub fn scan_file(sf: &SourceFile, scope: Scope, taint: &FileTaint) -> Vec<Finding> {
    let toks: Vec<Vec<(usize, Tok)>> = sf.lines.iter().map(|l| tokenize(&l.code)).collect();
    let maps = collect_map_names(&toks);

    let mut out = Vec::new();
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let t = &toks[idx];

        let in_fn = taint.in_fn.get(idx).copied().unwrap_or(false);
        let det_note: Option<&str> = match taint.det.get(idx).and_then(|o| o.as_deref()) {
            Some(n) => Some(n),
            None if !in_fn && taint.file_det => Some("file contains determinism-critical code"),
            None => None,
        };
        let hot_note: Option<&str> = if scope.hotpath {
            taint.hot.get(idx).and_then(|o| o.as_deref())
        } else {
            None
        };

        if let Some(note) = det_note {
            lint_hashmap_iter(sf, lineno, t, &maps, note, &mut out);
            lint_wallclock(sf, lineno, t, note, &mut out);
        }
        if scope.obs {
            lint_obs_wallclock(sf, lineno, t, &mut out);
        }
        lint_unseeded_rng(sf, lineno, t, &mut out);
        if let Some(note) = hot_note {
            lint_hot_unwrap(sf, lineno, t, note, &mut out);
            lint_hot_alloc(sf, lineno, t, note, &mut out);
        }
        if scope.perf {
            if let Some(note) = hot_note.or(det_note) {
                lint_perf_arena_leak(sf, lineno, t, note, &mut out);
            }
        }
        if scope.schema {
            lint_schema_version(sf, lineno, line, &mut out);
        }
    }
    out
}

/// Names declared with a `HashMap`/`HashSet` type or constructor anywhere
/// in the file: struct fields (`name: HashMap<..>`), let bindings
/// (`let [mut] name = HashMap::new()` / `let name: HashMap<..>`), and fn
/// params. Only *iteration* over these names is flagged — keyed access
/// (`get`/`insert`/`entry`) is order-free and allowed.
fn collect_map_names(toks: &[Vec<(usize, Tok)>]) -> Vec<String> {
    let mut names = Vec::new();
    for line in toks {
        for (i, (_, tok)) in line.iter().enumerate() {
            let Some(id) = tok.ident() else { continue };
            if id != "HashMap" && id != "HashSet" {
                continue;
            }
            // `HashMap::new()` on a let line: find `let [mut] name =` left.
            // `name: [wrappers<] HashMap<..>`: walk left past wrapper
            // tokens to the `:` and take the ident before it.
            let mut j = i;
            let mut name: Option<&str> = None;
            while j > 0 {
                j -= 1;
                match &line[j].1 {
                    Tok::Punct(':') => {
                        // skip a `::` path qualifier (std::collections::)
                        if j > 0 && line[j - 1].1.is(':') {
                            j -= 1;
                            continue;
                        }
                        if j > 0 {
                            if let Some(n) = line[j - 1].1.ident() {
                                if n != "mut" {
                                    name = Some(n);
                                }
                            }
                        }
                        break;
                    }
                    Tok::Punct('=') => {
                        // `let [mut] name = HashMap::new()`
                        if j >= 2 {
                            if let Some(n) = line[j - 1].1.ident() {
                                let n = if n == "mut" {
                                    line.get(j.wrapping_sub(2)).and_then(|t| t.1.ident())
                                } else {
                                    Some(n)
                                };
                                name = n;
                            }
                        }
                        break;
                    }
                    Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('&') => continue,
                    Tok::Ident(w)
                        if matches!(
                            w.as_str(),
                            "Option" | "Box" | "Vec" | "std" | "collections" | "pub" | "crate"
                        ) =>
                    {
                        continue
                    }
                    _ => break,
                }
            }
            if let Some(n) = name {
                if !names.iter().any(|x| x == n) {
                    names.push(n.to_string());
                }
            }
        }
    }
    names
}

#[allow(clippy::too_many_arguments)]
fn push(
    sf: &SourceFile,
    lineno: usize,
    column: usize,
    lint: &'static str,
    message: String,
    note: Option<&str>,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        lint,
        severity: lint_info(lint).severity,
        file: sf.rel.clone(),
        line: lineno,
        column,
        message,
        snippet: sf.lines[lineno - 1].raw.clone(),
        note: note.map(str::to_string),
        suppressed: sf.allowed(lineno, lint),
    });
}

fn lint_hashmap_iter(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    maps: &[String],
    note: &str,
    out: &mut Vec<Finding>,
) {
    let is_map = |t: &Tok| t.ident().is_some_and(|n| maps.iter().any(|m| m == n));

    for (i, (col, tok)) in toks.iter().enumerate() {
        // `name.iter_method(` — receiver must be a known map name.
        if is_map(tok)
            && toks.get(i + 1).is_some_and(|t| t.1.is('.'))
            && toks
                .get(i + 2)
                .and_then(|t| t.1.ident())
                .is_some_and(|m| ITER_METHODS.contains(&m))
        {
            let method = toks[i + 2].1.ident().unwrap_or_default();
            push(
                sf,
                lineno,
                *col,
                "det-hashmap-iter",
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet; visit order varies across \
                     processes — use BTreeMap/BTreeSet or sort first",
                    tok.ident().unwrap_or_default(),
                    method
                ),
                Some(note),
                out,
            );
        }
        // `for pat in [&][mut] [self.]name {` — direct iteration.
        if tok.ident() == Some("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.1.is('&') || t.1.ident() == Some("mut"))
            {
                j += 1;
            }
            if toks.get(j).and_then(|t| t.1.ident()) == Some("self")
                && toks.get(j + 1).is_some_and(|t| t.1.is('.'))
            {
                j += 2;
            }
            if let Some((mcol, mtok)) = toks.get(j) {
                let ends_iter = match toks.get(j + 1) {
                    None => true,
                    Some(t) => t.1.is('{'),
                };
                if is_map(mtok) && ends_iter {
                    push(
                        sf,
                        lineno,
                        *mcol,
                        "det-hashmap-iter",
                        format!(
                            "`for .. in {}` iterates a HashMap/HashSet; visit order varies \
                             across processes — use BTreeMap/BTreeSet or sort first",
                            mtok.ident().unwrap_or_default()
                        ),
                        Some(note),
                        out,
                    );
                }
            }
        }
    }
}

fn lint_wallclock(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    note: &str,
    out: &mut Vec<Finding>,
) {
    // A `use std::time::...` line is inert; the call sites are flagged.
    if toks.first().and_then(|t| t.1.ident()) == Some("use") {
        return;
    }
    for (col, tok) in toks {
        if let Some(id) = tok.ident() {
            if id == "Instant" || id == "SystemTime" {
                push(
                    sf,
                    lineno,
                    *col,
                    "det-wallclock",
                    format!(
                        "`{id}` reads the wall clock; simulation logic must use SimTime \
                         so identical runs stay identical"
                    ),
                    Some(note),
                    out,
                );
            }
        }
    }
}

/// Telemetry code may only speak simulated picoseconds: beyond the
/// `det-wallclock` clock sources, *any* `std::time` type (`Duration`,
/// `UNIX_EPOCH`, a `std::time::` path) smuggles wall-clock semantics into
/// records that must be identical across runs and hosts.
fn lint_obs_wallclock(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    out: &mut Vec<Finding>,
) {
    if toks.first().and_then(|t| t.1.ident()) == Some("use") {
        return;
    }
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let flagged = match id {
            // `std::time::Duration` is already flagged at the `std` token.
            "Duration" | "UNIX_EPOCH" => {
                !(i >= 3
                    && toks[i - 1].1.is(':')
                    && toks[i - 2].1.is(':')
                    && toks[i - 3].1.ident() == Some("time"))
            }
            // `std :: time` path, however the type is spelled after it —
            // except the clock sources, which `det-wallclock` owns.
            "std" => {
                toks.get(i + 1).is_some_and(|t| t.1.is(':'))
                    && toks.get(i + 2).is_some_and(|t| t.1.is(':'))
                    && toks.get(i + 3).and_then(|t| t.1.ident()) == Some("time")
                    && !matches!(
                        toks.get(i + 6).and_then(|t| t.1.ident()),
                        Some("Instant") | Some("SystemTime")
                    )
            }
            _ => false,
        };
        if flagged {
            push(
                sf,
                lineno,
                *col,
                "obs-wallclock",
                format!(
                    "`{id}` brings std::time into telemetry; timestamps and durations \
                     must be u64 simulated picoseconds"
                ),
                None,
                out,
            );
        }
    }
}

fn lint_unseeded_rng(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    out: &mut Vec<Finding>,
) {
    for (col, tok) in toks {
        if let Some(id) = tok.ident() {
            if id == "thread_rng" || id == "from_entropy" || id == "OsRng" {
                push(
                    sf,
                    lineno,
                    *col,
                    "det-unseeded-rng",
                    format!(
                        "`{id}` draws entropy from the OS; all randomness must flow from \
                         the scenario seed"
                    ),
                    None,
                    out,
                );
            }
        }
    }
}

fn lint_hot_unwrap(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    note: &str,
    out: &mut Vec<Finding>,
) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let prev_dot = i > 0 && toks[i - 1].1.is('.');
        let next = toks.get(i + 1).map(|t| &t.1);
        if prev_dot && PANIC_METHODS.contains(&id) && next.is_some_and(|t| t.is('(')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-unwrap",
                format!("`.{id}()` can panic on the per-frame path; handle the None/Err case"),
                Some(note),
                out,
            );
        }
        if PANIC_MACROS.contains(&id) && next.is_some_and(|t| t.is('!')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-unwrap",
                format!("`{id}!` panics on the per-frame path; degrade gracefully instead"),
                Some(note),
                out,
            );
        }
    }
}

fn lint_hot_alloc(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    note: &str,
    out: &mut Vec<Finding>,
) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let next = toks.get(i + 1).map(|t| &t.1);
        if ALLOC_MACROS.contains(&id) && next.is_some_and(|t| t.is('!')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-alloc",
                format!("`{id}!` allocates on the per-frame path; reuse a buffer"),
                Some(note),
                out,
            );
            continue;
        }
        // `Type::method(` paths.
        if ALLOC_PATHS.iter().any(|(t, _)| *t == id)
            && toks.get(i + 1).is_some_and(|t| t.1.is(':'))
            && toks.get(i + 2).is_some_and(|t| t.1.is(':'))
        {
            if let Some(m) = toks.get(i + 3).and_then(|t| t.1.ident()) {
                if ALLOC_PATHS.iter().any(|(t, mm)| *t == id && *mm == m) {
                    push(
                        sf,
                        lineno,
                        *col,
                        "hotpath-alloc",
                        format!("`{id}::{m}` allocates on the per-frame path; preallocate in the constructor"),
                        Some(note),
                        out,
                    );
                }
            }
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].1.is('.');
        if prev_dot && ALLOC_METHODS.contains(&id) && next.is_some_and(|t| t.is('(')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-alloc",
                format!("`.{id}()` allocates on the per-frame path; borrow instead"),
                Some(note),
                out,
            );
        }
    }
}

/// An explicit `drop(<frame binding>)` throws a pooled payload buffer
/// away: the `Vec` returns to the global allocator instead of the kernel's
/// arena free list, silently reintroducing the per-frame allocation the
/// arena exists to kill. Recycle instead (`ctx.recycle(frame)` /
/// `arena.give(frame.bytes)`); an implicit drop at end of scope is the
/// same leak but is not detectable token-locally, so only the explicit
/// spelling is flagged.
fn lint_perf_arena_leak(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    note: &str,
    out: &mut Vec<Finding>,
) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        if tok.ident() != Some("drop") {
            continue;
        }
        // `.drop(` is a method on some other type, not std's consume.
        if i > 0 && toks[i - 1].1.is('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.1.is('(')) {
            continue;
        }
        if let Some(arg) = toks.get(i + 2).and_then(|t| t.1.ident()) {
            if arg.to_ascii_lowercase().contains("frame") {
                push(
                    sf,
                    lineno,
                    *col,
                    "perf-arena-leak",
                    format!(
                        "`drop({arg})` discards a pooled frame buffer; recycle it \
                         (ctx.recycle / arena.give) so the payload Vec is reused"
                    ),
                    Some(note),
                    out,
                );
            }
        }
    }
}

/// Any string literal containing a `tn-…/v<N>`-shaped marker must use a
/// marker from [`schema::SCHEMA_REGISTRY`] — the single source of truth
/// for the workspace's wire formats.
fn lint_schema_version(sf: &SourceFile, lineno: usize, line: &Line, out: &mut Vec<Finding>) {
    for (col, lit) in &line.lits {
        for (off, marker) in schema::find_markers(lit) {
            if !schema::is_registered(&marker) {
                push(
                    sf,
                    lineno,
                    col + off,
                    "schema-version",
                    format!(
                        "wire-format marker `{marker}` is not in the schema registry; \
                         register it in crates/audit/src/schema.rs or fix the string"
                    ),
                    None,
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    /// Scan with every line tainted hot+det: exercises detection logic.
    fn scan(text: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("t.rs", text);
        let taint = FileTaint::full(sf.lines.len());
        scan_file(&sf, Scope::full(), &taint)
    }

    /// Scan with no taint at all: only global lints can fire.
    fn scan_cold(text: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("t.rs", text);
        let taint = FileTaint::cold(sf.lines.len());
        scan_file(&sf, Scope::full(), &taint)
    }

    #[test]
    fn keyed_hashmap_access_is_clean() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn get(&self) -> Option<&u32> { self.m.get(&1) } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hashmap_method_iteration_is_flagged() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn sum(&self) -> u32 { self.m.values().sum() } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-hashmap-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hashmap_for_loop_is_flagged() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn go(&self) { for (k, v) in &self.m { let _ = (k, v); } } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-hashmap-iter");
    }

    #[test]
    fn let_bound_hashset_iteration_is_flagged() {
        let f = scan(
            "fn f() { let mut seen = HashSet::new();\nfor x in seen.drain() { let _ = x; } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let f = scan(
            "struct S { m: BTreeMap<u32, u32> }\n\
             impl S { fn sum(&self) -> u32 { self.m.values().sum() } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unrelated_name_iteration_is_clean() {
        let f = scan("fn f(v: Vec<u32>) -> u32 { v.iter().sum() }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cold_lines_never_trip_taint_gated_lints() {
        let f = scan_cold(
            "fn helper() {\n    let t = Instant::now();\n    let v = Vec::new();\n    x.unwrap();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn findings_carry_the_taint_note() {
        let f = scan("fn on_frame() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].note.as_deref(), Some("test taint"));
    }

    #[test]
    fn toplevel_lines_inherit_file_det() {
        let sf = SourceFile::parse("t.rs", "static LAST: Option<SystemTime> = None;\n");
        let mut taint = FileTaint::cold(sf.lines.len());
        taint.file_det = true;
        let f = scan_file(&sf, Scope::full(), &taint);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-wallclock");
    }

    #[test]
    fn use_lines_are_inert_for_wallclock() {
        let sf = SourceFile::parse("t.rs", "use std::time::Instant;\n");
        let mut taint = FileTaint::cold(sf.lines.len());
        taint.file_det = true;
        let f = scan_file(&sf, Scope::full(), &taint);
        assert!(f.iter().all(|x| x.lint != "det-wallclock"), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = scan("fn on_timer() { let x = o.unwrap_or(3); let _ = x; }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = scan("#[cfg(test)]\nmod t {\n    fn on_frame() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_marks_finding() {
        let f = scan(
            "fn f() {\n    // audit:allow(det-wallclock): measuring the harness itself\n    let t = Instant::now();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed);
    }

    #[test]
    fn unseeded_rng_fires_without_taint() {
        let f = scan_cold("fn f() { let r = thread_rng(); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-unseeded-rng");
    }

    #[test]
    fn obs_wallclock_flags_std_time_once() {
        let f = scan_cold("fn f() { let d = std::time::Duration::from_secs(1); let _ = d; }\n");
        let obs: Vec<_> = f.iter().filter(|x| x.lint == "obs-wallclock").collect();
        assert_eq!(obs.len(), 1, "{f:?}");
        assert_eq!(obs[0].severity, Severity::Error);
    }

    #[test]
    fn obs_wallclock_flags_bare_duration() {
        let f = scan_cold("fn f(d: Duration) -> u64 { d.as_nanos() as u64 }\n");
        assert!(f.iter().any(|x| x.lint == "obs-wallclock"), "{f:?}");
    }

    #[test]
    fn obs_wallclock_off_outside_telemetry_scope() {
        let sf = SourceFile::parse("t.rs", "fn f(d: Duration) {}\n");
        let scope = Scope {
            hotpath: true,
            obs: false,
            perf: true,
            schema: true,
        };
        let f = scan_file(&sf, scope, &FileTaint::cold(sf.lines.len()));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dropping_a_frame_is_flagged() {
        let f = scan(
            "fn f(frame: Frame) {
    drop(frame);
}
",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "perf-arena-leak");
        assert_eq!(f[0].severity, Severity::Warning);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn dropping_non_frames_and_method_drops_are_clean() {
        let f = scan(
            "fn f(guard: Guard, q: Queue, frames: Frames) {
    drop(guard);
    q.drop(3);
    let n = frames.len();
    let _ = n;
}
",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_schema_marker_is_flagged() {
        let f = scan_cold("fn f() -> &'static str { \"tn-bogus/v9\" }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "schema-version");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn registered_schema_marker_is_clean() {
        let f = scan_cold("fn f() -> &'static str { \"tn-trace/v1\" }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn string_mention_is_clean() {
        let f = scan("fn f() -> &'static str { \"thread_rng Instant::now()\" }\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
