//! The lint pass: five determinism / hot-path lints over lexed source.
//!
//! Determinism lints (`det-*`) guard the property `tn-audit divergence`
//! verifies dynamically: same scenario + same seed ⇒ same trace digest.
//! Hot-path lints (`hotpath-*`) guard the per-frame code paths (`on_frame`,
//! `on_timer`, `decode*`/`parse*`) against panics and allocation — the
//! paper's whole argument is that the hot path is measured in nanoseconds.
//!
//! The pass is heuristic (token-level, not type-aware), so it is tuned to
//! the workspace's idioms and every finding can be waived in place with
//! `// audit:allow(<lint>): <justification>`.

use crate::source::{tokenize, SourceFile, Tok};

/// How bad a finding is. Both severities fail the build when active; the
/// split exists for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks the determinism contract.
    Error,
    /// Hurts the hot path.
    Warning,
}

impl Severity {
    /// Lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Static description of one lint.
pub struct LintInfo {
    /// Stable id, used in reports and `audit:allow(...)`.
    pub id: &'static str,
    /// Report severity.
    pub severity: Severity,
    /// One-line description for `tn-audit lints`.
    pub summary: &'static str,
}

/// Every lint the pass knows about.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "det-hashmap-iter",
        severity: Severity::Error,
        summary: "iteration over a HashMap/HashSet — visit order is nondeterministic",
    },
    LintInfo {
        id: "det-wallclock",
        severity: Severity::Error,
        summary: "wall-clock time source (Instant/SystemTime) in simulation logic",
    },
    LintInfo {
        id: "det-unseeded-rng",
        severity: Severity::Error,
        summary: "entropy-seeded RNG (thread_rng/from_entropy/OsRng) — runs are not reproducible",
    },
    LintInfo {
        id: "obs-wallclock",
        severity: Severity::Error,
        summary: "std::time type (Duration/UNIX_EPOCH/...) in telemetry code — timestamps must be simulated picoseconds",
    },
    LintInfo {
        id: "hotpath-unwrap",
        severity: Severity::Warning,
        summary: "unwrap/expect/panic! inside a per-frame handler",
    },
    LintInfo {
        id: "hotpath-alloc",
        severity: Severity::Warning,
        summary: "heap allocation (Vec::new/format!/to_vec/...) inside a per-frame handler",
    },
    LintInfo {
        id: "perf-arena-leak",
        severity: Severity::Warning,
        summary: "frame buffer dropped (`drop(frame)`) instead of returned to the arena",
    },
];

/// Look up a lint's metadata by id.
pub fn lint_info(id: &str) -> &'static LintInfo {
    LINTS.iter().find(|l| l.id == id).expect("unknown lint id")
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id.
    pub lint: &'static str,
    /// Severity (from the lint).
    pub severity: Severity,
    /// File, relative to the repo root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
    /// The raw source line, for the report.
    pub snippet: String,
    /// Whether an `audit:allow` waives it.
    pub suppressed: bool,
}

/// Which lint families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Apply `det-hashmap-iter` / `det-wallclock` (simulation-facing code).
    pub det: bool,
    /// Apply `hotpath-*` lints.
    pub hotpath: bool,
    /// Apply `obs-wallclock` (telemetry code: the tn-obs crate).
    pub obs: bool,
    /// Apply `perf-*` lints (frame-arena discipline: code that handles
    /// kernel frame buffers).
    pub perf: bool,
}

impl Scope {
    /// Everything on (used by tests and fixtures).
    pub fn full() -> Scope {
        Scope {
            det: true,
            hotpath: true,
            obs: true,
            perf: true,
        }
    }
}

/// Methods whose receiver iteration order escapes into program behaviour.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Functions whose bodies are hot paths.
fn is_hot_fn(name: &str) -> bool {
    name == "on_frame"
        || name == "on_timer"
        || name.starts_with("decode")
        || name.starts_with("parse")
}

/// Panicking calls flagged on hot paths: `.NAME(` receivers.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panicking macros flagged on hot paths: `NAME!`.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
/// Allocating macros flagged on hot paths.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Allocating `TYPE::METHOD` paths flagged on hot paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];
/// Allocating `.METHOD(` receivers flagged on hot paths.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned"];

/// Run every applicable lint over one file.
pub fn scan_file(sf: &SourceFile, scope: Scope) -> Vec<Finding> {
    let toks: Vec<Vec<(usize, Tok)>> = sf.lines.iter().map(|l| tokenize(&l.code)).collect();
    let maps = collect_map_names(&toks);
    let hot = hot_lines(sf, &toks);

    let mut out = Vec::new();
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let t = &toks[idx];

        if scope.det {
            lint_hashmap_iter(sf, lineno, t, &maps, &mut out);
            lint_wallclock(sf, lineno, t, &mut out);
        }
        if scope.obs {
            lint_obs_wallclock(sf, lineno, t, &mut out);
        }
        lint_unseeded_rng(sf, lineno, t, &mut out);
        if scope.hotpath && hot[idx] {
            lint_hot_unwrap(sf, lineno, t, &mut out);
            lint_hot_alloc(sf, lineno, t, &mut out);
        }
        if scope.perf {
            lint_perf_arena_leak(sf, lineno, t, &mut out);
        }
    }
    out
}

/// Names declared with a `HashMap`/`HashSet` type or constructor anywhere
/// in the file: struct fields (`name: HashMap<..>`), let bindings
/// (`let [mut] name = HashMap::new()` / `let name: HashMap<..>`), and fn
/// params. Only *iteration* over these names is flagged — keyed access
/// (`get`/`insert`/`entry`) is order-free and allowed.
fn collect_map_names(toks: &[Vec<(usize, Tok)>]) -> Vec<String> {
    let mut names = Vec::new();
    for line in toks {
        for (i, (_, tok)) in line.iter().enumerate() {
            let Some(id) = tok.ident() else { continue };
            if id != "HashMap" && id != "HashSet" {
                continue;
            }
            // `HashMap::new()` on a let line: find `let [mut] name =` left.
            // `name: [wrappers<] HashMap<..>`: walk left past wrapper
            // tokens to the `:` and take the ident before it.
            let mut j = i;
            let mut name: Option<&str> = None;
            while j > 0 {
                j -= 1;
                match &line[j].1 {
                    Tok::Punct(':') => {
                        // skip a `::` path qualifier (std::collections::)
                        if j > 0 && line[j - 1].1.is(':') {
                            j -= 1;
                            continue;
                        }
                        if j > 0 {
                            if let Some(n) = line[j - 1].1.ident() {
                                if n != "mut" {
                                    name = Some(n);
                                }
                            }
                        }
                        break;
                    }
                    Tok::Punct('=') => {
                        // `let [mut] name = HashMap::new()`
                        if j >= 2 {
                            if let Some(n) = line[j - 1].1.ident() {
                                let n = if n == "mut" {
                                    line.get(j.wrapping_sub(2)).and_then(|t| t.1.ident())
                                } else {
                                    Some(n)
                                };
                                name = n;
                            }
                        }
                        break;
                    }
                    Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('&') => continue,
                    Tok::Ident(w)
                        if matches!(
                            w.as_str(),
                            "Option" | "Box" | "Vec" | "std" | "collections" | "pub" | "crate"
                        ) =>
                    {
                        continue
                    }
                    _ => break,
                }
            }
            if let Some(n) = name {
                if !names.iter().any(|x| x == n) {
                    names.push(n.to_string());
                }
            }
        }
    }
    names
}

/// Mark lines inside hot-path function bodies, via brace tracking from
/// each `fn on_frame`/`on_timer`/`decode*`/`parse*` signature.
fn hot_lines(sf: &SourceFile, toks: &[Vec<(usize, Tok)>]) -> Vec<bool> {
    let n = sf.lines.len();
    let mut hot = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let is_hot_sig = toks[i]
            .windows(2)
            .any(|w| w[0].1.ident() == Some("fn") && w[1].1.ident().is_some_and(is_hot_fn));
        if !is_hot_sig || sf.lines[i].in_test {
            i += 1;
            continue;
        }
        // Find the body: first `{` at/after the signature line, then its
        // matching `}`. Signatures don't contain braces before the body.
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut j = i;
        while j < n {
            for ch in sf.lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // A trait method *declaration* ends at `;` — no body.
                    ';' if !opened => {
                        j = n; // sentinel: nothing to mark
                        break;
                    }
                    _ => {}
                }
            }
            if j >= n || (opened && depth <= 0) {
                break;
            }
            j += 1;
        }
        if j < n {
            for flag in &mut hot[i..=j] {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    hot
}

fn push(
    sf: &SourceFile,
    lineno: usize,
    column: usize,
    lint: &'static str,
    message: String,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        lint,
        severity: lint_info(lint).severity,
        file: sf.rel.clone(),
        line: lineno,
        column,
        message,
        snippet: sf.lines[lineno - 1].raw.clone(),
        suppressed: sf.allowed(lineno, lint),
    });
}

fn lint_hashmap_iter(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    maps: &[String],
    out: &mut Vec<Finding>,
) {
    let is_map = |t: &Tok| t.ident().is_some_and(|n| maps.iter().any(|m| m == n));

    for (i, (col, tok)) in toks.iter().enumerate() {
        // `name.iter_method(` — receiver must be a known map name.
        if is_map(tok)
            && toks.get(i + 1).is_some_and(|t| t.1.is('.'))
            && toks
                .get(i + 2)
                .and_then(|t| t.1.ident())
                .is_some_and(|m| ITER_METHODS.contains(&m))
        {
            let method = toks[i + 2].1.ident().unwrap_or_default();
            push(
                sf,
                lineno,
                *col,
                "det-hashmap-iter",
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet; visit order varies across \
                     processes — use BTreeMap/BTreeSet or sort first",
                    tok.ident().unwrap_or_default(),
                    method
                ),
                out,
            );
        }
        // `for pat in [&][mut] [self.]name {` — direct iteration.
        if tok.ident() == Some("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.1.is('&') || t.1.ident() == Some("mut"))
            {
                j += 1;
            }
            if toks.get(j).and_then(|t| t.1.ident()) == Some("self")
                && toks.get(j + 1).is_some_and(|t| t.1.is('.'))
            {
                j += 2;
            }
            if let Some((mcol, mtok)) = toks.get(j) {
                let ends_iter = match toks.get(j + 1) {
                    None => true,
                    Some(t) => t.1.is('{'),
                };
                if is_map(mtok) && ends_iter {
                    push(
                        sf,
                        lineno,
                        *mcol,
                        "det-hashmap-iter",
                        format!(
                            "`for .. in {}` iterates a HashMap/HashSet; visit order varies \
                             across processes — use BTreeMap/BTreeSet or sort first",
                            mtok.ident().unwrap_or_default()
                        ),
                        out,
                    );
                }
            }
        }
    }
}

fn lint_wallclock(sf: &SourceFile, lineno: usize, toks: &[(usize, Tok)], out: &mut Vec<Finding>) {
    for (col, tok) in toks {
        if let Some(id) = tok.ident() {
            if id == "Instant" || id == "SystemTime" {
                push(
                    sf,
                    lineno,
                    *col,
                    "det-wallclock",
                    format!(
                        "`{id}` reads the wall clock; simulation logic must use SimTime \
                         so identical runs stay identical"
                    ),
                    out,
                );
            }
        }
    }
}

/// Telemetry code may only speak simulated picoseconds: beyond the
/// `det-wallclock` clock sources, *any* `std::time` type (`Duration`,
/// `UNIX_EPOCH`, a `std::time::` path) smuggles wall-clock semantics into
/// records that must be identical across runs and hosts.
fn lint_obs_wallclock(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    out: &mut Vec<Finding>,
) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let flagged = match id {
            // `std::time::Duration` is already flagged at the `std` token.
            "Duration" | "UNIX_EPOCH" => {
                !(i >= 3
                    && toks[i - 1].1.is(':')
                    && toks[i - 2].1.is(':')
                    && toks[i - 3].1.ident() == Some("time"))
            }
            // `std :: time` path, however the type is spelled after it —
            // except the clock sources, which `det-wallclock` owns.
            "std" => {
                toks.get(i + 1).is_some_and(|t| t.1.is(':'))
                    && toks.get(i + 2).is_some_and(|t| t.1.is(':'))
                    && toks.get(i + 3).and_then(|t| t.1.ident()) == Some("time")
                    && !matches!(
                        toks.get(i + 6).and_then(|t| t.1.ident()),
                        Some("Instant") | Some("SystemTime")
                    )
            }
            _ => false,
        };
        if flagged {
            push(
                sf,
                lineno,
                *col,
                "obs-wallclock",
                format!(
                    "`{id}` brings std::time into telemetry; timestamps and durations \
                     must be u64 simulated picoseconds"
                ),
                out,
            );
        }
    }
}

fn lint_unseeded_rng(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    out: &mut Vec<Finding>,
) {
    for (col, tok) in toks {
        if let Some(id) = tok.ident() {
            if id == "thread_rng" || id == "from_entropy" || id == "OsRng" {
                push(
                    sf,
                    lineno,
                    *col,
                    "det-unseeded-rng",
                    format!(
                        "`{id}` draws entropy from the OS; all randomness must flow from \
                         the scenario seed"
                    ),
                    out,
                );
            }
        }
    }
}

fn lint_hot_unwrap(sf: &SourceFile, lineno: usize, toks: &[(usize, Tok)], out: &mut Vec<Finding>) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let prev_dot = i > 0 && toks[i - 1].1.is('.');
        let next = toks.get(i + 1).map(|t| &t.1);
        if prev_dot && PANIC_METHODS.contains(&id) && next.is_some_and(|t| t.is('(')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-unwrap",
                format!("`.{id}()` can panic on the per-frame path; handle the None/Err case"),
                out,
            );
        }
        if PANIC_MACROS.contains(&id) && next.is_some_and(|t| t.is('!')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-unwrap",
                format!("`{id}!` panics on the per-frame path; degrade gracefully instead"),
                out,
            );
        }
    }
}

fn lint_hot_alloc(sf: &SourceFile, lineno: usize, toks: &[(usize, Tok)], out: &mut Vec<Finding>) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let next = toks.get(i + 1).map(|t| &t.1);
        if ALLOC_MACROS.contains(&id) && next.is_some_and(|t| t.is('!')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-alloc",
                format!("`{id}!` allocates on the per-frame path; reuse a buffer"),
                out,
            );
            continue;
        }
        // `Type::method(` paths.
        if ALLOC_PATHS.iter().any(|(t, _)| *t == id)
            && toks.get(i + 1).is_some_and(|t| t.1.is(':'))
            && toks.get(i + 2).is_some_and(|t| t.1.is(':'))
        {
            if let Some(m) = toks.get(i + 3).and_then(|t| t.1.ident()) {
                if ALLOC_PATHS.iter().any(|(t, mm)| *t == id && *mm == m) {
                    push(
                        sf,
                        lineno,
                        *col,
                        "hotpath-alloc",
                        format!("`{id}::{m}` allocates on the per-frame path; preallocate in the constructor"),
                        out,
                    );
                }
            }
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].1.is('.');
        if prev_dot && ALLOC_METHODS.contains(&id) && next.is_some_and(|t| t.is('(')) {
            push(
                sf,
                lineno,
                *col,
                "hotpath-alloc",
                format!("`.{id}()` allocates on the per-frame path; borrow instead"),
                out,
            );
        }
    }
}

/// An explicit `drop(<frame binding>)` throws a pooled payload buffer
/// away: the `Vec` returns to the global allocator instead of the kernel's
/// arena free list, silently reintroducing the per-frame allocation the
/// arena exists to kill. Recycle instead (`ctx.recycle(frame)` /
/// `arena.give(frame.bytes)`); an implicit drop at end of scope is the
/// same leak but is not detectable token-locally, so only the explicit
/// spelling is flagged.
fn lint_perf_arena_leak(
    sf: &SourceFile,
    lineno: usize,
    toks: &[(usize, Tok)],
    out: &mut Vec<Finding>,
) {
    for (i, (col, tok)) in toks.iter().enumerate() {
        if tok.ident() != Some("drop") {
            continue;
        }
        // `.drop(` is a method on some other type, not std's consume.
        if i > 0 && toks[i - 1].1.is('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.1.is('(')) {
            continue;
        }
        if let Some(arg) = toks.get(i + 2).and_then(|t| t.1.ident()) {
            if arg.to_ascii_lowercase().contains("frame") {
                push(
                    sf,
                    lineno,
                    *col,
                    "perf-arena-leak",
                    format!(
                        "`drop({arg})` discards a pooled frame buffer; recycle it                          (ctx.recycle / arena.give) so the payload Vec is reused"
                    ),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn scan(text: &str) -> Vec<Finding> {
        scan_file(&SourceFile::parse("t.rs", text), Scope::full())
    }

    #[test]
    fn keyed_hashmap_access_is_clean() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn get(&self) -> Option<&u32> { self.m.get(&1) } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hashmap_method_iteration_is_flagged() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn sum(&self) -> u32 { self.m.values().sum() } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-hashmap-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hashmap_for_loop_is_flagged() {
        let f = scan(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S { fn go(&self) { for (k, v) in &self.m { let _ = (k, v); } } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "det-hashmap-iter");
    }

    #[test]
    fn let_bound_hashset_iteration_is_flagged() {
        let f = scan(
            "fn f() { let mut seen = HashSet::new();\nfor x in seen.drain() { let _ = x; } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let f = scan(
            "struct S { m: BTreeMap<u32, u32> }\n\
             impl S { fn sum(&self) -> u32 { self.m.values().sum() } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unrelated_name_iteration_is_clean() {
        let f = scan("fn f(v: Vec<u32>) -> u32 { v.iter().sum() }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hot_fn_extents() {
        let f = scan(
            "fn on_frame(&mut self) {\n    let v = Vec::new();\n}\n\
             fn cold(&mut self) {\n    let v = Vec::new();\n}\n",
        );
        assert_eq!(f.len(), 1, "only the on_frame body is hot: {f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn trait_method_declaration_is_not_a_body() {
        let f = scan("trait T {\n    fn on_frame(&mut self);\n}\nfn x() { panic!(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = scan("fn on_timer(&mut self) { let x = o.unwrap_or(3); let _ = x; }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = scan("#[cfg(test)]\nmod t {\n    fn on_frame() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn suppression_marks_finding() {
        let f = scan(
            "fn f() {\n    // audit:allow(det-wallclock): measuring the harness itself\n    let t = Instant::now();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed);
    }

    #[test]
    fn obs_wallclock_flags_std_time_once() {
        let f = scan("fn f() { let d = std::time::Duration::from_secs(1); let _ = d; }\n");
        let obs: Vec<_> = f.iter().filter(|x| x.lint == "obs-wallclock").collect();
        assert_eq!(obs.len(), 1, "{f:?}");
        assert_eq!(obs[0].severity, Severity::Error);
    }

    #[test]
    fn obs_wallclock_flags_bare_duration() {
        let f = scan("fn f(d: Duration) -> u64 { d.as_nanos() as u64 }\n");
        assert!(f.iter().any(|x| x.lint == "obs-wallclock"), "{f:?}");
    }

    #[test]
    fn obs_wallclock_off_outside_telemetry_scope() {
        let sf = SourceFile::parse("t.rs", "fn f(d: Duration) {}\n");
        let scope = Scope {
            det: true,
            hotpath: true,
            obs: false,
            perf: true,
        };
        let f = scan_file(&sf, scope);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dropping_a_frame_is_flagged() {
        let f = scan(
            "fn f(frame: Frame) {
    drop(frame);
}
",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "perf-arena-leak");
        assert_eq!(f[0].severity, Severity::Warning);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn dropping_non_frames_and_method_drops_are_clean() {
        let f = scan(
            "fn f(guard: Guard, q: Queue, frames: Frames) {
    drop(guard);
    q.drop(3);
    let n = frames.len();
    let _ = n;
}
",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn string_mention_is_clean() {
        let f = scan("fn f() -> &'static str { \"thread_rng Instant::now()\" }\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
