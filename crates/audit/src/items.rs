//! A lightweight Rust item parser: `fn` / `impl` / `trait` / `use`
//! structure recovered from the blanked per-line token view.
//!
//! This is not a grammar-complete parser — it is the minimum structural
//! pass the call-graph needs: every function definition with its
//! enclosing impl/trait context and body span, the call sites inside
//! each body, and the file's `use` imports (so calls to `std`-imported
//! free functions are not mis-resolved onto workspace items). It is
//! token-level and total: code it cannot make sense of is skipped, never
//! an error.

use crate::source::{tokenize, SourceFile, Tok};

/// One token of the dense (whitespace-free) stream, with its location.
#[derive(Debug, Clone)]
pub struct DTok {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// The token.
    pub tok: Tok,
}

/// Flatten a file's blanked code view into one dense token stream.
pub fn dense_tokens(sf: &SourceFile) -> Vec<DTok> {
    let mut out = Vec::new();
    for (idx, line) in sf.lines.iter().enumerate() {
        for (col, tok) in tokenize(&line.code) {
            out.push(DTok {
                line: idx + 1,
                col,
                tok,
            });
        }
    }
    out
}

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Call {
    /// `name(...)` — a free (unqualified, receiver-less) call.
    Free(String),
    /// `.name(...)` — a method call; `on_self` when spelled `self.name(`.
    Method {
        /// Method name.
        name: String,
        /// Whether the receiver is literally `self`.
        on_self: bool,
    },
    /// `Qualifier::name(...)` — `Qualifier` is the last path segment
    /// before the final `::` (a type, module, or `Self`).
    Qual {
        /// Last path segment before the call name.
        qualifier: String,
        /// Called function name.
        name: String,
    },
}

/// One parsed function definition (or trait-method declaration).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub self_ty: Option<String>,
    /// Trait implemented by the enclosing `impl TRAIT for ..` block, or
    /// the trait's own name for methods declared inside `trait .. { }`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Dense-token index range of the body (the `{..}` inclusive), or
    /// `None` for a bodiless trait-method declaration.
    pub body: Option<(usize, usize)>,
    /// 1-based source line span `(signature line, body close line)`;
    /// `None` for bodiless declarations.
    pub lines: Option<(usize, usize)>,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Call sites inside the body (nested fn bodies excluded).
    pub calls: Vec<Call>,
}

impl FnDef {
    /// Display name: `Type::name` for methods, bare `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function definition, outermost first.
    pub fns: Vec<FnDef>,
    /// Names imported from `std`/`core`/`alloc` via `use` (leaf segments):
    /// free calls to these must not resolve onto workspace items.
    pub std_imports: Vec<String>,
}

/// Parse one file's item structure: one structural pass to find every
/// `fn` with its impl/trait context and body span, then a call-extraction
/// pass per body that masks out sub-spans owned by nested `fn` items.
pub fn parse_file(sf: &SourceFile) -> ParsedFile {
    let toks = dense_tokens(sf);
    let mut out = ParsedFile::default();
    parse_items(sf, &toks, 0, toks.len(), None, None, &mut out);
    let spans: Vec<(usize, usize)> = out.fns.iter().filter_map(|f| f.body).collect();
    for f in &mut out.fns {
        if let Some((b0, b1)) = f.body {
            let nested: Vec<(usize, usize)> = spans
                .iter()
                .copied()
                .filter(|&(s, e)| s > b0 && e <= b1)
                .collect();
            f.calls = collect_calls(&toks, b0, b1, &nested);
        }
    }
    out
}

fn ident_at(toks: &[DTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

fn is_punct(toks: &[DTok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is(c))
}

/// Skip a balanced `<...>` starting at `i` (which must be `<`); returns
/// the index just past the matching `>`.
fn skip_angles(toks: &[DTok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if is_punct(toks, i, '<') {
            depth += 1;
        } else if is_punct(toks, i, '>') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if is_punct(toks, i, '(') {
            // `Fn(..)` bounds: parens inside generics are balanced too.
            i = skip_parens(toks, i);
            continue;
        } else if is_punct(toks, i, ';') || is_punct(toks, i, '{') {
            return i; // malformed; bail before the item body
        }
        i += 1;
    }
    i
}

/// Skip a balanced `(...)` starting at `i` (which must be `(`).
fn skip_parens(toks: &[DTok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if is_punct(toks, i, '(') {
            depth += 1;
        } else if is_punct(toks, i, ')') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Read a type path at `i`: `a::b::C<..>` — returns (last segment, index
/// past the path including any trailing generic args).
fn read_path(toks: &[DTok], mut i: usize) -> (Option<String>, usize) {
    // Leading `&`, `mut`, `dyn` are not part of the name.
    while is_punct(toks, i, '&')
        || matches!(ident_at(toks, i), Some("mut") | Some("dyn"))
        || toks
            .get(i)
            .is_some_and(|t| matches!(t.tok, Tok::Punct('\'')))
    {
        i += 1;
    }
    let mut last: Option<String> = None;
    while let Some(seg) = ident_at(toks, i) {
        last = Some(seg.to_string());
        i += 1;
        if is_punct(toks, i, '<') {
            i = skip_angles(toks, i);
        }
        if is_punct(toks, i, ':') && is_punct(toks, i + 1, ':') {
            i += 2;
        } else {
            break;
        }
    }
    (last, i)
}

/// Find the matching `}` for the `{` at `open`; returns its index.
fn match_brace(toks: &[DTok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, '{') {
            depth += 1;
        } else if is_punct(toks, i, '}') {
            depth -= 1;
            if depth <= 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

#[allow(clippy::too_many_arguments)]
fn parse_items(
    sf: &SourceFile,
    toks: &[DTok],
    mut i: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut ParsedFile,
) {
    while i < end {
        match ident_at(toks, i) {
            Some("fn") => {
                // `fn(` is a function-pointer type, not an item.
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let sig_line = toks[i].line;
                let mut j = i + 2;
                if is_punct(toks, j, '<') {
                    j = skip_angles(toks, j);
                }
                // Scan for the body `{` or a declaration-ending `;` at
                // bracket depth 0 ( `[u8; 4]` keeps its `;` nested).
                let mut depth = 0i32;
                let body_open = loop {
                    if j >= end {
                        break None;
                    }
                    if is_punct(toks, j, '(') || is_punct(toks, j, '[') {
                        depth += 1;
                    } else if is_punct(toks, j, ')') || is_punct(toks, j, ']') {
                        depth -= 1;
                    } else if depth == 0 && is_punct(toks, j, '{') {
                        break Some(j);
                    } else if depth == 0 && is_punct(toks, j, ';') {
                        break None;
                    }
                    j += 1;
                };
                let body = body_open.map(|open| (open, match_brace(toks, open).min(end - 1)));
                let is_test = sf
                    .lines
                    .get(sig_line - 1)
                    .map(|l| l.in_test)
                    .unwrap_or(false);
                out.fns.push(FnDef {
                    name,
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    line: sig_line,
                    body,
                    lines: body.map(|(_, close)| (sig_line, toks[close].line)),
                    is_test,
                    calls: Vec::new(),
                });
                if let Some((open, close)) = body {
                    // Nested fns (and local impls) inside the body.
                    parse_items(sf, toks, open + 1, close, None, None, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            Some("impl") => {
                let mut j = i + 1;
                if is_punct(toks, j, '<') {
                    j = skip_angles(toks, j);
                }
                let (first, after) = read_path(toks, j);
                let (t_name, s_ty, mut k) = if ident_at(toks, after) == Some("for") {
                    let (second, after2) = read_path(toks, after + 1);
                    (first, second, after2)
                } else {
                    (None, first, after)
                };
                // Skip any `where` clause up to the block.
                while k < end && !is_punct(toks, k, '{') && !is_punct(toks, k, ';') {
                    k += 1;
                }
                if is_punct(toks, k, '{') {
                    let close = match_brace(toks, k).min(end - 1);
                    parse_items(
                        sf,
                        toks,
                        k + 1,
                        close,
                        s_ty.as_deref(),
                        t_name.as_deref(),
                        out,
                    );
                    i = close + 1;
                } else {
                    i = k + 1;
                }
            }
            Some("trait") => {
                let name = ident_at(toks, i + 1).map(str::to_string);
                let mut k = i + 2;
                while k < end && !is_punct(toks, k, '{') && !is_punct(toks, k, ';') {
                    k += 1;
                }
                if is_punct(toks, k, '{') {
                    let close = match_brace(toks, k).min(end - 1);
                    parse_items(
                        sf,
                        toks,
                        k + 1,
                        close,
                        name.as_deref(),
                        name.as_deref(),
                        out,
                    );
                    i = close + 1;
                } else {
                    i = k + 1;
                }
            }
            Some("use") => {
                // Collect leaf names of std/core/alloc imports; groups
                // (`use std::mem::{take, swap}`) contribute every leaf.
                let root_is_std = matches!(
                    ident_at(toks, i + 1),
                    Some("std") | Some("core") | Some("alloc")
                );
                let mut j = i + 1;
                let mut prev: Option<String> = None;
                while j < end && !is_punct(toks, j, ';') {
                    if let Some(id) = ident_at(toks, j) {
                        prev = Some(id.to_string());
                    } else if (is_punct(toks, j, ',') || is_punct(toks, j, '}')) && root_is_std {
                        if let Some(p) = prev.take() {
                            out.std_imports.push(p);
                        }
                    }
                    j += 1;
                }
                if root_is_std {
                    if let Some(p) = prev.take() {
                        out.std_imports.push(p);
                    }
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
}

/// Rust keywords that look like call syntax (`if (..)`, `while (..)`).
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "in", "as", "move", "ref", "let",
    "mut", "box", "await", "break", "continue", "unsafe", "where", "pub",
];

/// Extract call sites from a body token range, skipping sub-ranges that
/// belong to nested `fn` items (those calls belong to the nested fn).
pub fn collect_calls(toks: &[DTok], b0: usize, b1: usize, nested: &[(usize, usize)]) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = b0;
    while i <= b1 && i < toks.len() {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == i) {
            i = nend + 1;
            continue;
        }
        let Some(name) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        // A call is `ident (` — with `ident !` (macros) excluded.
        if !is_punct(toks, i + 1, '(') || CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        let prev_is = |c: char| i > b0 && is_punct(toks, i - 1, c);
        if prev_is('.') {
            // `recv.name(` — receiver is `self` iff the token before the
            // dot is literally `self` not itself preceded by a dot.
            let on_self = i >= 2
                && ident_at(toks, i - 2) == Some("self")
                && !(i >= 3 && is_punct(toks, i - 3, '.'));
            out.push(Call::Method {
                name: name.to_string(),
                on_self,
            });
        } else if prev_is(':') && i >= 2 && is_punct(toks, i - 2, ':') {
            if let Some(q) = ident_at(toks, i - 3) {
                out.push(Call::Qual {
                    qualifier: q.to_string(),
                    name: name.to_string(),
                });
            }
        } else if ident_at(toks, i.wrapping_sub(1)) != Some("fn") {
            out.push(Call::Free(name.to_string()));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(text: &str) -> ParsedFile {
        parse_file(&SourceFile::parse("t.rs", text))
    }

    #[test]
    fn fn_in_impl_records_self_ty_and_trait() {
        let p = parse(
            "impl Node for Gateway {\n    fn on_frame(&mut self) { self.route(); }\n}\n\
             impl Gateway {\n    fn route(&mut self) {}\n}\n",
        );
        assert_eq!(p.fns.len(), 2, "{:?}", p.fns);
        let of = &p.fns[0];
        assert_eq!(of.name, "on_frame");
        assert_eq!(of.self_ty.as_deref(), Some("Gateway"));
        assert_eq!(of.trait_name.as_deref(), Some("Node"));
        assert_eq!(
            of.calls,
            vec![Call::Method {
                name: "route".into(),
                on_self: true
            }]
        );
        let r = &p.fns[1];
        assert_eq!(r.trait_name, None);
        assert_eq!(r.self_ty.as_deref(), Some("Gateway"));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let p = parse(
            "impl<L: StrategyLogic + 'static> Node for Strategy<L> {\n    fn on_frame(&mut self) {}\n}\n",
        );
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Strategy"));
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("Node"));
    }

    #[test]
    fn qualified_trait_paths_keep_last_segment() {
        let p = parse("impl tn_sim::Node for Tap {\n    fn on_frame(&mut self) {}\n}\n");
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("Node"));
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Tap"));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let p = parse("trait Link {\n    fn transmit(&mut self, n: usize) -> u64;\n    fn decompose(&self) -> u64 { 0 }\n}\n");
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("Link"));
    }

    #[test]
    fn array_type_semicolons_do_not_end_the_signature() {
        let p = parse("fn f(x: [u8; 4]) -> u8 { x[0] }\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let p = parse("fn outer() {\n    fn inner() { helper(); }\n    other();\n}\n");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls, vec![Call::Free("other".into())]);
        assert_eq!(inner.calls, vec![Call::Free("helper".into())]);
    }

    #[test]
    fn call_shapes_are_classified() {
        let p = parse(
            "fn f(sim: &mut Simulator) {\n    sim.inject_frame(1);\n    pitch::decode(2);\n    Self::tick();\n    helper();\n    macro_like!(3);\n    if (x) {}\n}\n",
        );
        let calls = &p.fns[0].calls;
        assert!(calls.contains(&Call::Method {
            name: "inject_frame".into(),
            on_self: false
        }));
        assert!(calls.contains(&Call::Qual {
            qualifier: "pitch".into(),
            name: "decode".into()
        }));
        assert!(calls.contains(&Call::Qual {
            qualifier: "Self".into(),
            name: "tick".into()
        }));
        assert!(calls.contains(&Call::Free("helper".into())));
        assert!(!calls
            .iter()
            .any(|c| matches!(c, Call::Free(n) if n == "macro_like" || n == "if")));
    }

    #[test]
    fn std_use_leaves_are_collected() {
        let p = parse("use std::mem::take;\nuse std::collections::{HashMap, HashSet};\nuse tn_sim::Simulator;\nfn f() {}\n");
        assert!(p.std_imports.iter().any(|s| s == "take"));
        assert!(p.std_imports.iter().any(|s| s == "HashMap"));
        assert!(!p.std_imports.iter().any(|s| s == "Simulator"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p = parse("#[cfg(test)]\nmod t {\n    fn probe() {}\n}\nfn live() {}\n");
        assert!(p.fns.iter().find(|f| f.name == "probe").unwrap().is_test);
        assert!(!p.fns.iter().find(|f| f.name == "live").unwrap().is_test);
    }
}
