//! Baseline gating: parse, validate, and diff `tn-audit/v1` reports.
//!
//! CI commits a known-good report (`AUDIT_BASELINE.json`) and fails when
//! a *new* finding appears — including suppressed ones, so suppression
//! creep is caught in review even though `audit:allow` keeps the exit
//! code green. The JSON parser is hand-rolled (offline workspace, no
//! serde) and minimal: just enough of RFC 8259 for our own documents.

use crate::lints::Finding;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (we only emit integers).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Integer payload, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a char offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing data at char {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at char {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.lit("true", Value::Bool(true)),
            Some('f') => self.lit("false", Value::Bool(false)),
            Some('n') => self.lit("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at char {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(':')?;
            self.ws();
            let val = self.value()?;
            members.push((key, val));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at char {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at char {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                                self.i += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || ".eE+-".contains(c))
        {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

/// Validate that `doc` is a well-formed `tn-audit/v1` report: schema
/// marker, finding fields with the right types, and self-consistent
/// counts. Returns a description of the first violation.
pub fn validate_report(doc: &Value) -> Result<(), String> {
    if doc.get("schema").and_then(Value::as_str) != Some("tn-audit/v1") {
        return Err("missing or wrong `schema` marker (want \"tn-audit/v1\")".into());
    }
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("`findings` must be an array")?;
    let known: Vec<&str> = crate::lints::LINTS.iter().map(|l| l.id).collect();
    let mut suppressed = 0usize;
    for (i, f) in findings.iter().enumerate() {
        let ctx = |field: &str| format!("finding {i}: bad `{field}`");
        let lint = f
            .get("lint")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("lint"))?;
        if !known.contains(&lint) {
            return Err(format!("finding {i}: unknown lint id `{lint}`"));
        }
        let sev = f
            .get("severity")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("severity"))?;
        if sev != "error" && sev != "warning" {
            return Err(format!("finding {i}: bad severity `{sev}`"));
        }
        f.get("file")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("file"))?;
        f.get("line")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("line"))?;
        f.get("column")
            .and_then(Value::as_u64)
            .ok_or_else(|| ctx("column"))?;
        f.get("message")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("message"))?;
        if let Some(note) = f.get("note") {
            note.as_str().ok_or_else(|| ctx("note"))?;
        }
        if f.get("suppressed")
            .and_then(Value::as_bool)
            .ok_or_else(|| ctx("suppressed"))?
        {
            suppressed += 1;
        }
    }
    let counts = doc.get("counts").ok_or("missing `counts`")?;
    let n = |k: &str| {
        counts
            .get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("counts: bad `{k}`"))
    };
    let (total, sup, active) = (n("total")?, n("suppressed")?, n("active")?);
    if total as usize != findings.len() || sup as usize != suppressed || total != sup + active {
        return Err(format!(
            "counts are inconsistent with findings (total {total}, suppressed {sup}, \
             active {active}, findings {})",
            findings.len()
        ));
    }
    Ok(())
}

/// The outcome of diffing findings against a committed baseline.
#[derive(Debug)]
pub struct BaselineDiff {
    /// Findings (as `lint @ file:line` keys) absent from the baseline.
    pub new: Vec<String>,
    /// Baseline entries no longer present (progress; never fails).
    pub resolved: usize,
    /// Entries in the baseline.
    pub baseline_total: usize,
}

fn key(lint: &str, file: &str, line: u64) -> String {
    format!("{lint} @ {file}:{line}")
}

/// Keys of every finding in a parsed `tn-audit/v1` document.
fn doc_keys(doc: &Value) -> Result<Vec<String>, String> {
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("`findings` must be an array")?;
    findings
        .iter()
        .map(|f| {
            Ok(key(
                f.get("lint").and_then(Value::as_str).ok_or("bad lint")?,
                f.get("file").and_then(Value::as_str).ok_or("bad file")?,
                f.get("line").and_then(Value::as_u64).ok_or("bad line")?,
            ))
        })
        .collect()
}

/// Diff live findings against a parsed baseline document. A finding is
/// "new" when its `(lint, file, line)` key is not in the baseline.
pub fn diff_against_baseline(
    findings: &[Finding],
    baseline: &Value,
) -> Result<BaselineDiff, String> {
    let base = doc_keys(baseline)?;
    let live: Vec<String> = findings
        .iter()
        .map(|f| key(f.lint, &f.file, f.line as u64))
        .collect();
    let new: Vec<String> = live.iter().filter(|k| !base.contains(k)).cloned().collect();
    let resolved = base.iter().filter(|k| !live.contains(k)).count();
    Ok(BaselineDiff {
        new,
        resolved,
        baseline_total: base.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Finding, Severity};
    use crate::report::render_json;

    fn finding(lint: &'static str, file: &str, line: usize) -> Finding {
        Finding {
            lint,
            severity: Severity::Error,
            file: file.into(),
            line,
            column: 1,
            message: "m".into(),
            snippet: "s".into(),
            note: Some("n".into()),
            suppressed: false,
        }
    }

    #[test]
    fn parse_roundtrips_own_report() {
        let fs = vec![finding("det-wallclock", "a.rs", 3)];
        let doc = parse(&render_json(&fs)).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("tn-audit/v1")
        );
        validate_report(&doc).unwrap();
    }

    #[test]
    fn parse_handles_escapes_and_nesting() {
        let v = parse("{\"a\": [1, -2.5, \"x\\n\\\"y\\u0041\", true, null], \"b\": {}}").unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_str(), Some("x\n\"yA"));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn validation_rejects_drift() {
        let doc = parse("{\"schema\":\"tn-audit/v2\",\"findings\":[],\"counts\":{\"total\":0,\"suppressed\":0,\"active\":0}}").unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("schema"));
        let doc = parse("{\"schema\":\"tn-audit/v1\",\"findings\":[],\"counts\":{\"total\":3,\"suppressed\":0,\"active\":3}}").unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("inconsistent"));
        let doc = parse(
            "{\"schema\":\"tn-audit/v1\",\"findings\":[{\"lint\":\"made-up\",\"severity\":\"error\",\
             \"file\":\"a\",\"line\":1,\"column\":1,\"message\":\"m\",\"suppressed\":false}],\
             \"counts\":{\"total\":1,\"suppressed\":0,\"active\":1}}",
        )
        .unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("unknown lint"));
    }

    #[test]
    fn baseline_diff_finds_new_and_resolved() {
        let baseline_doc = parse(&render_json(&[
            finding("det-wallclock", "a.rs", 3),
            finding("hotpath-alloc", "b.rs", 9),
        ]))
        .unwrap();
        let live = vec![
            finding("det-wallclock", "a.rs", 3),
            finding("det-unseeded-rng", "c.rs", 1),
        ];
        let d = diff_against_baseline(&live, &baseline_doc).unwrap();
        assert_eq!(d.new, vec!["det-unseeded-rng @ c.rs:1"]);
        assert_eq!(d.resolved, 1);
        assert_eq!(d.baseline_total, 2);
    }
}
