//! Rendering: rustc-style terminal output and a stable JSON document.
//!
//! The JSON document self-identifies via the registered `tn-audit/v1`
//! schema marker and is covered by tests — downstream tooling (the CI
//! baseline gate, dashboards) may rely on it:
//!
//! ```json
//! {
//!   "schema": "tn-audit/v1",
//!   "findings": [
//!     {"lint": "...", "severity": "error|warning", "file": "...",
//!      "line": 1, "column": 1, "message": "...",
//!      "note": "call chain (present when taint-gated)",
//!      "suppressed": false}
//!   ],
//!   "counts": {"total": 0, "suppressed": 0, "active": 0}
//! }
//! ```

use crate::lints::Finding;

/// Aggregate counts over a finding set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// All findings, suppressed or not.
    pub total: usize,
    /// Findings waived by `audit:allow`.
    pub suppressed: usize,
    /// Findings that fail the audit.
    pub active: usize,
}

/// Count findings.
pub fn counts(findings: &[Finding]) -> Counts {
    let suppressed = findings.iter().filter(|f| f.suppressed).count();
    Counts {
        total: findings.len(),
        suppressed,
        active: findings.len() - suppressed,
    }
}

/// Sort findings into report order: file, then line, column, lint id.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.lint).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.lint,
        ))
    });
}

/// Render findings the way rustc renders diagnostics. Taint-gated
/// findings cite their call chain in a `= note:` line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let sup = if f.suppressed { " (suppressed)" } else { "" };
        out.push_str(&format!(
            "{}[{}]{}: {}\n",
            f.severity.name(),
            f.lint,
            sup,
            f.message
        ));
        let gutter = digits(f.line);
        out.push_str(&format!(
            "{:>gutter$}--> {}:{}:{}\n",
            "", f.file, f.line, f.column
        ));
        out.push_str(&format!("{:>gutter$} |\n", ""));
        out.push_str(&format!("{} | {}\n", f.line, f.snippet));
        out.push_str(&format!(
            "{:>gutter$} | {:>col$}\n",
            "",
            "^",
            col = f.column
        ));
        if let Some(note) = &f.note {
            out.push_str(&format!("{:>gutter$} = note: {}\n", "", note));
        }
        out.push('\n');
    }
    let c = counts(findings);
    out.push_str(&format!(
        "audit: {} finding(s), {} suppressed, {} active\n",
        c.total, c.suppressed, c.active
    ));
    out
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d + 1 // one space of padding, matching rustc's gutter
}

/// Render the versioned JSON document (schema above).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"tn-audit/v1\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let note = match &f.note {
            Some(n) => format!(",\"note\":{}", json_str(n)),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"lint\":{},\"severity\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{}{},\"suppressed\":{}}}",
            json_str(f.lint),
            json_str(f.severity.name()),
            json_str(&f.file),
            f.line,
            f.column,
            json_str(&f.message),
            note,
            f.suppressed
        ));
    }
    let c = counts(findings);
    out.push_str(&format!(
        "],\"counts\":{{\"total\":{},\"suppressed\":{},\"active\":{}}}}}",
        c.total, c.suppressed, c.active
    ));
    out.push('\n');
    out
}

/// Escape a string as a JSON literal (hand-rolled; no serde offline).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Finding, Severity};

    fn finding(suppressed: bool) -> Finding {
        Finding {
            lint: "det-wallclock",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            column: 13,
            message: "`Instant` reads the wall clock".into(),
            snippet: "    let t = Instant::now();".into(),
            note: None,
            suppressed,
        }
    }

    #[test]
    fn text_report_shape() {
        let out = render_text(&[finding(false)]);
        assert!(out.contains("error[det-wallclock]:"), "{out}");
        assert!(out.contains("--> crates/x/src/lib.rs:7:13"), "{out}");
        assert!(out.contains("7 |     let t = Instant::now();"), "{out}");
        assert!(
            out.contains("1 finding(s), 0 suppressed, 1 active"),
            "{out}"
        );
    }

    #[test]
    fn text_report_cites_the_chain() {
        let mut f = finding(false);
        f.note = Some("feeds the simulator schedule: build -> Simulator::inject_frame".into());
        let out = render_text(&[f]);
        assert!(
            out.contains("= note: feeds the simulator schedule: build -> Simulator::inject_frame"),
            "{out}"
        );
    }

    #[test]
    fn json_is_stable() {
        let out = render_json(&[finding(true)]);
        assert_eq!(
            out,
            "{\"schema\":\"tn-audit/v1\",\"findings\":[{\"lint\":\"det-wallclock\",\"severity\":\"error\",\
             \"file\":\"crates/x/src/lib.rs\",\"line\":7,\"column\":13,\
             \"message\":\"`Instant` reads the wall clock\",\"suppressed\":true}],\
             \"counts\":{\"total\":1,\"suppressed\":1,\"active\":0}}\n"
        );
    }

    #[test]
    fn json_includes_note_when_present() {
        let mut f = finding(false);
        f.note = Some("hot root Node::on_frame".into());
        let out = render_json(&[f]);
        assert!(out.starts_with("{\"schema\":\"tn-audit/v1\","), "{out}");
        assert!(
            out.contains("\"note\":\"hot root Node::on_frame\",\"suppressed\":false"),
            "{out}"
        );
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn sort_orders_by_location() {
        let mut v = vec![finding(false), finding(false)];
        v[0].line = 9;
        sort(&mut v);
        assert_eq!(v[0].line, 7);
    }
}
