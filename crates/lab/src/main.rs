//! `tn-lab` — expand, run, and summarize declarative scenario sweeps.
//!
//! ```sh
//! tn-lab expand  (--preset smoke | --spec FILE)
//! tn-lab run     (--preset smoke | --spec FILE) [--threads N] [--json] [--out FILE]
//! tn-lab summarize FILE
//! ```
//!
//! `run` prints the human cell table; `--json` additionally prints the
//! `tn-lab/v1` document and `--out FILE` writes it to disk. The document
//! is a pure function of the spec — `--threads` changes wall-clock time
//! only, never a byte of output.

use tn_lab::{LabReport, ScenarioExecutor, SweepSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("expand") => cmd_expand(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("summarize") => cmd_summarize(&args[1..]),
        _ => {
            eprintln!(
                "usage: tn-lab expand (--preset smoke | --spec FILE)\n\
                 \x20      tn-lab run (--preset smoke | --spec FILE) [--threads N] [--json] [--out FILE]\n\
                 \x20      tn-lab summarize FILE"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Resolve `--preset NAME` / `--spec FILE` into a spec.
fn load_spec(args: &[String]) -> Result<SweepSpec, String> {
    if let Some(name) = flag_value(args, "--preset") {
        return match name.as_str() {
            "smoke" => Ok(SweepSpec::smoke()),
            other => Err(format!("unknown preset `{other}` (available: smoke)")),
        };
    }
    if let Some(path) = flag_value(args, "--spec") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return SweepSpec::parse(&src).map_err(|e| format!("{path}: {e}"));
    }
    Err("need --preset NAME or --spec FILE".into())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_expand(args: &[String]) -> i32 {
    match load_spec(args).and_then(|spec| spec.expand().map(|m| (spec, m))) {
        Ok((spec, manifest)) => {
            println!(
                "sweep `{}` (base {}): {} runs",
                spec.name,
                spec.base,
                manifest.len()
            );
            for plan in &manifest {
                let params: Vec<String> = plan
                    .params
                    .iter()
                    .map(|(p, v)| format!("{p}={v}"))
                    .collect();
                println!(
                    "  [{:>4}] {} seed={} {}",
                    plan.index,
                    plan.design,
                    plan.seed,
                    params.join(" ")
                );
            }
            0
        }
        Err(e) => {
            eprintln!("tn-lab expand: {e}");
            1
        }
    }
}

fn cmd_run(args: &[String]) -> i32 {
    let threads = match flag_value(args, "--threads").map(|t| t.parse::<usize>()) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("tn-lab run: --threads needs a positive integer");
            return 1;
        }
    };
    let result = load_spec(args).and_then(|spec| {
        let manifest = spec.expand()?;
        let outcomes = tn_lab::run_batch(&manifest, threads, &ScenarioExecutor::new())?;
        Ok(LabReport::build(
            &spec.name, &spec.base, &manifest, &outcomes,
        ))
    });
    match result {
        Ok(report) => {
            print!("{}", report.table());
            let json = report.to_json();
            if let Some(path) = flag_value(args, "--out") {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("tn-lab run: cannot write {path}: {e}");
                    return 1;
                }
                println!("wrote {path}");
            }
            if args.iter().any(|a| a == "--json") {
                print!("{json}");
            }
            0
        }
        Err(e) => {
            eprintln!("tn-lab run: {e}");
            1
        }
    }
}

fn cmd_summarize(args: &[String]) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("tn-lab summarize: need a tn-lab/v1 report file");
        return 1;
    };
    let result = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))
        .and_then(|src| LabReport::parse(&src).map_err(|e| format!("{path}: {e}")));
    match result {
        Ok(report) => {
            print!("{}", report.table());
            0
        }
        Err(e) => {
            eprintln!("tn-lab summarize: {e}");
            1
        }
    }
}
