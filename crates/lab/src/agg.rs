//! Cross-run aggregation and the versioned `tn-lab/v1` report.
//!
//! Runs that differ only in seed are replicates of one sweep *cell*.
//! The aggregator pools their raw latency samples (exact percentiles
//! over the pooled distribution, not averages of per-run percentiles)
//! and reports the cross-seed spread of the per-run medians. The report
//! deliberately contains *no* wall-clock times and *no* thread count:
//! the document must be a pure function of the spec, or the
//! parallel-vs-serial byte-identity the divergence registry pins would
//! be meaningless.

use tn_stats::Summary;

use crate::json::{self, num_f64, num_u64, Json};
use crate::runner::RunOutcome;
use crate::spec::RunPlan;

/// Schema marker for lab reports.
pub const REPORT_SCHEMA: &str = "tn-lab/v1";

/// One executed run, as recorded in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Manifest index.
    pub index: usize,
    /// Design alias.
    pub design: String,
    /// Replicate seed.
    pub seed: u64,
    /// Resolved parameters (overrides + axes).
    pub params: Vec<(String, f64)>,
    /// Trace digest of the run.
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
    /// Latency sample count.
    pub samples: u64,
    /// Median of this run's own samples (ps; 0 when sampleless).
    pub p50_ps: u64,
    /// Executor-defined named scalars.
    pub metrics: Vec<(String, f64)>,
}

/// Pooled statistics for one sweep cell (same design + params, all
/// seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct CellStat {
    /// Design alias.
    pub design: String,
    /// Cell parameters (seed excluded by construction).
    pub params: Vec<(String, f64)>,
    /// Manifest indices of the member runs, ascending.
    pub runs: Vec<usize>,
    /// Seeds of the member runs, in manifest order.
    pub seeds: Vec<u64>,
    /// Pooled sample count.
    pub count: u64,
    /// Pooled minimum (ps).
    pub min_ps: u64,
    /// Pooled median (ps).
    pub p50_ps: u64,
    /// Pooled 99th percentile (ps).
    pub p99_ps: u64,
    /// Pooled 99.9th percentile (ps); `None` below 1,000 samples.
    pub p999_ps: Option<u64>,
    /// Pooled maximum (ps).
    pub max_ps: u64,
    /// Max − min of the per-seed medians (ps): how much the cell moves
    /// across seeds.
    pub seed_spread_ps: u64,
}

/// The full outcome of a sweep: per-run records plus per-cell pooled
/// statistics, serializable as `tn-lab/v1`.
#[derive(Debug, Clone, PartialEq)]
pub struct LabReport {
    /// Spec name.
    pub spec: String,
    /// Base preset.
    pub base: String,
    /// One record per manifest entry, in manifest order.
    pub runs: Vec<RunRecord>,
    /// One entry per cell, in order of first appearance in the manifest.
    pub cells: Vec<CellStat>,
}

impl LabReport {
    /// Aggregate `outcomes` (parallel `manifest`) into a report.
    pub fn build(
        spec_name: &str,
        base: &str,
        manifest: &[RunPlan],
        outcomes: &[RunOutcome],
    ) -> LabReport {
        assert_eq!(
            manifest.len(),
            outcomes.len(),
            "one outcome per manifest entry"
        );
        let runs: Vec<RunRecord> = manifest
            .iter()
            .zip(outcomes)
            .map(|(plan, out)| {
                let mut s = Summary::new();
                s.extend(out.samples_ps.iter().copied());
                RunRecord {
                    index: plan.index,
                    design: plan.design.clone(),
                    seed: plan.seed,
                    params: plan.params.clone(),
                    digest: out.digest,
                    events: out.events,
                    samples: s.count() as u64,
                    p50_ps: s.p50(),
                    metrics: out.metrics.clone(),
                }
            })
            .collect();

        // Group replicates by cell key, preserving first-appearance
        // order. Cells are few; a linear scan avoids any map type.
        let mut cells: Vec<CellStat> = Vec::new();
        for plan in manifest {
            let key = plan.cell_key();
            if !cells
                .iter()
                .any(|c| (c.design.as_str(), c.params.as_slice()) == key)
            {
                let members: Vec<(&RunPlan, &RunOutcome)> = manifest
                    .iter()
                    .zip(outcomes)
                    .filter(|(p, _)| p.cell_key() == key)
                    .collect();
                let mut pooled = Summary::new();
                let mut medians = Summary::new();
                for (_, o) in &members {
                    pooled.extend(o.samples_ps.iter().copied());
                    let mut per_run = Summary::new();
                    per_run.extend(o.samples_ps.iter().copied());
                    medians.record(per_run.p50());
                }
                cells.push(CellStat {
                    design: plan.design.clone(),
                    params: plan.params.clone(),
                    runs: members.iter().map(|(p, _)| p.index).collect(),
                    seeds: members.iter().map(|(p, _)| p.seed).collect(),
                    count: pooled.count() as u64,
                    min_ps: pooled.min(),
                    p50_ps: pooled.p50(),
                    p99_ps: pooled.p99(),
                    p999_ps: pooled.p999(),
                    max_ps: pooled.max(),
                    seed_spread_ps: medians.spread(),
                });
            }
        }

        LabReport {
            spec: spec_name.to_string(),
            base: base.to_string(),
            runs,
            cells,
        }
    }

    /// Serialize as `tn-lab/v1` (compact, newline-terminated). Contains
    /// no thread count and no wall-clock data by design.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("index".into(), num_u64(r.index as u64)),
                    ("design".into(), Json::Str(r.design.clone())),
                    ("seed".into(), num_u64(r.seed)),
                    ("params".into(), params_json(&r.params)),
                    ("digest".into(), Json::Str(format!("{:016x}", r.digest))),
                    ("events".into(), num_u64(r.events)),
                    ("samples".into(), num_u64(r.samples)),
                    ("p50_ps".into(), num_u64(r.p50_ps)),
                    (
                        "metrics".into(),
                        Json::Arr(
                            r.metrics
                                .iter()
                                .map(|(name, value)| {
                                    Json::Obj(vec![
                                        ("name".into(), Json::Str(name.clone())),
                                        ("value".into(), num_f64(*value)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("design".into(), Json::Str(c.design.clone())),
                    ("params".into(), params_json(&c.params)),
                    (
                        "runs".into(),
                        Json::Arr(c.runs.iter().map(|&i| num_u64(i as u64)).collect()),
                    ),
                    (
                        "seeds".into(),
                        Json::Arr(c.seeds.iter().map(|&s| num_u64(s)).collect()),
                    ),
                    ("count".into(), num_u64(c.count)),
                    ("min_ps".into(), num_u64(c.min_ps)),
                    ("p50_ps".into(), num_u64(c.p50_ps)),
                    ("p99_ps".into(), num_u64(c.p99_ps)),
                    ("p999_ps".into(), c.p999_ps.map_or(Json::Null, num_u64)),
                    ("max_ps".into(), num_u64(c.max_ps)),
                    ("seed_spread_ps".into(), num_u64(c.seed_spread_ps)),
                ])
            })
            .collect();
        let mut out = Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("spec".into(), Json::Str(self.spec.clone())),
            ("base".into(), Json::Str(self.base.clone())),
            ("runs".into(), Json::Arr(runs)),
            ("cells".into(), Json::Arr(cells)),
        ])
        .emit();
        out.push('\n');
        out
    }

    /// Parse a `tn-lab/v1` document.
    pub fn parse(src: &str) -> Result<LabReport, String> {
        let doc = json::parse(src.trim_end())?;
        if doc.get("schema").and_then(Json::as_str) != Some(REPORT_SCHEMA) {
            return Err(format!("not a {REPORT_SCHEMA} document"));
        }
        let spec = str_field(&doc, "spec")?;
        let base = str_field(&doc, "base")?;
        let runs = arr_field(&doc, "runs")?
            .iter()
            .map(parse_run)
            .collect::<Result<Vec<_>, _>>()?;
        let cells = arr_field(&doc, "cells")?
            .iter()
            .map(parse_cell)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LabReport {
            spec,
            base,
            runs,
            cells,
        })
    }

    /// Human summary: one row per cell.
    pub fn table(&self) -> String {
        let mut out = format!(
            "sweep `{}` (base {}): {} runs, {} cells\n{:<56} {:>6} {:>12} {:>12} {:>12} {:>10}\n",
            self.spec,
            self.base,
            self.runs.len(),
            self.cells.len(),
            "cell",
            "count",
            "p50",
            "p99",
            "max",
            "spread",
        );
        for c in &self.cells {
            let mut label = c.design.clone();
            for (p, v) in &c.params {
                label.push_str(&format!(" {p}={v}"));
            }
            if label.len() > 56 {
                label.truncate(53);
                label.push_str("...");
            }
            out.push_str(&format!(
                "{label:<56} {:>6} {:>12} {:>12} {:>12} {:>10}\n",
                c.count,
                format!("{:.2}us", c.p50_ps as f64 / 1e6),
                format!("{:.2}us", c.p99_ps as f64 / 1e6),
                format!("{:.2}us", c.max_ps as f64 / 1e6),
                format!("{:.2}us", c.seed_spread_ps as f64 / 1e6),
            ));
        }
        out
    }
}

fn params_json(params: &[(String, f64)]) -> Json {
    Json::Arr(
        params
            .iter()
            .map(|(p, v)| {
                Json::Obj(vec![
                    ("param".into(), Json::Str(p.clone())),
                    ("value".into(), num_f64(*v)),
                ])
            })
            .collect(),
    )
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or(format!("missing string field `{key}`"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or(format!("missing array field `{key}`"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("missing u64 field `{key}`"))
}

fn parse_params(v: &Json) -> Result<Vec<(String, f64)>, String> {
    arr_field(v, "params")?
        .iter()
        .map(|m| {
            let p = str_field(m, "param")?;
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or(format!("param `{p}` missing numeric value"))?;
            Ok((p, value))
        })
        .collect()
}

fn parse_run(v: &Json) -> Result<RunRecord, String> {
    let digest_hex = str_field(v, "digest")?;
    let digest =
        u64::from_str_radix(&digest_hex, 16).map_err(|_| format!("bad digest `{digest_hex}`"))?;
    Ok(RunRecord {
        index: u64_field(v, "index")? as usize,
        design: str_field(v, "design")?,
        seed: u64_field(v, "seed")?,
        params: parse_params(v)?,
        digest,
        events: u64_field(v, "events")?,
        samples: u64_field(v, "samples")?,
        p50_ps: u64_field(v, "p50_ps")?,
        metrics: arr_field(v, "metrics")?
            .iter()
            .map(|m| {
                let name = str_field(m, "name")?;
                let value = m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or(format!("metric `{name}` missing numeric value"))?;
                Ok((name, value))
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

fn parse_cell(v: &Json) -> Result<CellStat, String> {
    let p999 = match v.get("p999_ps") {
        Some(Json::Null) | None => None,
        Some(n) => Some(n.as_u64().ok_or("bad p999_ps")?),
    };
    Ok(CellStat {
        design: str_field(v, "design")?,
        params: parse_params(v)?,
        runs: arr_field(v, "runs")?
            .iter()
            .map(|i| i.as_u64().map(|i| i as usize).ok_or("bad run index"))
            .collect::<Result<Vec<_>, _>>()?,
        seeds: arr_field(v, "seeds")?
            .iter()
            .map(|s| s.as_u64().ok_or("bad seed"))
            .collect::<Result<Vec<_>, _>>()?,
        count: u64_field(v, "count")?,
        min_ps: u64_field(v, "min_ps")?,
        p50_ps: u64_field(v, "p50_ps")?,
        p99_ps: u64_field(v, "p99_ps")?,
        p999_ps: p999,
        max_ps: u64_field(v, "max_ps")?,
        seed_spread_ps: u64_field(v, "seed_spread_ps")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn fake_outcome(i: usize) -> RunOutcome {
        RunOutcome {
            digest: 0x1000 + i as u64,
            events: 10 * (i as u64 + 1),
            samples_ps: (0..1_200u64).map(|k| (i as u64 + 1) * 1_000 + k).collect(),
            metrics: vec![("orders_sent".into(), i as f64)],
        }
    }

    fn two_seed_report() -> LabReport {
        let mut spec = SweepSpec::smoke();
        spec.seeds = vec![42, 43];
        let manifest = spec.expand().unwrap();
        let outcomes: Vec<RunOutcome> = (0..manifest.len()).map(fake_outcome).collect();
        LabReport::build(&spec.name, &spec.base, &manifest, &outcomes)
    }

    #[test]
    fn cells_pool_across_seeds() {
        let report = two_seed_report();
        assert_eq!(report.runs.len(), 36);
        assert_eq!(report.cells.len(), 18, "two seeds collapse into cells");
        let cell = &report.cells[0];
        assert_eq!(cell.runs, vec![0, 1]);
        assert_eq!(cell.seeds, vec![42, 43]);
        assert_eq!(cell.count, 2_400, "pooled across both replicates");
        // Per-run medians are 1000+599 and 2000+599 → spread 1000.
        assert_eq!(cell.seed_spread_ps, 1_000);
        assert!(cell.p999_ps.is_some(), "pooled tail has >= 1000 samples");
        assert!(cell.min_ps < cell.p50_ps && cell.p50_ps < cell.max_ps);
        // The run record carries the run's own median, not the pooled one.
        assert_eq!(report.runs[0].p50_ps, 1_599);
    }

    #[test]
    fn report_round_trips_byte_exactly() {
        let report = two_seed_report();
        let j = report.to_json();
        assert!(j.starts_with("{\"schema\":\"tn-lab/v1\""), "{j}");
        assert!(j.ends_with('\n'));
        assert!(!j.contains("thread"), "report must not encode thread count");
        let back = LabReport::parse(&j).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), j, "emit→parse→emit must be byte-stable");
    }

    #[test]
    fn p999_null_round_trips() {
        let spec = SweepSpec::smoke();
        let manifest = spec.expand().unwrap();
        let outcomes: Vec<RunOutcome> = manifest
            .iter()
            .map(|_| RunOutcome {
                digest: 1,
                events: 1,
                samples_ps: vec![5; 10], // too few for p999
                metrics: vec![],
            })
            .collect();
        let report = LabReport::build("smoke", "small", &manifest, &outcomes);
        assert!(report.cells[0].p999_ps.is_none());
        let back = LabReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        assert!(LabReport::parse("{\"schema\":\"tn-report/v1\"}").is_err());
    }

    #[test]
    fn table_lists_every_cell() {
        let report = two_seed_report();
        let t = report.table();
        assert!(t.contains("18 cells"), "{t}");
        assert!(t.lines().count() >= 20, "{t}");
        assert!(t.contains("traditional duration_us=8000"), "{t}");
    }
}
