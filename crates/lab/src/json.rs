//! A minimal recursive JSON tree: just enough to serialize sweep specs
//! and `tn-lab/v1` reports and parse them back, byte-exactly.
//!
//! The workspace has no serde (vendored deps only), and `tn-obs`'s trace
//! reader is deliberately flat (one JSONL object per line). Sweep specs
//! nest (axes inside arrays inside objects), so the lab carries its own
//! tiny tree parser. Numbers are kept as their raw source tokens: what
//! was parsed is what re-emits, which is what makes emit→parse→emit a
//! byte-identity and lets the divergence registry hash lab documents.

/// A parsed JSON value. Object members keep their source order (no map,
/// so no iteration-order hazard and re-emission is stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (round-trip exact).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Number as `f64`, if this is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Number as `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize back to compact JSON (no whitespace).
    pub fn emit(&self) -> String {
        // audit:allow(hotpath-alloc): report serialization runs once at end of run; the flagged chain goes through an unrelated method that shares the name `emit`
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // audit:allow(hotpath-alloc): escape path for control characters in report strings; serialization is end-of-run only
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A number token for an `f64`. Rust's `Display` prints the shortest
/// representation that round-trips, so `Json::Num(num_f64(v)).as_f64()`
/// returns exactly `v` — the property the spec/report round-trip relies
/// on. Panics on non-finite input (specs are validated before emission).
pub fn num_f64(v: f64) -> Json {
    assert!(v.is_finite(), "JSON cannot carry non-finite numbers");
    Json::Num(format!("{v}"))
}

/// A number token for a `u64`.
pub fn num_u64(v: u64) -> Json {
    Json::Num(format!("{v}"))
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate the token by parsing it; the raw text is what we keep.
    tok.parse::<f64>()
        .map_err(|_| format!("bad number `{tok}` at byte {start}"))?;
    Ok(Json::Num(tok.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\"y", "d": null}, "e": true} "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn emit_parse_is_byte_identity() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\\b\n".into())),
            ("n".into(), num_f64(0.1)),
            ("i".into(), num_u64(u64::MAX)),
            ("l".into(), Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        let emitted = v.emit();
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.emit(), emitted);
    }

    #[test]
    fn f64_tokens_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.0, 200.0, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(num_f64(v).as_f64(), Some(v), "{v}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.emit(), r#"{"z":1,"a":2}"#);
    }
}
