//! The deterministic parallel batch runner.
//!
//! [`run_batch`] executes a run manifest on a `std::thread` worker pool.
//! Workers claim manifest indices from a shared atomic counter — whatever
//! interleaving the OS produces — but every result lands in the slot of
//! its manifest index, and the merged vector is returned in manifest
//! order. Nothing downstream can observe the thread count: each run is an
//! isolated single-threaded simulation (own kernel, own PRNG, own arena),
//! so `run_batch(m, 1, e)` and `run_batch(m, N, e)` are equal element for
//! element, and the serialized report is byte-identical. `tn-audit
//! divergence` pins exactly that (`lab-parallel-vs-serial`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tn_core::{
    CloudDesign, FpgaHybrid, LayerOneSwitches, ScenarioConfig, TradingNetworkDesign,
    TraditionalSwitches,
};
use tn_fault::FaultSpec;
use tn_sim::{ObsConfig, SchedulerKind, SimTime};

use crate::spec::RunPlan;

/// What one executed run distills to, independent of how it was
/// scheduled onto threads.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Kernel trace digest (or executor-defined content digest).
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
    /// Latency samples in picoseconds, pooled across seeds for the cell
    /// statistics (wire-to-wire reaction for scenario runs).
    pub samples_ps: Vec<u64>,
    /// Free-form named scalars, emitted per run in the report.
    pub metrics: Vec<(String, f64)>,
}

/// Executes one planned run. Implementations must be [`Sync`]: the
/// worker pool shares one executor across threads, so any state it
/// carries must be read-only during the batch.
pub trait RunExecutor: Sync {
    /// Execute `plan` and return its outcome.
    fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String>;
}

/// The default executor: builds a [`ScenarioConfig`] from the plan's
/// base preset + parameters and runs it over the named design.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioExecutor {
    /// Event scheduler for every run (digest-neutral; defaults to the
    /// reference binary heap).
    pub scheduler: SchedulerKind,
}

impl ScenarioExecutor {
    /// Executor on the reference scheduler.
    pub fn new() -> ScenarioExecutor {
        ScenarioExecutor::default()
    }
}

impl RunExecutor for ScenarioExecutor {
    fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String> {
        let sc = build_config(plan, self.scheduler)?;
        let design = resolve_design(&plan.design)?;
        let report = design.run(&sc);
        let metrics = vec![
            ("feed_messages".into(), report.feed_messages as f64),
            ("orders_sent".into(), report.orders_sent as f64),
            ("frames_dropped".into(), report.frames_dropped as f64),
            ("network_share".into(), report.network_share),
        ];
        Ok(RunOutcome {
            digest: report.trace_digest,
            events: report.events_recorded,
            samples_ps: report.reaction_samples,
            metrics,
        })
    }
}

/// Resolve a design alias to a design instance.
pub fn resolve_design(alias: &str) -> Result<Box<dyn TradingNetworkDesign>, String> {
    match alias {
        "traditional" => Ok(Box::new(TraditionalSwitches::default())),
        "cloud" => Ok(Box::new(CloudDesign::default())),
        "l1" => Ok(Box::new(LayerOneSwitches::default())),
        "fpga" => Ok(Box::new(FpgaHybrid::default())),
        other => Err(format!(
            "unknown design `{other}` (expected traditional|cloud|l1|fpga)"
        )),
    }
}

/// Build the scenario for one plan: the base preset seeded with the
/// plan's seed, then every parameter applied in order, then validated
/// through the `ScenarioConfig` builder.
pub fn build_config(plan: &RunPlan, scheduler: SchedulerKind) -> Result<ScenarioConfig, String> {
    let mut sc = match plan.base.as_str() {
        "small" => ScenarioConfig::small(plan.seed),
        "paper" => ScenarioConfig::paper_scale(plan.seed),
        other => return Err(format!("unknown base preset `{other}` (small|paper)")),
    };
    sc.scheduler = scheduler;
    for (param, value) in &plan.params {
        apply_param(&mut sc, plan.seed, param, *value)?;
    }
    sc.to_builder().build().map_err(|e| e.to_string())
}

fn apply_param(sc: &mut ScenarioConfig, seed: u64, param: &str, value: f64) -> Result<(), String> {
    let count = || as_count(param, value);
    match param {
        "symbols" => sc.symbols = count()?,
        "normalizers" => sc.normalizers = count()?,
        "strategies" => sc.strategies = count()?,
        "gateways" => sc.gateways = count()?,
        "feed_units" => sc.feed_units = count()? as u16,
        "internal_partitions" => sc.internal_partitions = count()? as u16,
        "subs_per_strategy" => sc.subs_per_strategy = count()?,
        "background_rate" => sc.background_rate = value,
        "duration_us" => sc.duration = SimTime::from_us(count()? as u64),
        "warmup_us" => sc.warmup = SimTime::from_us(count()? as u64),
        "tick_interval_us" => sc.tick_interval = SimTime::from_us(count()? as u64),
        "normalizer_service_ns" => sc.normalizer_service = SimTime::from_ns(count()? as u64),
        "decision_service_ns" => sc.decision_service = SimTime::from_ns(count()? as u64),
        "gateway_service_ns" => sc.gateway_service = SimTime::from_ns(count()? as u64),
        "exchange_service_ns" => sc.exchange_service = SimTime::from_ns(count()? as u64),
        "momentum_threshold" => sc.momentum_threshold = count()? as i64,
        // Loss axis: p = 0 means *no* fault spec, keeping zero-loss cells
        // on the clean-path golden digests.
        "iid_loss" => sc.feed_fault = FaultSpec::iid(seed, value),
        // Telemetry axis: 0 = off, anything else = full.
        "obs_full" => sc.obs = ObsConfig::from_full_flag(value != 0.0),
        other => return Err(format!("unknown scenario parameter `{other}`")),
    }
    Ok(())
}

fn as_count(param: &str, value: f64) -> Result<usize, String> {
    if !value.is_finite() || value < 0.0 || value.fract() != 0.0 || value > u64::MAX as f64 {
        return Err(format!(
            "parameter `{param}` needs a non-negative integer, got {value}"
        ));
    }
    Ok(value as usize)
}

/// Execute `manifest` with `threads` workers and return outcomes in
/// manifest order. `threads == 1` (or a single-run manifest) degrades to
/// a plain serial loop; any thread count produces identical output.
pub fn run_batch(
    manifest: &[RunPlan],
    threads: usize,
    exec: &dyn RunExecutor,
) -> Result<Vec<RunOutcome>, String> {
    let threads = threads.max(1).min(manifest.len().max(1));
    if threads <= 1 {
        return manifest.iter().map(|p| exec.execute(p)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<RunOutcome, String>>>> =
        manifest.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= manifest.len() {
                    break;
                }
                let result = exec.execute(&manifest[i]);
                *slots[i].lock().expect("runner slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("runner slot poisoned")
                .expect("every manifest index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    /// A sim-free executor whose outcome is a pure function of the plan,
    /// with a little busy-work so threads actually interleave.
    struct StubExecutor;

    impl RunExecutor for StubExecutor {
        fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String> {
            let mut digest = tn_sim::EMPTY_DIGEST;
            digest = tn_sim::fnv1a_fold(digest, plan.design.as_bytes());
            digest = tn_sim::fnv1a_fold(digest, &plan.seed.to_le_bytes());
            for (p, v) in &plan.params {
                digest = tn_sim::fnv1a_fold(digest, p.as_bytes());
                digest = tn_sim::fnv1a_fold(digest, &v.to_bits().to_le_bytes());
            }
            let spin = (digest % 2_000) as usize;
            let samples: Vec<u64> = (0..spin).map(|i| digest.wrapping_add(i as u64)).collect();
            Ok(RunOutcome {
                digest,
                events: plan.index as u64 + 1,
                samples_ps: samples,
                metrics: vec![("spin".into(), spin as f64)],
            })
        }
    }

    #[test]
    fn parallel_output_equals_serial_output() {
        let manifest = SweepSpec::smoke().expand().unwrap();
        let serial = run_batch(&manifest, 1, &StubExecutor).unwrap();
        for threads in [2, 4, 7, 32] {
            let parallel = run_batch(&manifest, threads, &StubExecutor).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn executor_errors_surface() {
        struct Failing;
        impl RunExecutor for Failing {
            fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String> {
                Err(format!("boom at {}", plan.index))
            }
        }
        let manifest = SweepSpec::smoke().expand().unwrap();
        assert!(run_batch(&manifest, 1, &Failing).is_err());
        assert!(run_batch(&manifest, 4, &Failing).is_err());
    }

    #[test]
    fn build_config_applies_params_and_validates() {
        let plan = RunPlan {
            index: 0,
            base: "small".into(),
            design: "traditional".into(),
            seed: 7,
            params: vec![
                ("strategies".into(), 9.0),
                ("duration_us".into(), 8_000.0),
                ("iid_loss".into(), 0.01),
                ("obs_full".into(), 1.0),
            ],
        };
        let sc = build_config(&plan, SchedulerKind::CalendarQueue).unwrap();
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.strategies, 9);
        assert_eq!(sc.duration, SimTime::from_us(8_000));
        assert!(sc.feed_fault.is_some());
        assert_eq!(sc.obs, ObsConfig::full());
        assert_eq!(sc.scheduler, SchedulerKind::CalendarQueue);

        // Zero loss leaves the fault slot empty.
        let mut clean = plan.clone();
        clean.params = vec![("iid_loss".into(), 0.0)];
        assert!(build_config(&clean, SchedulerKind::BinaryHeap)
            .unwrap()
            .feed_fault
            .is_none());

        // Unknown params and non-integer counts are rejected.
        let mut bad = plan.clone();
        bad.params = vec![("flux_capacitance".into(), 1.21)];
        assert!(build_config(&bad, SchedulerKind::BinaryHeap).is_err());
        bad.params = vec![("strategies".into(), 2.5)];
        assert!(build_config(&bad, SchedulerKind::BinaryHeap).is_err());

        // Builder validation still applies (zero strategies).
        bad.params = vec![("strategies".into(), 0.0)];
        assert!(build_config(&bad, SchedulerKind::BinaryHeap).is_err());
    }

    #[test]
    fn unknown_design_and_base_are_rejected() {
        assert!(resolve_design("traditional").is_ok());
        assert!(resolve_design("abacus").is_err());
        let plan = RunPlan {
            index: 0,
            base: "medium".into(),
            design: "traditional".into(),
            seed: 1,
            params: vec![],
        };
        assert!(build_config(&plan, SchedulerKind::BinaryHeap).is_err());
    }
}
