//! # tn-lab — declarative scenario sweeps with a deterministic parallel
//! # batch runner
//!
//! The paper's conclusions are all sweeps — demand vs. mroute capacity
//! (§3), consumer counts for filter placement (§3), design-by-design
//! reaction distributions (§4) — and every experiment binary used to
//! hand-roll its own loop over one config at a time on one core. This
//! crate is the fan-out layer:
//!
//! * [`SweepSpec`] — a serializable (`tn-lab-spec/v1`) template over
//!   [`tn_core::ScenarioConfig`]: a base preset, design list, fixed
//!   overrides, parameter axes (list / range / log-range), and seed
//!   replication, expanded deterministically into an ordered
//!   [`RunPlan`] manifest.
//! * [`run_batch`] — a `std::thread` worker pool that executes the
//!   manifest concurrently and merges outcomes in manifest order.
//!   N-thread and 1-thread executions are byte-identical, and every
//!   per-run trace digest equals its standalone single-run counterpart
//!   (`tn-audit divergence` pins both).
//! * [`LabReport`] — cross-run aggregation via `tn-stats`: per-cell
//!   pooled p50/p99/p999, min/max, and cross-seed spread, serialized as
//!   `tn-lab/v1` plus a human summary table.
//!
//! The `tn-lab` binary exposes `expand`, `run`, and `summarize`;
//! `tn-bench` experiments reuse the runner through the [`RunExecutor`]
//! trait (see `exp_mcast_exhaustion` for a custom executor).

pub mod agg;
pub mod json;
pub mod runner;
pub mod spec;

pub use agg::{CellStat, LabReport, RunRecord, REPORT_SCHEMA};
pub use runner::{
    build_config, resolve_design, run_batch, RunExecutor, RunOutcome, ScenarioExecutor,
};
pub use spec::{Axis, AxisValues, RunPlan, SweepSpec, SPEC_SCHEMA};

#[cfg(test)]
mod tests {
    use super::*;

    /// End to end on one real (single-cell) scenario: spec → expand →
    /// run → aggregate, with the cell pinned to the golden quickstart
    /// digest. The full grid versions live in the tn-audit divergence
    /// registry; this keeps one fast in-crate proof.
    #[test]
    fn single_cell_sweep_reproduces_the_quickstart_digest() {
        let mut spec = SweepSpec::smoke();
        spec.axes.clear(); // overrides only: the trimmed quickstart cell
        let manifest = spec.expand().unwrap();
        assert_eq!(manifest.len(), 1);
        let outcomes = run_batch(&manifest, 1, &ScenarioExecutor::new()).unwrap();
        assert_eq!(outcomes[0].digest, 0xff1dbcd7cf7e729e);
        assert_eq!(outcomes[0].events, 19_924);
        let report = LabReport::build(&spec.name, &spec.base, &manifest, &outcomes);
        assert_eq!(report.runs[0].digest, 0xff1dbcd7cf7e729e);
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].count > 0, "reaction samples pooled");
        let back = LabReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
