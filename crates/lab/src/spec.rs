//! Declarative sweep specs and their deterministic expansion.
//!
//! A [`SweepSpec`] names a base scenario preset, a design list, fixed
//! parameter overrides, parameter axes (list / arithmetic range /
//! log-spaced range), and a seed list. [`SweepSpec::expand`] turns it
//! into an ordered run manifest: designs outermost, then the axes in
//! declaration order (first axis slowest), seeds innermost. Expansion is
//! a pure function of the spec — same spec, same manifest, every time —
//! which is what lets the parallel runner merge results by manifest
//! index and still be byte-identical to a serial run.

use crate::json::{self, num_f64, num_u64, Json};

/// Schema marker for serialized specs.
pub const SPEC_SCHEMA: &str = "tn-lab-spec/v1";

/// How an axis enumerates its values.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValues {
    /// Explicit values, used verbatim.
    List(Vec<f64>),
    /// `start, start+step, …` while `<= stop` (arithmetic grid).
    Range {
        /// First value.
        start: f64,
        /// Inclusive upper bound.
        stop: f64,
        /// Positive increment.
        step: f64,
    },
    /// `points` log-spaced values from `start` to `stop` inclusive.
    LogRange {
        /// First value (must be positive).
        start: f64,
        /// Last value (must be positive).
        stop: f64,
        /// Number of points (≥ 1).
        points: usize,
    },
}

impl AxisValues {
    /// The concrete value list this axis expands to.
    pub fn materialize(&self) -> Result<Vec<f64>, String> {
        match self {
            AxisValues::List(vs) => {
                if vs.is_empty() {
                    return Err("axis list is empty".into());
                }
                if vs.iter().any(|v| !v.is_finite()) {
                    return Err("axis list has a non-finite value".into());
                }
                Ok(vs.clone())
            }
            AxisValues::Range { start, stop, step } => {
                if !(start.is_finite() && stop.is_finite() && step.is_finite()) {
                    return Err("range bounds must be finite".into());
                }
                if *step <= 0.0 || stop < start {
                    return Err(format!("bad range {start}..={stop} step {step}"));
                }
                let mut out = Vec::new();
                let mut i = 0u32;
                // Integer stepping (start + i*step) avoids accumulating
                // rounding error; the epsilon admits a stop that is an
                // exact multiple of step.
                loop {
                    let v = start + f64::from(i) * step;
                    if v > stop + step * 1e-9 {
                        break;
                    }
                    out.push(v);
                    i += 1;
                }
                Ok(out)
            }
            AxisValues::LogRange {
                start,
                stop,
                points,
            } => {
                if !(start.is_finite() && stop.is_finite()) || *start <= 0.0 || *stop <= 0.0 {
                    return Err("log range bounds must be positive and finite".into());
                }
                if *points == 0 {
                    return Err("log range needs at least one point".into());
                }
                if *points == 1 {
                    return Ok(vec![*start]);
                }
                let ratio = stop / start;
                Ok((0..*points)
                    .map(|i| start * ratio.powf(i as f64 / (*points - 1) as f64))
                    .collect())
            }
        }
    }
}

/// One swept parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Scenario parameter name (see `runner::build_config` for the map).
    pub param: String,
    /// Values to sweep.
    pub values: AxisValues,
}

/// A declarative sweep over scenario configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (lands in the report).
    pub name: String,
    /// Base preset every cell starts from: `"small"` or `"paper"`.
    pub base: String,
    /// Designs to run each cell over (aliases: `traditional`, `cloud`,
    /// `l1`, `fpga`).
    pub designs: Vec<String>,
    /// Fixed parameter overrides applied to every cell, before the axes.
    pub overrides: Vec<(String, f64)>,
    /// Swept axes, first axis slowest.
    pub axes: Vec<Axis>,
    /// Seed replication: every cell runs once per seed.
    pub seeds: Vec<u64>,
}

/// One planned run: a fully-resolved point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Position in the manifest (and in the merged results).
    pub index: usize,
    /// Base preset name (from the spec).
    pub base: String,
    /// Design alias.
    pub design: String,
    /// Seed for this replicate.
    pub seed: u64,
    /// Resolved parameters: overrides first, then one value per axis, in
    /// spec order. Identical across the seeds of one cell.
    pub params: Vec<(String, f64)>,
}

impl RunPlan {
    /// The cell key: everything except the seed. Runs with equal keys are
    /// replicates of the same sweep cell.
    pub fn cell_key(&self) -> (&str, &[(String, f64)]) {
        (&self.design, &self.params)
    }
}

impl SweepSpec {
    /// The CI smoke grid: the trimmed quickstart scenario swept over
    /// 3 strategy counts × 3 momentum thresholds × 2 tick intervals on
    /// design 1, one seed — 18 runs. The first cell (6, 100, 200 µs) *is*
    /// the trimmed quickstart, so its digest is pinned against the golden
    /// 0xff1dbcd7cf7e729e in the divergence registry.
    pub fn smoke() -> SweepSpec {
        SweepSpec {
            name: "smoke".into(),
            base: "small".into(),
            designs: vec!["traditional".into()],
            overrides: vec![
                ("duration_us".into(), 8_000.0),
                ("warmup_us".into(), 1_000.0),
            ],
            axes: vec![
                Axis {
                    param: "strategies".into(),
                    values: AxisValues::List(vec![6.0, 8.0, 10.0]),
                },
                Axis {
                    param: "momentum_threshold".into(),
                    values: AxisValues::Range {
                        start: 100.0,
                        stop: 180.0,
                        step: 40.0,
                    },
                },
                Axis {
                    param: "tick_interval_us".into(),
                    values: AxisValues::LogRange {
                        start: 200.0,
                        stop: 400.0,
                        points: 2,
                    },
                },
            ],
            seeds: vec![42],
        }
    }

    /// Expand into the ordered run manifest. Deterministic, duplicate-free
    /// (given distinct axis values/seeds), and complete:
    /// `len == designs × Π(axis lengths) × seeds`.
    pub fn expand(&self) -> Result<Vec<RunPlan>, String> {
        if self.designs.is_empty() {
            return Err("spec has no designs".into());
        }
        if self.seeds.is_empty() {
            return Err("spec has no seeds".into());
        }
        let axes: Vec<(String, Vec<f64>)> = self
            .axes
            .iter()
            .map(|a| {
                a.values
                    .materialize()
                    .map(|vs| (a.param.clone(), vs))
                    .map_err(|e| format!("axis `{}`: {e}", a.param))
            })
            .collect::<Result<_, _>>()?;
        let mut manifest = Vec::new();
        for design in &self.designs {
            // Odometer over the axes: first axis slowest.
            let mut idx = vec![0usize; axes.len()];
            loop {
                let mut params = self.overrides.clone();
                for (k, (param, values)) in axes.iter().enumerate() {
                    params.push((param.clone(), values[idx[k]]));
                }
                for &seed in &self.seeds {
                    manifest.push(RunPlan {
                        index: manifest.len(),
                        base: self.base.clone(),
                        design: design.clone(),
                        seed,
                        params: params.clone(),
                    });
                }
                // Advance the odometer (last axis fastest).
                let mut k = axes.len();
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < axes[k].1.len() {
                        break;
                    }
                    idx[k] = 0;
                }
                if idx.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
        Ok(manifest)
    }

    /// Serialize as `tn-lab-spec/v1`.
    pub fn to_json(&self) -> String {
        let axes = self
            .axes
            .iter()
            .map(|a| {
                let mut members = vec![("param".to_string(), Json::Str(a.param.clone()))];
                match &a.values {
                    AxisValues::List(vs) => members.push((
                        "list".into(),
                        Json::Arr(vs.iter().map(|&v| num_f64(v)).collect()),
                    )),
                    AxisValues::Range { start, stop, step } => members.push((
                        "range".into(),
                        Json::Obj(vec![
                            ("start".into(), num_f64(*start)),
                            ("stop".into(), num_f64(*stop)),
                            ("step".into(), num_f64(*step)),
                        ]),
                    )),
                    AxisValues::LogRange {
                        start,
                        stop,
                        points,
                    } => members.push((
                        "log_range".into(),
                        Json::Obj(vec![
                            ("start".into(), num_f64(*start)),
                            ("stop".into(), num_f64(*stop)),
                            ("points".into(), num_u64(*points as u64)),
                        ]),
                    )),
                }
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SPEC_SCHEMA.into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("base".into(), Json::Str(self.base.clone())),
            (
                "designs".into(),
                Json::Arr(self.designs.iter().map(|d| Json::Str(d.clone())).collect()),
            ),
            (
                "overrides".into(),
                Json::Arr(
                    self.overrides
                        .iter()
                        .map(|(p, v)| {
                            Json::Obj(vec![
                                ("param".into(), Json::Str(p.clone())),
                                ("value".into(), num_f64(*v)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("axes".into(), Json::Arr(axes)),
            (
                "seeds".into(),
                Json::Arr(self.seeds.iter().map(|&s| num_u64(s)).collect()),
            ),
        ])
        .emit()
    }

    /// Parse a `tn-lab-spec/v1` document.
    pub fn parse(src: &str) -> Result<SweepSpec, String> {
        let doc = json::parse(src)?;
        if doc.get("schema").and_then(Json::as_str) != Some(SPEC_SCHEMA) {
            return Err(format!("not a {SPEC_SCHEMA} document"));
        }
        let name = req_str(&doc, "name")?;
        let base = req_str(&doc, "base")?;
        let designs = req_arr(&doc, "designs")?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(String::from)
                    .ok_or("design must be a string")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let overrides = req_arr(&doc, "overrides")?
            .iter()
            .map(parse_param_value)
            .collect::<Result<Vec<_>, _>>()?;
        let axes = req_arr(&doc, "axes")?
            .iter()
            .map(parse_axis)
            .collect::<Result<Vec<_>, _>>()?;
        let seeds = req_arr(&doc, "seeds")?
            .iter()
            .map(|s| s.as_u64().ok_or("seed must be a u64"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepSpec {
            name,
            base,
            designs,
            overrides,
            axes,
            seeds,
        })
    }
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or(format!("missing string field `{key}`"))
}

fn req_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or(format!("missing array field `{key}`"))
}

fn parse_param_value(v: &Json) -> Result<(String, f64), String> {
    let param = req_str(v, "param")?;
    let value = v
        .get("value")
        .and_then(Json::as_f64)
        .ok_or(format!("override `{param}` missing numeric `value`"))?;
    Ok((param, value))
}

fn parse_axis(v: &Json) -> Result<Axis, String> {
    let param = req_str(v, "param")?;
    let values = if let Some(list) = v.get("list").and_then(Json::as_arr) {
        AxisValues::List(
            list.iter()
                .map(|x| x.as_f64().ok_or("axis list value must be a number"))
                .collect::<Result<Vec<_>, _>>()?,
        )
    } else if let Some(r) = v.get("range") {
        AxisValues::Range {
            start: num_field(r, "start")?,
            stop: num_field(r, "stop")?,
            step: num_field(r, "step")?,
        }
    } else if let Some(r) = v.get("log_range") {
        AxisValues::LogRange {
            start: num_field(r, "start")?,
            stop: num_field(r, "stop")?,
            points: r
                .get("points")
                .and_then(Json::as_u64)
                .ok_or("log_range missing `points`")? as usize,
        }
    } else {
        return Err(format!(
            "axis `{param}` needs one of `list`, `range`, `log_range`"
        ));
    };
    Ok(Axis { param, values })
}

fn num_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("missing numeric field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_log_range_materialize() {
        let r = AxisValues::Range {
            start: 100.0,
            stop: 180.0,
            step: 40.0,
        };
        assert_eq!(r.materialize().unwrap(), vec![100.0, 140.0, 180.0]);
        let l = AxisValues::LogRange {
            start: 200.0,
            stop: 400.0,
            points: 2,
        };
        assert_eq!(l.materialize().unwrap(), vec![200.0, 400.0]);
        let l3 = AxisValues::LogRange {
            start: 1.0,
            stop: 100.0,
            points: 3,
        };
        let vs = l3.materialize().unwrap();
        assert_eq!(vs.len(), 3);
        assert!((vs[1] - 10.0).abs() < 1e-9, "{vs:?}");
    }

    #[test]
    fn bad_axes_are_rejected() {
        assert!(AxisValues::List(vec![]).materialize().is_err());
        assert!(AxisValues::List(vec![f64::NAN]).materialize().is_err());
        assert!(AxisValues::Range {
            start: 5.0,
            stop: 1.0,
            step: 1.0
        }
        .materialize()
        .is_err());
        assert!(AxisValues::Range {
            start: 1.0,
            stop: 5.0,
            step: 0.0
        }
        .materialize()
        .is_err());
        assert!(AxisValues::LogRange {
            start: 0.0,
            stop: 5.0,
            points: 3
        }
        .materialize()
        .is_err());
    }

    #[test]
    fn smoke_expands_to_the_documented_grid() {
        let manifest = SweepSpec::smoke().expand().unwrap();
        assert_eq!(manifest.len(), 18, "3 × 3 × 2 × 1 seed × 1 design");
        // First run is the trimmed quickstart cell.
        let first = &manifest[0];
        assert_eq!(first.index, 0);
        assert_eq!(first.design, "traditional");
        assert_eq!(first.seed, 42);
        let get = |name: &str| {
            first
                .params
                .iter()
                .find(|(p, _)| p == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("strategies"), Some(6.0));
        assert_eq!(get("momentum_threshold"), Some(100.0));
        assert_eq!(get("tick_interval_us"), Some(200.0));
        assert_eq!(get("duration_us"), Some(8_000.0));
        // Manifest order: last axis fastest.
        let tick = |i: usize| {
            manifest[i]
                .params
                .iter()
                .find(|(p, _)| p == "tick_interval_us")
                .map(|&(_, v)| v)
        };
        assert_eq!(tick(0), Some(200.0));
        assert_eq!(tick(1), Some(400.0));
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let spec = SweepSpec::smoke();
        let a = spec.expand().unwrap();
        let b = spec.expand().unwrap();
        assert_eq!(a, b);
        for (i, plan) in a.iter().enumerate() {
            assert_eq!(plan.index, i);
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = SweepSpec::smoke();
        let j = spec.to_json();
        assert!(j.starts_with("{\"schema\":\"tn-lab-spec/v1\""), "{j}");
        let back = SweepSpec::parse(&j).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), j, "emit→parse→emit must be byte-stable");
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(SweepSpec::parse("{\"schema\":\"tn-report/v1\"}").is_err());
        assert!(SweepSpec::parse("not json").is_err());
    }

    #[test]
    fn empty_designs_or_seeds_refuse_to_expand() {
        let mut spec = SweepSpec::smoke();
        spec.designs.clear();
        assert!(spec.expand().is_err());
        let mut spec = SweepSpec::smoke();
        spec.seeds.clear();
        assert!(spec.expand().is_err());
    }
}
