//! Overlay multicast: provider "free multicast" rebuilt from software
//! relays over unicast VM links.
//!
//! Clouds do not sell the hardware replication a colo switch gives away:
//! a tenant feed reaches `S` subscribers through a tree of relay VMs,
//! each copying the frame to at most `k` children over ordinary unicast
//! links. Two costs fall out and both are modelled here:
//!
//! - **depth** — a complete fan-out-`k` tree over `S` subscribers is
//!   `⌈log_k S⌉` VM hops deep, and every hop is a full VM-to-VM network
//!   traversal (tens of microseconds, jittery);
//! - **per-copy serialization** — a software relay emits its `k` copies
//!   one after another (`copy_gap` apart), so even a jitter-free tree
//!   skews children by their copy index.
//!
//! [`OverlayRelay`] is the relay node; [`OverlayTree::build`] lays out
//! the complete tree inside a simulator, installing each edge through a
//! caller-supplied link factory — wrap the link in
//! `tn_fault::FaultLink` with a jitter spec to model the VM network, or
//! hand back a clean `EtherLink` for calibration runs.

use std::collections::BTreeMap;

use tn_sim::{Context, Frame, Link, Node, NodeId, PortId, SimTime, Simulator, TimerToken};

/// Port a relay receives upstream frames on. Child copies leave on
/// ports `0..fanout`, so the input sits far above any realistic fan-out.
pub const RELAY_IN: PortId = PortId(0x0100);
/// Timer token armed for copies deferred by the per-copy gap.
pub const FORWARD: TimerToken = TimerToken(0xF0D);

/// Counters a relay keeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Frames that arrived on [`RELAY_IN`].
    pub frames_in: u64,
    /// Copies sent to children.
    pub copies_out: u64,
}

/// A fan-out-`k` software relay. See the module docs.
pub struct OverlayRelay {
    fanout: u16,
    copy_gap: SimTime,
    /// `(due_ps, seq)` → `(child port, frame)` for gap-deferred copies.
    pending: BTreeMap<(u64, u64), (PortId, Frame)>,
    seq: u64,
    stats: RelayStats,
}

impl OverlayRelay {
    /// Build a relay copying each inbound frame to child ports
    /// `0..fanout`, the `j`-th copy leaving `j × copy_gap` after
    /// arrival.
    pub fn new(fanout: u16, copy_gap: SimTime) -> OverlayRelay {
        assert!(fanout >= 1, "a relay needs at least one child");
        OverlayRelay {
            fanout,
            copy_gap,
            pending: BTreeMap::new(),
            seq: 0,
            stats: RelayStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    fn dispatch(&mut self, ctx: &mut Context<'_>, child: u16, frame: Frame, now_ps: u64) {
        let delay = self.copy_gap.as_ps() * u64::from(child);
        self.stats.copies_out += 1;
        if delay == 0 {
            ctx.send(PortId(child), frame);
            return;
        }
        let s = self.seq;
        self.seq += 1;
        self.pending
            .insert((now_ps + delay, s), (PortId(child), frame));
        ctx.set_timer(SimTime::from_ps(delay), FORWARD);
    }
}

impl Node for OverlayRelay {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.stats.frames_in += 1;
        let now_ps = ctx.now().as_ps();
        for j in 0..self.fanout - 1 {
            let copy = ctx.clone_frame(&frame);
            self.dispatch(ctx, j, copy, now_ps);
        }
        self.dispatch(ctx, self.fanout - 1, frame, now_ps);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, FORWARD);
        let now_ps = ctx.now().as_ps();
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > now_ps {
                break;
            }
            let (port, frame) = entry.remove();
            ctx.send(port, frame);
        }
    }
}

/// Layout parameters for [`OverlayTree::build`].
#[derive(Debug, Clone)]
pub struct OverlayTreeConfig {
    /// Children per relay.
    pub fanout: u16,
    /// Leaf slots the tree must offer (one per subscriber).
    pub leaves: usize,
    /// Per-copy serialization gap inside each relay.
    pub copy_gap: SimTime,
}

/// A built overlay tree: relays are wired, leaf ports await subscribers.
pub struct OverlayTree {
    /// The root relay — publishers send into [`RELAY_IN`] here.
    pub root: NodeId,
    /// Every relay, root first, level by level.
    pub relays: Vec<NodeId>,
    /// `(relay, port)` per leaf slot, in subscriber order. The caller
    /// installs the final edge from each slot to its subscriber.
    pub leaf_ports: Vec<(NodeId, PortId)>,
    /// Tree depth in relay levels (≥ 1).
    pub depth: usize,
}

impl OverlayTree {
    /// Build a complete fan-out-`k` tree over `cfg.leaves` slots inside
    /// `sim`. Relay-to-relay edges are installed through `edge_link`,
    /// called with a running edge index (deterministic across builds) so
    /// the caller can derive per-edge jitter seeds.
    pub fn build(
        sim: &mut Simulator,
        name: &str,
        cfg: &OverlayTreeConfig,
        mut edge_link: impl FnMut(usize) -> Box<dyn Link>,
    ) -> OverlayTree {
        assert!(cfg.fanout >= 1, "overlay fan-out must be at least 1");
        assert!(cfg.leaves >= 1, "an overlay needs at least one leaf");
        assert!(
            cfg.fanout >= 2 || cfg.leaves == 1,
            "a fan-out-1 tree reaches exactly one leaf, not {}",
            cfg.leaves
        );
        let k = usize::from(cfg.fanout);
        // Smallest depth d ≥ 1 with k^d ≥ leaves.
        let mut depth = 1;
        let mut cap = k;
        while cap < cfg.leaves {
            cap = cap.saturating_mul(k);
            depth += 1;
        }
        // Relays actually needed per level, bottom-up: the last level
        // serves the leaves, each level above serves the one below.
        let mut needs = vec![0usize; depth];
        needs[depth - 1] = cfg.leaves.div_ceil(k);
        for i in (0..depth - 1).rev() {
            needs[i] = needs[i + 1].div_ceil(k);
        }
        debug_assert_eq!(needs[0], 1, "the root level is a single relay");

        let mut relays = Vec::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(depth);
        for (lvl, &count) in needs.iter().enumerate() {
            let mut row = Vec::with_capacity(count);
            for p in 0..count {
                // Children of relay p: the next level's relays (or leaf
                // slots) p*k .. (p+1)*k, clamped to what exists.
                let children = if lvl + 1 < depth {
                    needs[lvl + 1].min((p + 1) * k) - (p * k).min(needs[lvl + 1])
                } else {
                    cfg.leaves.min((p + 1) * k) - (p * k).min(cfg.leaves)
                };
                let node = sim.add_node(
                    format!("{name}-relay{lvl}.{p}"),
                    OverlayRelay::new(children as u16, cfg.copy_gap),
                );
                row.push(node);
                relays.push(node);
            }
            levels.push(row);
        }

        // Wire parent→child edges, one link per edge.
        let mut edge = 0usize;
        for lvl in 0..depth - 1 {
            for (p, &parent) in levels[lvl].iter().enumerate() {
                for j in 0..k {
                    let c = p * k + j;
                    if c >= levels[lvl + 1].len() {
                        break;
                    }
                    let child = levels[lvl + 1][c];
                    sim.install_link(parent, PortId(j as u16), child, RELAY_IN, edge_link(edge));
                    edge += 1;
                }
            }
        }

        let bottom = &levels[depth - 1];
        let leaf_ports = (0..cfg.leaves)
            .map(|s| (bottom[s / k], PortId((s % k) as u16)))
            .collect();
        OverlayTree {
            root: levels[0][0],
            relays,
            leaf_ports,
            depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::IdealLink;

    struct Leaf {
        at: Vec<SimTime>,
        ids: Vec<u64>,
    }
    impl Node for Leaf {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.at.push(ctx.now());
            self.ids.push(f.id.0);
            ctx.recycle(f);
        }
    }

    fn tree_rig(
        fanout: u16,
        leaves: usize,
        gap: SimTime,
        hop: SimTime,
    ) -> (Simulator, OverlayTree, Vec<NodeId>) {
        let mut sim = Simulator::new(5);
        let cfg = OverlayTreeConfig {
            fanout,
            leaves,
            copy_gap: gap,
        };
        let tree = OverlayTree::build(&mut sim, "ov", &cfg, |_| Box::new(IdealLink::new(hop)));
        let mut sinks = Vec::new();
        for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
            let sink = sim.add_node(
                format!("leaf{s}"),
                Leaf {
                    at: vec![],
                    ids: vec![],
                },
            );
            sim.install_link(relay, port, sink, PortId(0), Box::new(IdealLink::new(hop)));
            sinks.push(sink);
        }
        (sim, tree, sinks)
    }

    #[test]
    fn every_leaf_gets_exactly_one_copy_with_the_same_frame_id() {
        let (mut sim, tree, sinks) = tree_rig(3, 7, SimTime::from_ns(50), SimTime::from_us(2));
        let f = sim.frame().zeroed(128).tag(9).build();
        sim.inject_frame(SimTime::ZERO, tree.root, RELAY_IN, f);
        sim.run();
        let mut ids = Vec::new();
        for &s in &sinks {
            let leaf = sim.node::<Leaf>(s).unwrap();
            assert_eq!(leaf.at.len(), 1, "each leaf sees the frame once");
            ids.extend_from_slice(&leaf.ids);
        }
        ids.dedup();
        assert_eq!(ids.len(), 1, "relay clones preserve the frame id");
    }

    #[test]
    fn depth_grows_logarithmically() {
        for (fanout, leaves, want_depth) in [
            (2u16, 2usize, 1usize),
            (2, 3, 2),
            (4, 16, 2),
            (4, 17, 3),
            (8, 8, 1),
            (1, 1, 1),
        ] {
            let (_, tree, _) = tree_rig(fanout, leaves, SimTime::ZERO, SimTime::from_ns(10));
            assert_eq!(tree.depth, want_depth, "fanout {fanout} leaves {leaves}");
            assert_eq!(tree.leaf_ports.len(), leaves);
        }
    }

    #[test]
    #[should_panic(expected = "fan-out-1 tree")]
    fn fanout_one_with_many_leaves_is_rejected() {
        // Would otherwise spin forever looking for a depth where 1^d >= 2.
        tree_rig(1, 2, SimTime::ZERO, SimTime::from_ns(10));
    }

    #[test]
    fn copy_gap_skews_children_by_their_index() {
        // One relay, 4 leaves, 100 ns gap: leaf j hears the frame at
        // hop + j*gap.
        let (mut sim, tree, sinks) = tree_rig(4, 4, SimTime::from_ns(100), SimTime::from_us(1));
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, tree.root, RELAY_IN, f);
        sim.run();
        for (j, &s) in sinks.iter().enumerate() {
            let at = sim.node::<Leaf>(s).unwrap().at[0];
            assert_eq!(at, SimTime::from_us(1) + SimTime::from_ns(100 * j as u64));
        }
    }

    #[test]
    fn zero_gap_single_level_is_skew_free() {
        let (mut sim, tree, sinks) = tree_rig(8, 8, SimTime::ZERO, SimTime::from_us(3));
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, tree.root, RELAY_IN, f);
        sim.run();
        let first = sim.node::<Leaf>(sinks[0]).unwrap().at[0];
        for &s in &sinks {
            assert_eq!(sim.node::<Leaf>(s).unwrap().at[0], first);
        }
    }
}
