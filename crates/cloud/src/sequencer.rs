//! Hold-and-release sequencer: fair ordering bought with a hold window.
//!
//! Cloud exchanges cannot rely on a single wire folding all order flow
//! into one arrival order — orders land on a VM over paths with
//! different latencies, carrying timestamps from clocks that agree only
//! to within a sync error bound ε. The standard fix (CloudEx and
//! successors) is to stamp each order on arrival, hold it for a window
//! `H`, and release in stamped order. If `H ≥ ε + max path skew`, the
//! released order equals the true send order; shrink `H` below the skew
//! and stamped order can contradict arrival order ("reordered"
//! releases). Either way every order pays `H` of added latency — the
//! quantitative heart of the paper's cloud verdict.
//!
//! Determinism: the clock-error draw comes from a node-owned
//! [`SmallRng`] seeded from the config, exactly like
//! `tn_fault::FaultLink` — never the kernel coin — so the sequencer is
//! shard-safe and digest-stable for a fixed seed. With
//! `clock_error == 0` no randomness is consumed at all, and with
//! `hold == 0` each frame is released at its own arrival instant in
//! arrival order (the zero-knob transparency the proptests pin).

use std::collections::BTreeMap;

use tn_sim::{Context, Frame, Node, PortId, Rng, SeedableRng, SimTime, SmallRng, TimerToken};

/// Port orders arrive on.
pub const IN: PortId = PortId(0);
/// Port released orders leave on.
pub const OUT: PortId = PortId(1);
/// Timer token armed once per arrival, at that arrival's release time.
pub const RELEASE: TimerToken = TimerToken(0x5E9);

/// Sequencer knobs.
#[derive(Debug, Clone)]
pub struct SequencerConfig {
    /// Hold window `H`: every order is held this long before it may
    /// release, giving slower-path orders time to arrive and sort.
    pub hold: SimTime,
    /// Clock-sync error bound ε: each arrival's stamp is its arrival
    /// time plus a uniform draw from `[−ε, +ε]`.
    pub clock_error: SimTime,
    /// Seed for the node-owned error stream.
    pub seed: u64,
}

impl SequencerConfig {
    /// Zero-knob config: no hold, perfect clocks — release order equals
    /// arrival order at arrival time.
    pub fn transparent(seed: u64) -> SequencerConfig {
        SequencerConfig {
            hold: SimTime::ZERO,
            clock_error: SimTime::ZERO,
            seed,
        }
    }
}

/// Counters the sequencer keeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequencerStats {
    /// Orders that arrived on [`IN`].
    pub received: u64,
    /// Orders released on [`OUT`].
    pub released: u64,
    /// Releases whose stamp was smaller than one already released — a
    /// sequencing failure: the hold window was too short to gather the
    /// earlier-stamped order before the later one left. Zero whenever
    /// the hold covers the clock error plus arrival skew.
    pub reordered: u64,
}

/// The hold-and-release sequencer node. See the module docs.
pub struct HoldReleaseSequencer {
    hold: SimTime,
    clock_error_ps: u64,
    rng: SmallRng,
    /// Stamped order → `(release_at_ps, frame)`. Keyed by
    /// `(stamp, arrival_seq)` so equal stamps tie-break by arrival.
    pending: BTreeMap<(u64, u64), (u64, Frame)>,
    arrivals: u64,
    max_released: Option<(u64, u64)>,
    released_seqs: Vec<u64>,
    stats: SequencerStats,
}

impl HoldReleaseSequencer {
    /// Build a sequencer from its config.
    pub fn new(cfg: SequencerConfig) -> HoldReleaseSequencer {
        HoldReleaseSequencer {
            hold: cfg.hold,
            clock_error_ps: cfg.clock_error.as_ps(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5EC0_DE5E_C0DE_0001),
            pending: BTreeMap::new(),
            arrivals: 0,
            max_released: None,
            released_seqs: Vec::new(),
            stats: SequencerStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> SequencerStats {
        self.stats
    }

    /// Orders stamped but not yet released.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Arrival sequence numbers in the order they were released.
    pub fn released_seqs(&self) -> &[u64] {
        &self.released_seqs
    }

    /// Stamp an arrival: its local clock reads `now ± ε`. With ε = 0 the
    /// stream is untouched, so perfect-clock configs draw no randomness.
    fn stamp(&mut self, now: SimTime) -> u64 {
        if self.clock_error_ps == 0 {
            return now.as_ps();
        }
        let off = self.rng.gen_range(0..=2 * self.clock_error_ps);
        (now.as_ps() + off).saturating_sub(self.clock_error_ps)
    }
}

impl Node for HoldReleaseSequencer {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        debug_assert_eq!(port, IN);
        self.stats.received += 1;
        let seq = self.arrivals;
        self.arrivals += 1;
        let now = ctx.now();
        let stamp = self.stamp(now);
        let release_at = now.as_ps() + self.hold.as_ps();
        self.pending.insert((stamp, seq), (release_at, frame));
        // One timer per arrival, at exactly that arrival's release time:
        // the head-of-line entry always has a timer at its own release
        // instant, so nothing starves. A zero hold fires the timer at
        // `now` — dispatched later within the same timestamp, so release
        // time still equals arrival time.
        ctx.set_timer(self.hold, RELEASE);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, RELEASE);
        let now_ps = ctx.now().as_ps();
        // Release strictly in stamped order: the head (lowest stamp)
        // gates everything behind it until its own hold expires.
        while let Some(entry) = self.pending.first_entry() {
            if entry.get().0 > now_ps {
                break;
            }
            let key = *entry.key();
            let (_, frame) = entry.remove();
            if self.max_released.is_some_and(|m| key < m) {
                self.stats.reordered += 1;
            } else {
                self.max_released = Some(key);
            }
            self.stats.released += 1;
            self.released_seqs.push(key.1);
            ctx.send(OUT, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::Simulator;

    struct Sink {
        tags: Vec<u64>,
        at: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.tags.push(f.meta.tag);
            self.at.push(ctx.now());
            ctx.recycle(f);
        }
    }

    fn rig(cfg: SequencerConfig) -> (Simulator, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(7);
        let s = sim.add_node("seq", HoldReleaseSequencer::new(cfg));
        let sink = sim.add_node(
            "sink",
            Sink {
                tags: vec![],
                at: vec![],
            },
        );
        sim.install_link(
            s,
            OUT,
            sink,
            PortId(0),
            Box::new(tn_sim::IdealLink::new(SimTime::ZERO)),
        );
        (sim, s, sink)
    }

    fn inject(sim: &mut Simulator, seqr: tn_sim::NodeId, at_ns: u64, tag: u64) {
        let f = sim.frame().zeroed(64).tag(tag).build();
        sim.inject_frame(SimTime::from_ns(at_ns), seqr, IN, f);
    }

    #[test]
    fn zero_knobs_release_at_arrival_in_arrival_order() {
        let (mut sim, s, sink) = rig(SequencerConfig::transparent(1));
        for (i, t) in [10u64, 25, 25, 40].iter().enumerate() {
            inject(&mut sim, s, *t, i as u64);
        }
        sim.run();
        let snk = sim.node::<Sink>(sink).unwrap();
        assert_eq!(snk.tags, vec![0, 1, 2, 3]);
        let want: Vec<SimTime> = [10u64, 25, 25, 40]
            .iter()
            .map(|n| SimTime::from_ns(*n))
            .collect();
        assert_eq!(snk.at, want);
        let sq = sim.node::<HoldReleaseSequencer>(s).unwrap();
        assert_eq!(sq.stats().reordered, 0);
        assert_eq!(sq.stats().released, 4);
        assert_eq!(sq.pending_len(), 0);
    }

    #[test]
    fn hold_window_delays_every_release_by_exactly_hold() {
        let cfg = SequencerConfig {
            hold: SimTime::from_us(5),
            clock_error: SimTime::ZERO,
            seed: 1,
        };
        let (mut sim, s, sink) = rig(cfg);
        inject(&mut sim, s, 100, 0);
        inject(&mut sim, s, 300, 1);
        sim.run();
        let snk = sim.node::<Sink>(sink).unwrap();
        assert_eq!(snk.tags, vec![0, 1]);
        assert_eq!(
            snk.at,
            vec![
                SimTime::from_ns(100) + SimTime::from_us(5),
                SimTime::from_ns(300) + SimTime::from_us(5),
            ]
        );
    }

    #[test]
    fn clock_error_beyond_hold_can_reorder_and_is_counted() {
        // ε = 2 µs across arrivals 50 ns apart with zero hold: some pair
        // of adjacent arrivals will stamp out of order and release
        // head-of-line in stamped order.
        let cfg = SequencerConfig {
            hold: SimTime::ZERO,
            clock_error: SimTime::from_us(2),
            seed: 9,
        };
        let (mut sim, s, _sink) = rig(cfg);
        for i in 0..64u64 {
            inject(&mut sim, s, 1_000 + 50 * i, i);
        }
        sim.run();
        let sq = sim.node::<HoldReleaseSequencer>(s).unwrap();
        assert_eq!(sq.stats().released, 64);
        assert!(
            sq.stats().reordered > 0,
            "2 µs clock error over 50 ns spacing must reorder something"
        );
    }

    #[test]
    fn big_enough_hold_absorbs_clock_error() {
        // ε = 100 ns, arrivals 1 µs apart, hold 10 µs: stamps can never
        // cross between arrivals, so release order equals arrival order.
        let cfg = SequencerConfig {
            hold: SimTime::from_us(10),
            clock_error: SimTime::from_ns(100),
            seed: 5,
        };
        let (mut sim, s, sink) = rig(cfg);
        for i in 0..32u64 {
            inject(&mut sim, s, 1_000 * (i + 1), i);
        }
        sim.run();
        let sq = sim.node::<HoldReleaseSequencer>(s).unwrap();
        assert_eq!(sq.stats().reordered, 0);
        assert_eq!(
            sim.node::<Sink>(sink).unwrap().tags,
            (0..32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let cfg = SequencerConfig {
            hold: SimTime::from_ns(500),
            clock_error: SimTime::from_us(1),
            seed: 42,
        };
        let digest = |cfg: SequencerConfig| {
            let (mut sim, s, _) = rig(cfg);
            for i in 0..40u64 {
                inject(&mut sim, s, 100 * (i + 1), i);
            }
            sim.run();
            sim.trace.digest()
        };
        assert_eq!(digest(cfg.clone()), digest(cfg));
    }
}
