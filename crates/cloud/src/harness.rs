//! The fairness microbench: one feed, `S` subscribers, three fabrics.
//!
//! Charts the spread-vs-added-latency frontier the paper's §4.2 argues
//! about. A timer-driven source publishes `E` events; each fabric fans
//! them out to `S` subscriber sinks; per event we measure the delivery
//! spread (max − min delivery instant across subscribers) and per
//! delivery the born→delivery latency:
//!
//! - **L1 switch** — passive layer-1 replication: every copy leaves the
//!   mux at the same instant, subscribers differ only by a few ns of
//!   static port/fiber skew. The colo gold standard.
//! - **leaf-spine** — store-and-forward switches in a fixed-depth tree:
//!   per-copy serialization gaps skew subscribers by tens of ns,
//!   deterministically.
//! - **cloud** — fan-out-`k` relay VMs over jittery unicast links, with
//!   a [`DelayEqualizer`] gate in front of every subscriber. The gate
//!   ceiling is *calibrated*: a jitter-free, equalizer-transparent run
//!   of the same topology measures the nominal per-path latencies; the
//!   measured run then pads to `nominal_max + hold`. The hold window is
//!   the knob: it buys jitter absorption (spread → residual) and costs
//!   added median latency ≥ hold — the quantitative form of the paper's
//!   cloud verdict.
//!
//! Everything is digest-disciplined: link jitter rides
//! `tn_fault::FaultLink`'s own seeded stream, equalizer residual rides
//! the node-owned stream, and [`run_fairness`] is bit-reproducible for
//! a fixed [`FairnessScenario`].

use tn_fault::{FaultLink, FaultSpec};
use tn_netdev::EtherLink;
use tn_sim::{
    Context, Frame, IdealLink, Link, Node, NodeId, PortId, SchedulerKind, SimTime, Simulator,
    TimerToken,
};
use tn_stats::{FairnessWindow, Summary};

use crate::equalizer::{self, DelayEqualizer, EqualizerConfig};
use crate::overlay::{OverlayTree, OverlayTreeConfig, RELAY_IN};

/// Timer token driving the feed source.
const EMIT: TimerToken = TimerToken(0xFE_ED);

/// L1 mux-to-subscriber base propagation.
const L1_BASE: SimTime = SimTime::from_ns(450);
/// Static per-port skew of the L1 mux (port `s` adds `s ×` this).
const L1_PORT_SKEW: SimTime = SimTime::from_ns(4);
/// Leaf-spine switch fan-out.
const LS_FANOUT: u16 = 4;
/// Leaf-spine per-copy store-and-forward gap.
const LS_COPY_GAP: SimTime = SimTime::from_ns(32);
/// Leaf-spine hop propagation.
const LS_PROP: SimTime = SimTime::from_ns(200);
/// VM-to-VM one-way propagation for overlay hops (raw, unequalized).
const VM_PROP: SimTime = SimTime::from_us(25);
/// Software relay per-copy gap (syscall + copy per child).
const CLOUD_COPY_GAP: SimTime = SimTime::from_ns(250);

/// The common scenario: one source, `subscribers` sinks.
#[derive(Debug, Clone)]
pub struct FairnessScenario {
    /// Subscriber count `S`.
    pub subscribers: usize,
    /// Events the source publishes.
    pub events: u32,
    /// Publish period.
    pub period: SimTime,
    /// Payload bytes per event.
    pub payload: usize,
    /// Seed for the kernel and every derived fault/residual stream.
    pub seed: u64,
    /// Event scheduler the kernel runs on; any kind must reproduce the
    /// same digest (pinned in the divergence registry).
    pub scheduler: SchedulerKind,
}

impl FairnessScenario {
    /// The CI-sized scenario: 8 subscribers, 40 events, 50 µs apart.
    pub fn small(seed: u64) -> FairnessScenario {
        FairnessScenario {
            subscribers: 8,
            events: 40,
            period: SimTime::from_us(50),
            payload: 256,
            seed,
            scheduler: SchedulerKind::BinaryHeap,
        }
    }
}

/// Which fabric fans the feed out.
#[derive(Debug, Clone)]
pub enum DesignKind {
    /// Passive layer-1 replication with static port skew.
    L1Switch,
    /// Fixed-depth store-and-forward switch tree.
    LeafSpine,
    /// Overlay relay VMs + per-subscriber delay equalizers.
    Cloud {
        /// Relay fan-out `k`.
        fanout: u16,
        /// Per-VM-hop jitter bound (uniform, via `FaultLink`).
        jitter: SimTime,
        /// Equalizer hold: the ceiling is calibrated nominal max + hold.
        hold: SimTime,
        /// Equalizer residual pacing error.
        residual: SimTime,
    },
}

impl DesignKind {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::L1Switch => "l1",
            DesignKind::LeafSpine => "leaf-spine",
            DesignKind::Cloud { .. } => "cloud",
        }
    }
}

/// One measured frontier point.
#[derive(Debug, Clone)]
pub struct FairnessRun {
    /// Design label (`l1`, `leaf-spine`, `cloud`).
    pub design: &'static str,
    /// Trace digest of the measured run.
    pub digest: u64,
    /// Events the kernel recorded.
    pub events: u64,
    /// Total deliveries across subscribers.
    pub delivered: u64,
    /// Published events every subscriber received.
    pub complete_events: u64,
    /// Deliveries arriving past the equalizer ceiling (cloud only).
    pub late: u64,
    /// Delivery-spread percentiles across subscribers, per event (ps).
    pub spread_p50_ps: u64,
    /// 99th-percentile spread (ps).
    pub spread_p99_ps: u64,
    /// Worst spread (ps).
    pub spread_max_ps: u64,
    /// Median born→delivery latency (ps).
    pub median_delivery_ps: u64,
    /// Median of the jitter-free, equalizer-transparent baseline (ps).
    /// For L1/leaf-spine the run is its own baseline.
    pub baseline_median_ps: u64,
    /// `median_delivery − baseline_median`: what fairness cost (ps).
    pub added_median_ps: u64,
    /// The hold window this point paid for (ps; 0 outside cloud).
    pub hold_ps: u64,
}

/// Run the scenario over one fabric and measure the frontier point.
/// Deterministic: same inputs, same `FairnessRun` (digest included).
pub fn run_fairness(sc: &FairnessScenario, design: &DesignKind) -> FairnessRun {
    match design {
        DesignKind::L1Switch => finish(design.label(), run_l1(sc), None, SimTime::ZERO),
        DesignKind::LeafSpine => finish(design.label(), run_leafspine(sc), None, SimTime::ZERO),
        DesignKind::Cloud {
            fanout,
            jitter,
            hold,
            residual,
        } => {
            // Calibration: same topology, clean links, transparent
            // gates. Its per-delivery max is the nominal worst path.
            let mut base = run_cloud(sc, *fanout, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO);
            let ceiling = SimTime::from_ps(base.delivery.max()) + *hold;
            let run = run_cloud(sc, *fanout, *jitter, ceiling, *residual);
            finish(design.label(), run, Some(base.delivery.median()), *hold)
        }
    }
}

// ---------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------

struct FeedSource {
    remaining: u32,
    period: SimTime,
    payload: usize,
    next_tag: u64,
}

impl Node for FeedSource {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        ctx.recycle(frame);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerToken) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let tag = self.next_tag;
        self.next_tag += 1;
        let now = ctx.now();
        let f = ctx
            .frame()
            .zeroed(self.payload)
            .tag(tag)
            .event_time(now)
            .build();
        ctx.send(PortId(0), f);
        if self.remaining > 0 {
            ctx.set_timer(self.period, EMIT);
        }
    }
}

struct SubSink {
    /// `(frame id, delivery ps, born→delivery latency ps)`.
    got: Vec<(u64, u64, u64)>,
}

impl Node for SubSink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        let now_ps = ctx.now().as_ps();
        let lat = now_ps.saturating_sub(frame.born.as_ps());
        self.got.push((frame.id.0, now_ps, lat));
        ctx.recycle(frame);
    }
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

struct RawRun {
    digest: u64,
    events: u64,
    delivered: u64,
    late: u64,
    window: FairnessWindow,
    delivery: Summary,
}

fn add_source(sim: &mut Simulator, sc: &FairnessScenario) -> NodeId {
    sim.add_node(
        "feed-src",
        FeedSource {
            remaining: sc.events,
            period: sc.period,
            payload: sc.payload,
            next_tag: 0,
        },
    )
}

fn add_sinks(sim: &mut Simulator, n: usize) -> Vec<NodeId> {
    (0..n)
        .map(|s| sim.add_node(format!("sub{s}"), SubSink { got: Vec::new() }))
        .collect()
}

fn drive_and_collect(mut sim: Simulator, src: NodeId, sinks: &[NodeId], late: u64) -> RawRun {
    sim.schedule_timer(SimTime::ZERO, src, EMIT);
    sim.run();
    let mut window = FairnessWindow::new(sinks.len());
    let mut delivery = Summary::new();
    let mut delivered = 0u64;
    for &s in sinks {
        let sink = sim.node::<SubSink>(s).expect("subscriber sink");
        for &(id, at, lat) in &sink.got {
            window.observe(id, at);
            delivery.record(lat);
            delivered += 1;
        }
    }
    RawRun {
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
        delivered,
        late,
        window,
        delivery,
    }
}

fn run_l1(sc: &FairnessScenario) -> RawRun {
    let mut sim = Simulator::with_scheduler(sc.seed, sc.scheduler);
    let src = add_source(&mut sim, sc);
    let cfg = OverlayTreeConfig {
        fanout: sc.subscribers as u16,
        leaves: sc.subscribers,
        copy_gap: SimTime::ZERO,
    };
    // Depth-1 "tree": the single relay is the passive mux.
    let tree = OverlayTree::build(&mut sim, "l1-mux", &cfg, |_| {
        Box::new(IdealLink::new(SimTime::ZERO))
    });
    sim.install_link(
        src,
        PortId(0),
        tree.root,
        RELAY_IN,
        Box::new(IdealLink::new(SimTime::from_ns(10))),
    );
    let sinks = add_sinks(&mut sim, sc.subscribers);
    for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
        let prop = L1_BASE + SimTime::from_ps(L1_PORT_SKEW.as_ps() * s as u64);
        sim.install_link(
            relay,
            port,
            sinks[s],
            PortId(0),
            Box::new(IdealLink::new(prop)),
        );
    }
    drive_and_collect(sim, src, &sinks, 0)
}

fn run_leafspine(sc: &FairnessScenario) -> RawRun {
    let mut sim = Simulator::with_scheduler(sc.seed, sc.scheduler);
    let src = add_source(&mut sim, sc);
    let cfg = OverlayTreeConfig {
        fanout: LS_FANOUT,
        leaves: sc.subscribers,
        copy_gap: LS_COPY_GAP,
    };
    let link = || EtherLink::twenty_five_gig(LS_PROP);
    let tree = OverlayTree::build(&mut sim, "ls", &cfg, |_| Box::new(link()));
    sim.install_link(src, PortId(0), tree.root, RELAY_IN, Box::new(link()));
    let sinks = add_sinks(&mut sim, sc.subscribers);
    for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
        sim.install_link(relay, port, sinks[s], PortId(0), Box::new(link()));
    }
    drive_and_collect(sim, src, &sinks, 0)
}

/// Derive a per-edge fault seed that never collides across edge roles.
fn edge_seed(base: u64, idx: u64) -> u64 {
    base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx + 1)
}

fn run_cloud(
    sc: &FairnessScenario,
    fanout: u16,
    jitter: SimTime,
    ceiling: SimTime,
    residual: SimTime,
) -> RawRun {
    let mut sim = Simulator::with_scheduler(sc.seed, sc.scheduler);
    let src = add_source(&mut sim, sc);
    let vm_link = |idx: u64| -> Box<dyn Link> {
        let base = EtherLink::ten_gig(VM_PROP);
        if jitter > SimTime::ZERO {
            Box::new(FaultLink::wrap(
                base,
                FaultSpec::new(edge_seed(sc.seed, idx)).with_jitter(jitter),
            ))
        } else {
            Box::new(base)
        }
    };
    let cfg = OverlayTreeConfig {
        fanout,
        leaves: sc.subscribers,
        copy_gap: CLOUD_COPY_GAP,
    };
    let tree = OverlayTree::build(&mut sim, "ov", &cfg, |i| vm_link(i as u64));
    // The publisher's own VM hop into the root relay: edge indices
    // 1_000_000.. keep its jitter stream disjoint from the tree's.
    sim.install_link(src, PortId(0), tree.root, RELAY_IN, vm_link(1_000_000));
    let sinks = add_sinks(&mut sim, sc.subscribers);
    let mut gates = Vec::with_capacity(sc.subscribers);
    for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
        let gate = sim.add_node(
            format!("gate{s}"),
            DelayEqualizer::new(EqualizerConfig {
                ceiling,
                residual,
                seed: edge_seed(sc.seed, 3_000_000 + s as u64),
            }),
        );
        // Leaf VM hop into the gate; the gate fronts its subscriber.
        sim.install_link(
            relay,
            port,
            gate,
            equalizer::IN,
            vm_link(2_000_000 + s as u64),
        );
        sim.install_link(
            gate,
            equalizer::OUT,
            sinks[s],
            PortId(0),
            Box::new(IdealLink::new(SimTime::ZERO)),
        );
        gates.push(gate);
    }
    sim.schedule_timer(SimTime::ZERO, src, EMIT);
    sim.run();
    let mut window = FairnessWindow::new(sc.subscribers);
    let mut delivery = Summary::new();
    let mut delivered = 0u64;
    let mut late = 0u64;
    for &s in &sinks {
        let sink = sim.node::<SubSink>(s).expect("subscriber sink");
        for &(id, at, lat) in &sink.got {
            window.observe(id, at);
            delivery.record(lat);
            delivered += 1;
        }
    }
    for &g in &gates {
        late += sim.node::<DelayEqualizer>(g).expect("gate").stats().late;
    }
    RawRun {
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
        delivered,
        late,
        window,
        delivery,
    }
}

fn finish(
    design: &'static str,
    mut raw: RawRun,
    baseline_median_ps: Option<u64>,
    hold: SimTime,
) -> FairnessRun {
    let mut spread = raw.window.spreads();
    let median = raw.delivery.median();
    let baseline = baseline_median_ps.unwrap_or(median);
    FairnessRun {
        design,
        digest: raw.digest,
        events: raw.events,
        delivered: raw.delivered,
        complete_events: raw.window.complete() as u64,
        late: raw.late,
        spread_p50_ps: spread.p50(),
        spread_p99_ps: spread.p99(),
        spread_max_ps: spread.max(),
        median_delivery_ps: median,
        baseline_median_ps: baseline,
        added_median_ps: median.saturating_sub(baseline),
        hold_ps: hold.as_ps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_spread_is_exactly_the_static_port_skew() {
        let sc = FairnessScenario::small(42);
        let run = run_fairness(&sc, &DesignKind::L1Switch);
        let want = L1_PORT_SKEW.as_ps() * (sc.subscribers as u64 - 1);
        assert_eq!(run.spread_max_ps, want);
        assert_eq!(run.spread_p50_ps, want, "every event sees identical skew");
        assert_eq!(run.complete_events, u64::from(sc.events));
        assert_eq!(run.added_median_ps, 0);
    }

    #[test]
    fn leafspine_spread_is_deterministic_and_above_l1() {
        let sc = FairnessScenario::small(42);
        let l1 = run_fairness(&sc, &DesignKind::L1Switch);
        let ls1 = run_fairness(&sc, &DesignKind::LeafSpine);
        let ls2 = run_fairness(&sc, &DesignKind::LeafSpine);
        assert_eq!(ls1.digest, ls2.digest);
        assert_eq!(ls1.spread_max_ps, ls2.spread_max_ps);
        assert!(ls1.spread_max_ps > l1.spread_max_ps);
        assert_eq!(ls1.complete_events, u64::from(sc.events));
    }

    #[test]
    fn cloud_zero_knobs_has_zero_spread_and_zero_added_latency() {
        let sc = FairnessScenario::small(42);
        let run = run_fairness(
            &sc,
            &DesignKind::Cloud {
                fanout: 4,
                jitter: SimTime::ZERO,
                hold: SimTime::ZERO,
                residual: SimTime::ZERO,
            },
        );
        // Ceiling = calibrated nominal max, all paths deterministic:
        // every subscriber releases at exactly born + ceiling.
        assert_eq!(run.spread_max_ps, 0);
        assert_eq!(run.late, 0);
        assert_eq!(run.complete_events, u64::from(sc.events));
    }

    #[test]
    fn cloud_hold_absorbs_jitter_and_charges_at_least_the_hold() {
        let sc = FairnessScenario::small(42);
        let hold = SimTime::from_us(8);
        let run = run_fairness(
            &sc,
            &DesignKind::Cloud {
                fanout: 4,
                jitter: SimTime::from_us(1),
                hold,
                residual: SimTime::ZERO,
            },
        );
        // Per-hop jitter ≤ 1 µs over a shallow tree stays inside an
        // 8 µs hold: nothing late, spread collapses to zero.
        assert_eq!(run.late, 0);
        assert_eq!(run.spread_max_ps, 0);
        assert!(
            run.added_median_ps >= hold.as_ps(),
            "fairness must cost at least the hold window: added {} < hold {}",
            run.added_median_ps,
            hold.as_ps()
        );
    }

    #[test]
    fn cloud_without_hold_leaks_the_jitter_into_spread() {
        let sc = FairnessScenario::small(42);
        let run = run_fairness(
            &sc,
            &DesignKind::Cloud {
                fanout: 4,
                jitter: SimTime::from_us(4),
                hold: SimTime::ZERO,
                residual: SimTime::ZERO,
            },
        );
        assert!(
            run.late > 0,
            "jitter past the nominal ceiling must count late"
        );
        assert!(
            run.spread_max_ps > SimTime::from_us(1).as_ps(),
            "unheld jitter shows up as delivery spread"
        );
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let sc = FairnessScenario::small(7);
        let d = DesignKind::Cloud {
            fanout: 3,
            jitter: SimTime::from_us(2),
            hold: SimTime::from_us(3),
            residual: SimTime::from_ns(100),
        };
        let a = run_fairness(&sc, &d);
        let b = run_fairness(&sc, &d);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.spread_p99_ps, b.spread_p99_ps);
        assert_eq!(a.added_median_ps, b.added_median_ps);
    }
}
