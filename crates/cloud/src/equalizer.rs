//! Delay equalizer: fair delivery bought with padded latency.
//!
//! A cloud feed fans out over unicast VM paths whose latencies differ
//! and jitter; subscribers near the publisher would otherwise see every
//! event first. The equalizer sits immediately in front of each
//! subscriber and pads: a frame born at `b` is released at
//! `max(arrival, b + ceiling) + r`, where `ceiling` is the configured
//! release target and `r` is a uniform draw from `[0, residual]`
//! modelling the precision of the pacing clock. Pick
//! `ceiling ≥ max path latency` and every subscriber sees the event at
//! the same instant `b + ceiling` (spread = residual); every delivery
//! pays `ceiling − its own path` of padding for that fairness. Frames
//! arriving after the ceiling ("late", the jitter tail the ceiling
//! didn't cover) pass through immediately and are counted.
//!
//! Path latency is measured from tn-obs provenance when the kernel
//! carries it (`Provenance::total_ps` — the exact per-segment sum) and
//! falls back to `arrival − born` otherwise; both are recorded so
//! reports can chart observed path distributions next to the padding
//! they were topped up with.
//!
//! Determinism: like the sequencer, the residual draw comes from a
//! node-owned [`SmallRng`]; `residual == 0` consumes no randomness, and
//! `ceiling == 0` makes the node fully transparent (release at arrival).

use std::collections::BTreeMap;

use tn_sim::{Context, Frame, Node, PortId, Rng, SeedableRng, SimTime, SmallRng, TimerToken};

/// Port feed frames arrive on.
pub const IN: PortId = PortId(0);
/// Port equalized deliveries leave on.
pub const OUT: PortId = PortId(1);
/// Timer token armed once per held frame, at its release time.
pub const RELEASE: TimerToken = TimerToken(0xE90);

/// Equalizer knobs.
#[derive(Debug, Clone)]
pub struct EqualizerConfig {
    /// Release ceiling measured from the frame's birth: deliveries are
    /// padded toward `born + ceiling`. Zero means pass-through.
    pub ceiling: SimTime,
    /// Residual pacing error: each release lands a uniform draw from
    /// `[0, residual]` past its target.
    pub residual: SimTime,
    /// Seed for the node-owned residual stream.
    pub seed: u64,
}

impl EqualizerConfig {
    /// Zero-knob config: release at arrival, no randomness consumed.
    pub fn transparent(seed: u64) -> EqualizerConfig {
        EqualizerConfig {
            ceiling: SimTime::ZERO,
            residual: SimTime::ZERO,
            seed,
        }
    }
}

/// Counters the equalizer keeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualizerStats {
    /// Frames delivered on [`OUT`].
    pub delivered: u64,
    /// Deliveries that were held (arrived before their ceiling).
    pub held: u64,
    /// Deliveries that arrived after their ceiling and passed straight
    /// through — the jitter tail the ceiling failed to cover.
    pub late: u64,
}

/// The per-subscriber delay-equalizer node. See the module docs.
pub struct DelayEqualizer {
    ceiling: SimTime,
    residual_ps: u64,
    rng: SmallRng,
    /// `(release_at_ps, seq)` → frame.
    pending: BTreeMap<(u64, u64), Frame>,
    seq: u64,
    stats: EqualizerStats,
    /// `(frame id, release time ps)` per delivery: replicated copies of
    /// one published event keep their `FrameId` across relay clones, so
    /// the id groups deliveries event-by-event for fairness windows.
    releases: Vec<(u64, u64)>,
    /// Observed upstream path latency per delivery (provenance sum when
    /// available, else birth-to-arrival), in ps.
    observed_path_ps: Vec<u64>,
    /// Padding added per delivery (release − arrival), in ps.
    pad_ps: Vec<u64>,
}

impl DelayEqualizer {
    /// Build an equalizer from its config.
    pub fn new(cfg: EqualizerConfig) -> DelayEqualizer {
        DelayEqualizer {
            ceiling: cfg.ceiling,
            residual_ps: cfg.residual.as_ps(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xE9A1_12E9_A112_0002),
            pending: BTreeMap::new(),
            seq: 0,
            stats: EqualizerStats::default(),
            releases: Vec::new(),
            observed_path_ps: Vec::new(),
            pad_ps: Vec::new(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> EqualizerStats {
        self.stats
    }

    /// Frames currently held.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// `(frame id, release ps)` per delivery, in release order.
    pub fn releases(&self) -> &[(u64, u64)] {
        &self.releases
    }

    /// Observed upstream path latencies, in ps, one per delivery.
    pub fn observed_path_ps(&self) -> &[u64] {
        &self.observed_path_ps
    }

    /// Padding added per delivery, in ps.
    pub fn pad_ps(&self) -> &[u64] {
        &self.pad_ps
    }

    fn measured_path(now: SimTime, frame: &Frame) -> u64 {
        match &frame.meta.provenance {
            Some(p) => p.total_ps(),
            None => now.as_ps().saturating_sub(frame.born.as_ps()),
        }
    }

    fn release(&mut self, ctx: &mut Context<'_>, now_ps: u64, frame: Frame) {
        self.stats.delivered += 1;
        self.releases.push((frame.id.0, now_ps));
        ctx.send(OUT, frame);
    }
}

impl Node for DelayEqualizer {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        debug_assert_eq!(port, IN);
        let now = ctx.now();
        let now_ps = now.as_ps();
        self.observed_path_ps.push(Self::measured_path(now, &frame));
        let target = frame.born.as_ps() + self.ceiling.as_ps();
        if now_ps > target {
            self.stats.late += 1;
        }
        let jig = if self.residual_ps == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.residual_ps)
        };
        let due = target.max(now_ps) + jig;
        self.pad_ps.push(due - now_ps);
        if due <= now_ps {
            self.release(ctx, now_ps, frame);
            return;
        }
        self.stats.held += 1;
        let s = self.seq;
        self.seq += 1;
        self.pending.insert((due, s), frame);
        ctx.set_timer(SimTime::from_ps(due - now_ps), RELEASE);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, RELEASE);
        let now_ps = ctx.now().as_ps();
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > now_ps {
                break;
            }
            let frame = entry.remove();
            self.release(ctx, now_ps, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::Simulator;

    struct Sink {
        at: Vec<SimTime>,
        tags: Vec<u64>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.at.push(ctx.now());
            self.tags.push(f.meta.tag);
            ctx.recycle(f);
        }
    }

    fn rig(cfg: EqualizerConfig) -> (Simulator, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(3);
        let eq = sim.add_node("eq", DelayEqualizer::new(cfg));
        let sink = sim.add_node(
            "sink",
            Sink {
                at: vec![],
                tags: vec![],
            },
        );
        sim.install_link(
            eq,
            OUT,
            sink,
            PortId(0),
            Box::new(tn_sim::IdealLink::new(SimTime::ZERO)),
        );
        (sim, eq, sink)
    }

    #[test]
    fn pads_to_the_ceiling_exactly() {
        let cfg = EqualizerConfig {
            ceiling: SimTime::from_us(10),
            residual: SimTime::ZERO,
            seed: 1,
        };
        let (mut sim, eq, sink) = rig(cfg);
        // Frame born at 0 (built before injection), arriving at 2 µs:
        // must release at exactly born + 10 µs.
        let f = sim.frame().zeroed(64).tag(7).build();
        sim.inject_frame(SimTime::from_us(2), eq, IN, f);
        sim.run();
        let snk = sim.node::<Sink>(sink).unwrap();
        assert_eq!(snk.at, vec![SimTime::from_us(10)]);
        let e = sim.node::<DelayEqualizer>(eq).unwrap();
        assert_eq!(e.stats().held, 1);
        assert_eq!(e.stats().late, 0);
        assert_eq!(e.pad_ps(), &[SimTime::from_us(8).as_ps()]);
        assert_eq!(e.observed_path_ps(), &[SimTime::from_us(2).as_ps()]);
    }

    #[test]
    fn late_frames_pass_through_and_are_counted() {
        let cfg = EqualizerConfig {
            ceiling: SimTime::from_ns(500),
            residual: SimTime::ZERO,
            seed: 1,
        };
        let (mut sim, eq, sink) = rig(cfg);
        let f = sim.frame().zeroed(64).tag(1).build();
        sim.inject_frame(SimTime::from_us(3), eq, IN, f);
        sim.run();
        assert_eq!(
            sim.node::<Sink>(sink).unwrap().at,
            vec![SimTime::from_us(3)]
        );
        let e = sim.node::<DelayEqualizer>(eq).unwrap();
        assert_eq!(e.stats().late, 1);
        assert_eq!(e.stats().held, 0);
        assert_eq!(e.pad_ps(), &[0]);
    }

    #[test]
    fn zero_knobs_are_transparent() {
        let (mut sim, eq, sink) = rig(EqualizerConfig::transparent(1));
        for i in 0..5u64 {
            let f = sim.frame().zeroed(64).tag(i).build();
            sim.inject_frame(SimTime::from_ns(100 * (i + 1)), eq, IN, f);
        }
        sim.run();
        let snk = sim.node::<Sink>(sink).unwrap();
        assert_eq!(snk.tags, vec![0, 1, 2, 3, 4]);
        let want: Vec<SimTime> = (1..=5).map(|i| SimTime::from_ns(100 * i)).collect();
        assert_eq!(snk.at, want);
        let e = sim.node::<DelayEqualizer>(eq).unwrap();
        assert_eq!(e.stats().held, 0);
        assert_eq!(e.pending_len(), 0);
    }

    #[test]
    fn residual_jitter_is_bounded_and_deterministic() {
        let cfg = EqualizerConfig {
            ceiling: SimTime::from_us(5),
            residual: SimTime::from_ns(200),
            seed: 11,
        };
        let run = |cfg: EqualizerConfig| {
            let (mut sim, eq, sink) = rig(cfg);
            // All arrivals land well before the 5 µs ceiling.
            for i in 0..20u64 {
                let f = sim.frame().zeroed(64).tag(i).build();
                sim.inject_frame(SimTime::from_ns(150 * (i + 1)), eq, IN, f);
            }
            sim.run();
            let _ = eq;
            (
                sim.node::<Sink>(sink).unwrap().at.clone(),
                sim.trace.digest(),
            )
        };
        let (at1, d1) = run(cfg.clone());
        let (at2, d2) = run(cfg);
        assert_eq!(at1, at2);
        assert_eq!(d1, d2);
        // Frames all born at 0 (built before injection): every release
        // must land in [born+ceiling, born+ceiling+residual].
        let lo = SimTime::from_us(5);
        let hi = lo + SimTime::from_ns(200);
        for t in &at1 {
            assert!(
                *t >= lo && *t <= hi,
                "release {t:?} outside [{lo:?}, {hi:?}]"
            );
        }
    }
}
