//! # tn-cloud
//!
//! The mechanisms a cloud exchange actually needs to be *fair*, built as
//! deterministic [`tn_sim::Node`] types.
//!
//! The paper's §4.2 cloud verdict rests on one constant: a provider
//! fabric whose tenant-to-tenant latency is "equalized". Public cloud
//! exchange designs (CloudEx-style hold-and-release sequencing, delay
//! equalization, software multicast over unicast VM links) show what that
//! constant hides — every fairness property must be *manufactured* from
//! jittery unicast parts, and each mechanism charges latency for the
//! fairness it buys. This crate models the three standard parts:
//!
//! - [`HoldReleaseSequencer`] — stamps inbound orders against a bounded
//!   clock-sync error and releases them in stamped order after a hold
//!   window. Fair ordering costs the hold window on the order path.
//! - [`DelayEqualizer`] — pads each feed delivery toward a release
//!   ceiling measured from the frame's birth, so every subscriber sees
//!   the event at the same simulated instant (up to a residual error).
//!   Fair delivery costs `ceiling − nominal_path` of added latency.
//! - [`OverlayRelay`] / [`OverlayTree`] — fan-out-`k` software relays
//!   over unicast VM links, replacing provider "free multicast". Scale
//!   costs tree depth × VM hop latency plus per-copy serialization.
//!
//! All three are digest-disciplined: their randomness (clock error,
//! residual jitter) comes from node-owned [`tn_sim::SmallRng`] streams,
//! never the kernel coin, and zero-knob configurations are
//! latency-transparent. [`harness`] packages a source → fabric →
//! subscriber microbench that charts the fairness/latency frontier for
//! cloud vs leaf-spine vs L1 fan-out.

pub mod equalizer;
pub mod harness;
pub mod overlay;
pub mod sequencer;

pub use equalizer::{DelayEqualizer, EqualizerConfig, EqualizerStats};
pub use harness::{run_fairness, DesignKind, FairnessRun, FairnessScenario};
pub use overlay::{OverlayRelay, OverlayTree, OverlayTreeConfig, RelayStats};
pub use sequencer::{HoldReleaseSequencer, SequencerConfig, SequencerStats};
