//! Design 2: the cloud (§4.2) — equalization constant or real mechanisms.
//!
//! Cloud proposals for fair financial networks (DBO and cloud-exchange
//! work the paper cites) assume the provider manages a fabric whose
//! tenant-to-tenant latency is *equalized* — nobody wins by rack
//! placement. The base model keeps that as a provider fabric node that
//! delivers every frame at `equalized_latency` regardless of source or
//! destination pair, with provider-managed multicast.
//!
//! The [`CloudFairnessSpec`] knob replaces the magic constant with the
//! machinery a real cloud exchange needs (tn-cloud): an overlay
//! multicast tree of relay VMs over jittery unicast links distributes
//! the firm's internal feed, a [`tn_cloud::DelayEqualizer`] in front of
//! each subscriber pads deliveries toward a release ceiling, and a
//! [`tn_cloud::HoldReleaseSequencer`] ahead of the exchange's order
//! port enforces stamped order under a clock-sync error bound. A
//! disabled spec (the default) builds *exactly* the old topology, so
//! pre-fairness digests reproduce bit-for-bit.
//!
//! The §4.2 critique is then quantitative: the equalization constant is
//! orders of magnitude above colo switching (tens to hundreds of
//! microseconds versus 500 ns), traffic to exchanges that stay
//! *outside* the cloud pays a WAN penalty on top, and with the
//! mechanisms modelled the fairness itself charges latency — overlay
//! depth × VM hop, plus the equalizer ceiling, plus the sequencer hold.

use tn_cloud::{
    equalizer, overlay::RELAY_IN, DelayEqualizer, EqualizerConfig, HoldReleaseSequencer,
    OverlayTree, OverlayTreeConfig, SequencerConfig,
};
use tn_fault::{FaultLink, FaultSpec};
use tn_netdev::EtherLink;
use tn_sim::{Link, NodeId, PortId, SimTime, Simulator};
use tn_switch::{CommoditySwitch, McastOverflowPolicy, SwitchConfig};
use tn_wire::ipv4;

/// Cloud fabric parameters.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Number of tenant attachment ports.
    pub tenant_ports: usize,
    /// The equalized one-way latency between any two tenants. Public
    /// proposals land in the tens-to-hundreds of microseconds.
    pub equalized_latency: SimTime,
    /// Multicast groups the provider offers a tenant (generous: the
    /// cloud's win is scale-out, not group count).
    pub mcast_groups: usize,
    /// WAN latency to reach an exchange that stays on-prem (one way).
    pub external_wan_latency: SimTime,
    /// Tenant access bandwidth.
    pub access_bps: u64,
    /// Fairness machinery replacing the equalization constant; the
    /// disabled default reproduces the constant-based topology exactly.
    pub fairness: CloudFairnessSpec,
}

impl Default for CloudConfig {
    fn default() -> CloudConfig {
        CloudConfig {
            tenant_ports: 1024,
            equalized_latency: SimTime::from_us(50),
            mcast_groups: 100_000,
            external_wan_latency: SimTime::from_ms(1),
            access_bps: 100_000_000_000,
            fairness: CloudFairnessSpec::default(),
        }
    }
}

/// Knobs for the tn-cloud mechanism set. `overlay_fanout == 0` (the
/// default) disables everything: the fabric keeps its provider
/// multicast and magic equalization constant, bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct CloudFairnessSpec {
    /// Relay fan-out `k` of the overlay multicast tree; 0 disables the
    /// whole mechanism set.
    pub overlay_fanout: u16,
    /// Per-VM-hop jitter bound (uniform), injected via `FaultLink`.
    pub hop_jitter: SimTime,
    /// Per-copy serialization gap inside each relay VM.
    pub copy_gap: SimTime,
    /// Raw VM-to-VM one-way propagation of an overlay hop — what a
    /// unicast hop costs *before* anyone equalizes anything.
    pub vm_prop: SimTime,
    /// Delay-equalizer release ceiling, measured from frame birth. Must
    /// cover the worst overlay path for spread to collapse.
    pub ceiling: SimTime,
    /// Equalizer residual pacing error.
    pub residual: SimTime,
    /// Sequencer hold window on the order path.
    pub hold: SimTime,
    /// Sequencer clock-sync error bound.
    pub clock_error: SimTime,
    /// Seed for every derived jitter/residual/clock-error stream.
    pub seed: u64,
}

impl CloudFairnessSpec {
    /// Whether the mechanism set is active.
    pub fn enabled(&self) -> bool {
        self.overlay_fanout > 0
    }

    /// A representative enabled configuration: fan-out-4 overlay over
    /// 25 µs VM hops with 2 µs jitter, a 120 µs equalizer ceiling
    /// (covers the 3-hop worst path plus jitter for small firms), and a
    /// 5 µs sequencer hold against a 1 µs clock error.
    pub fn demo() -> CloudFairnessSpec {
        CloudFairnessSpec {
            overlay_fanout: 4,
            hop_jitter: SimTime::from_us(2),
            copy_gap: SimTime::from_ns(250),
            vm_prop: SimTime::from_us(25),
            ceiling: SimTime::from_us(120),
            residual: SimTime::from_ns(100),
            hold: SimTime::from_us(5),
            clock_error: SimTime::from_us(1),
            seed: 0xC10D,
        }
    }
}

/// The overlay feed distribution [`CloudFabric::build_overlay_feed`]
/// lays out: relay tree plus one equalizer gate per subscriber.
pub struct CloudOverlayFeed {
    /// Root relay — publishers send into `overlay::RELAY_IN` here.
    pub root: NodeId,
    /// All relay nodes, root first.
    pub relays: Vec<NodeId>,
    /// One `DelayEqualizer` per subscriber, in subscriber order; its
    /// `equalizer::OUT` awaits the subscriber link.
    pub gates: Vec<NodeId>,
    /// Overlay depth in relay levels.
    pub depth: usize,
}

/// The built cloud fabric.
pub struct CloudFabric {
    /// The provider fabric node (a switch with equalized latency).
    pub fabric: NodeId,
    /// Tenant attachment ports, in order.
    pub tenant_ports: Vec<PortId>,
    /// The port reserved for the on-prem exchange WAN circuit.
    pub external_port: PortId,
    cfg: CloudConfig,
    next_port: usize,
}

impl CloudFabric {
    /// Build the fabric inside `sim`.
    pub fn build(sim: &mut Simulator, cfg: CloudConfig) -> CloudFabric {
        let sw_cfg = SwitchConfig {
            // The equalization constant *is* the port-to-port latency.
            latency: cfg.equalized_latency,
            mcast_table_size: cfg.mcast_groups,
            overflow: McastOverflowPolicy::Drop,
            sw_service: SimTime::ZERO,
            sw_queue: 0,
            mcast_upstream: None,
        };
        let fabric = sim.add_node("cloud-fabric", CommoditySwitch::new(sw_cfg));
        let tenant_ports = (0..cfg.tenant_ports).map(|p| PortId(p as u16)).collect();
        let external_port = PortId(cfg.tenant_ports as u16);
        CloudFabric {
            fabric,
            tenant_ports,
            external_port,
            cfg,
            next_port: 0,
        }
    }

    /// Access-link profile for attaching a tenant.
    pub fn tenant_link(&self) -> EtherLink {
        EtherLink::new(self.cfg.access_bps, SimTime::from_ns(500))
    }

    /// WAN-link profile for the on-prem exchange circuit.
    pub fn external_link(&self) -> EtherLink {
        EtherLink::ten_gig(self.cfg.external_wan_latency)
    }

    /// Claim the next tenant port.
    pub fn take_tenant_port(&mut self) -> PortId {
        let p = self.tenant_ports[self.next_port];
        self.next_port += 1;
        p
    }

    /// Install a unicast route to a tenant address on a port.
    pub fn install_route(&self, sim: &mut Simulator, addr: ipv4::Addr, port: PortId) {
        sim.node_mut::<CommoditySwitch>(self.fabric)
            .expect("fabric is a switch")
            .add_route(addr, vec![port]);
    }

    /// The equalized latency constant.
    pub fn equalized_latency(&self) -> SimTime {
        self.cfg.equalized_latency
    }

    /// The fairness spec this fabric was built with.
    pub fn fairness(&self) -> &CloudFairnessSpec {
        &self.cfg.fairness
    }

    /// A raw VM-to-VM unicast link for overlay hop `edge`, jitter-wrapped
    /// through `FaultLink` when the spec asks for it. Edge indices
    /// derive disjoint per-link jitter seeds, so topologies are
    /// digest-stable for a fixed spec seed.
    pub fn overlay_link(&self, edge: u64) -> Box<dyn Link> {
        let f = &self.cfg.fairness;
        let base = EtherLink::new(self.cfg.access_bps, f.vm_prop);
        if f.hop_jitter > SimTime::ZERO {
            let seed = f.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(edge + 1);
            Box::new(FaultLink::wrap(
                base,
                FaultSpec::new(seed).with_jitter(f.hop_jitter),
            ))
        } else {
            Box::new(base)
        }
    }

    /// Build the software multicast overlay plus per-subscriber
    /// equalizer gates that replace provider multicast for the firm's
    /// internal feed. Publishers attach into the returned root; each
    /// subscriber attaches behind its gate's `equalizer::OUT`.
    ///
    /// Panics if the spec is disabled — callers gate on
    /// [`CloudFairnessSpec::enabled`].
    pub fn build_overlay_feed(&self, sim: &mut Simulator, subscribers: usize) -> CloudOverlayFeed {
        let f = &self.cfg.fairness;
        assert!(
            f.enabled(),
            "build_overlay_feed needs an enabled fairness spec"
        );
        let cfg = OverlayTreeConfig {
            fanout: f.overlay_fanout,
            leaves: subscribers,
            copy_gap: f.copy_gap,
        };
        let tree = OverlayTree::build(sim, "cloud-ov", &cfg, |i| self.overlay_link(i as u64));
        let mut gates = Vec::with_capacity(subscribers);
        for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
            let gate = sim.add_node(
                format!("cloud-gate{s}"),
                DelayEqualizer::new(EqualizerConfig {
                    ceiling: f.ceiling,
                    residual: f.residual,
                    seed: f.seed ^ (0xEA00_0000u64 + s as u64),
                }),
            );
            // The leaf's own VM hop lands in front of the gate; leaf
            // edge indices sit far above any realistic tree edge count.
            sim.install_link(
                relay,
                port,
                gate,
                equalizer::IN,
                self.overlay_link(1 << 40 | s as u64),
            );
            gates.push(gate);
        }
        CloudOverlayFeed {
            root: tree.root,
            relays: tree.relays,
            gates,
            depth: tree.depth,
        }
    }

    /// Build the hold-and-release sequencer guarding an order-entry
    /// port. The caller splices it between the fabric and the exchange.
    pub fn build_sequencer(&self, sim: &mut Simulator) -> NodeId {
        let f = &self.cfg.fairness;
        sim.add_node(
            "cloud-seq",
            HoldReleaseSequencer::new(SequencerConfig {
                hold: f.hold,
                clock_error: f.clock_error,
                seed: f.seed ^ 0x5EC0_0000,
            }),
        )
    }

    /// The relay input port publishers send into (re-exported so design
    /// wiring needs only the topo crate).
    pub fn overlay_in(&self) -> PortId {
        RELAY_IN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{Context, Frame, Node};
    use tn_wire::{eth, stack};

    struct Sink {
        got: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, _f: Frame) {
            self.got.push(ctx.now());
        }
    }

    /// Bidirectional hookup of an already-built Ethernet link model
    /// (goes through `install_link`; no `LinkSpec` equivalent).
    fn attach(sim: &mut Simulator, fabric: NodeId, port: PortId, host: NodeId, link: EtherLink) {
        sim.install_link(fabric, port, host, PortId(0), Box::new(link.clone()));
        sim.install_link(host, PortId(0), fabric, port, Box::new(link));
    }

    #[test]
    fn all_tenant_pairs_see_equal_latency() {
        let mut sim = Simulator::new(1);
        let mut cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 4,
                ..CloudConfig::default()
            },
        );
        let mut hosts = Vec::new();
        for i in 0..4u32 {
            let port = cloud.take_tenant_port();
            let h = sim.add_node(format!("t{i}"), Sink { got: vec![] });
            attach(&mut sim, cloud.fabric, port, h, cloud.tenant_link());
            cloud.install_route(&mut sim, ipv4::Addr::host(i + 1), port);
            hosts.push((h, port));
        }
        // Send from tenant 0 to tenants 1..3; arrival deltas must match.
        let mut arrivals = Vec::new();
        for dst in 1..4u32 {
            let frame = stack::build_udp(
                eth::MacAddr::host(1),
                Some(eth::MacAddr::host(dst + 1)),
                ipv4::Addr::host(1),
                ipv4::Addr::host(dst + 1),
                1,
                2,
                &[0u8; 60],
            );
            let f = sim.frame().copy_from(&frame).build();
            let t0 = sim.now();
            sim.inject_frame(t0, cloud.fabric, hosts[0].1, f);
            sim.run();
            let got = sim.node::<Sink>(hosts[dst as usize].0).unwrap().got.clone();
            arrivals.push(got[0] - t0);
        }
        assert_eq!(arrivals[0], arrivals[1]);
        assert_eq!(arrivals[1], arrivals[2]);
        // And the constant dwarfs a colo switch hop.
        assert!(arrivals[0] >= SimTime::from_us(50));
    }

    #[test]
    fn provider_multicast_is_generous() {
        let mut sim = Simulator::new(1);
        let cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 2,
                ..CloudConfig::default()
            },
        );
        let sw = sim.node::<CommoditySwitch>(cloud.fabric).unwrap();
        assert_eq!(sw.hw_group_count(), 0);
        // The group budget is far beyond any commodity switch (§3's
        // thousands): the cloud's pitch is scale.
        assert!(cloud.cfg.mcast_groups >= 100_000);
    }

    #[test]
    fn overlay_feed_equalizes_when_ceiling_covers_the_tree() {
        let mut sim = Simulator::new(9);
        let mut cfg = CloudConfig {
            tenant_ports: 2,
            ..CloudConfig::default()
        };
        cfg.fairness = CloudFairnessSpec {
            hop_jitter: SimTime::ZERO,
            residual: SimTime::ZERO,
            ceiling: SimTime::from_us(200),
            ..CloudFairnessSpec::demo()
        };
        let cloud = CloudFabric::build(&mut sim, cfg);
        let feed = cloud.build_overlay_feed(&mut sim, 6);
        assert_eq!(feed.gates.len(), 6);
        assert!(feed.depth >= 1);
        let mut sinks = Vec::new();
        for (s, &gate) in feed.gates.iter().enumerate() {
            let sink = sim.add_node(format!("sub{s}"), Sink { got: vec![] });
            sim.install_link(
                gate,
                tn_cloud::equalizer::OUT,
                sink,
                PortId(0),
                Box::new(tn_sim::IdealLink::new(SimTime::ZERO)),
            );
            sinks.push(sink);
        }
        let f = sim.frame().zeroed(200).build();
        sim.inject_frame(SimTime::ZERO, feed.root, cloud.overlay_in(), f);
        sim.run();
        let first = sim.node::<Sink>(sinks[0]).unwrap().got[0];
        for &s in &sinks {
            let got = &sim.node::<Sink>(s).unwrap().got;
            assert_eq!(got.len(), 1, "each subscriber hears the event once");
            assert_eq!(
                got[0], first,
                "zero jitter + covering ceiling ⇒ zero spread"
            );
        }
        // Fairness charged latency: release at the ceiling, far above a
        // single VM hop.
        assert!(first >= SimTime::from_us(200));
    }

    #[test]
    fn sequencer_node_is_buildable_and_holds_orders() {
        let mut sim = Simulator::new(4);
        let cfg = CloudConfig {
            fairness: CloudFairnessSpec::demo(),
            ..CloudConfig::default()
        };
        let cloud = CloudFabric::build(&mut sim, cfg);
        let seq = cloud.build_sequencer(&mut sim);
        let sink = sim.add_node("exch", Sink { got: vec![] });
        sim.install_link(
            seq,
            tn_cloud::sequencer::OUT,
            sink,
            PortId(0),
            Box::new(tn_sim::IdealLink::new(SimTime::ZERO)),
        );
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::from_us(1), seq, tn_cloud::sequencer::IN, f);
        sim.run();
        let got = &sim.node::<Sink>(sink).unwrap().got;
        assert_eq!(got.len(), 1);
        // Released exactly one hold window after arrival.
        assert_eq!(got[0], SimTime::from_us(1) + CloudFairnessSpec::demo().hold);
    }

    #[test]
    fn external_exchange_pays_wan_latency() {
        let mut sim = Simulator::new(1);
        let mut cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 2,
                ..CloudConfig::default()
            },
        );
        let t_port = cloud.take_tenant_port();
        let tenant = sim.add_node("tenant", Sink { got: vec![] });
        attach(&mut sim, cloud.fabric, t_port, tenant, cloud.tenant_link());
        let exch = sim.add_node("exch", Sink { got: vec![] });
        attach(
            &mut sim,
            cloud.fabric,
            cloud.external_port,
            exch,
            cloud.external_link(),
        );
        cloud.install_route(
            &mut sim,
            ipv4::Addr::new(10, 200, 1, 1),
            cloud.external_port,
        );

        let frame = stack::build_udp(
            eth::MacAddr::host(1),
            Some(eth::MacAddr::host(2)),
            ipv4::Addr::host(1),
            ipv4::Addr::new(10, 200, 1, 1),
            1,
            2,
            &[0u8; 26],
        );
        let f = sim.frame().copy_from(&frame).build();
        sim.inject_frame(SimTime::ZERO, cloud.fabric, t_port, f);
        sim.run();
        let got = &sim.node::<Sink>(exch).unwrap().got;
        assert_eq!(got.len(), 1);
        // Equalization + WAN: around a millisecond — §4.2's "latency for
        // communication beyond the cloud will be excessive".
        assert!(got[0] >= SimTime::from_ms(1));
    }
}
