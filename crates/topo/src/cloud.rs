//! Design 2: the latency-equalized cloud (§4.2).
//!
//! Cloud proposals for fair financial networks (DBO and cloud-exchange
//! work the paper cites) assume the provider manages a fabric whose
//! tenant-to-tenant latency is *equalized* — nobody wins by rack
//! placement. We model that as a provider fabric node that delivers every
//! frame at `equalized_latency` regardless of source or destination pair,
//! with provider-managed multicast.
//!
//! The §4.2 critique is then quantitative: the equalization constant is
//! orders of magnitude above colo switching (tens to hundreds of
//! microseconds versus 500 ns), and traffic to exchanges that stay
//! *outside* the cloud pays a WAN penalty on top.

use tn_netdev::EtherLink;
use tn_sim::{NodeId, PortId, SimTime, Simulator};
use tn_switch::{CommoditySwitch, McastOverflowPolicy, SwitchConfig};
use tn_wire::ipv4;

/// Cloud fabric parameters.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Number of tenant attachment ports.
    pub tenant_ports: usize,
    /// The equalized one-way latency between any two tenants. Public
    /// proposals land in the tens-to-hundreds of microseconds.
    pub equalized_latency: SimTime,
    /// Multicast groups the provider offers a tenant (generous: the
    /// cloud's win is scale-out, not group count).
    pub mcast_groups: usize,
    /// WAN latency to reach an exchange that stays on-prem (one way).
    pub external_wan_latency: SimTime,
    /// Tenant access bandwidth.
    pub access_bps: u64,
}

impl Default for CloudConfig {
    fn default() -> CloudConfig {
        CloudConfig {
            tenant_ports: 1024,
            equalized_latency: SimTime::from_us(50),
            mcast_groups: 100_000,
            external_wan_latency: SimTime::from_ms(1),
            access_bps: 100_000_000_000,
        }
    }
}

/// The built cloud fabric.
pub struct CloudFabric {
    /// The provider fabric node (a switch with equalized latency).
    pub fabric: NodeId,
    /// Tenant attachment ports, in order.
    pub tenant_ports: Vec<PortId>,
    /// The port reserved for the on-prem exchange WAN circuit.
    pub external_port: PortId,
    cfg: CloudConfig,
    next_port: usize,
}

impl CloudFabric {
    /// Build the fabric inside `sim`.
    pub fn build(sim: &mut Simulator, cfg: CloudConfig) -> CloudFabric {
        let sw_cfg = SwitchConfig {
            // The equalization constant *is* the port-to-port latency.
            latency: cfg.equalized_latency,
            mcast_table_size: cfg.mcast_groups,
            overflow: McastOverflowPolicy::Drop,
            sw_service: SimTime::ZERO,
            sw_queue: 0,
            mcast_upstream: None,
        };
        let fabric = sim.add_node("cloud-fabric", CommoditySwitch::new(sw_cfg));
        let tenant_ports = (0..cfg.tenant_ports).map(|p| PortId(p as u16)).collect();
        let external_port = PortId(cfg.tenant_ports as u16);
        CloudFabric {
            fabric,
            tenant_ports,
            external_port,
            cfg,
            next_port: 0,
        }
    }

    /// Access-link profile for attaching a tenant.
    pub fn tenant_link(&self) -> EtherLink {
        EtherLink::new(self.cfg.access_bps, SimTime::from_ns(500))
    }

    /// WAN-link profile for the on-prem exchange circuit.
    pub fn external_link(&self) -> EtherLink {
        EtherLink::ten_gig(self.cfg.external_wan_latency)
    }

    /// Claim the next tenant port.
    pub fn take_tenant_port(&mut self) -> PortId {
        let p = self.tenant_ports[self.next_port];
        self.next_port += 1;
        p
    }

    /// Install a unicast route to a tenant address on a port.
    pub fn install_route(&self, sim: &mut Simulator, addr: ipv4::Addr, port: PortId) {
        sim.node_mut::<CommoditySwitch>(self.fabric)
            .expect("fabric is a switch")
            .add_route(addr, vec![port]);
    }

    /// The equalized latency constant.
    pub fn equalized_latency(&self) -> SimTime {
        self.cfg.equalized_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{Context, Frame, Node};
    use tn_wire::{eth, stack};

    struct Sink {
        got: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, _f: Frame) {
            self.got.push(ctx.now());
        }
    }

    /// Bidirectional hookup of an already-built Ethernet link model
    /// (goes through `install_link`; no `LinkSpec` equivalent).
    fn attach(sim: &mut Simulator, fabric: NodeId, port: PortId, host: NodeId, link: EtherLink) {
        sim.install_link(fabric, port, host, PortId(0), Box::new(link.clone()));
        sim.install_link(host, PortId(0), fabric, port, Box::new(link));
    }

    #[test]
    fn all_tenant_pairs_see_equal_latency() {
        let mut sim = Simulator::new(1);
        let mut cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 4,
                ..CloudConfig::default()
            },
        );
        let mut hosts = Vec::new();
        for i in 0..4u32 {
            let port = cloud.take_tenant_port();
            let h = sim.add_node(format!("t{i}"), Sink { got: vec![] });
            attach(&mut sim, cloud.fabric, port, h, cloud.tenant_link());
            cloud.install_route(&mut sim, ipv4::Addr::host(i + 1), port);
            hosts.push((h, port));
        }
        // Send from tenant 0 to tenants 1..3; arrival deltas must match.
        let mut arrivals = Vec::new();
        for dst in 1..4u32 {
            let frame = stack::build_udp(
                eth::MacAddr::host(1),
                Some(eth::MacAddr::host(dst + 1)),
                ipv4::Addr::host(1),
                ipv4::Addr::host(dst + 1),
                1,
                2,
                &[0u8; 60],
            );
            let f = sim.frame().copy_from(&frame).build();
            let t0 = sim.now();
            sim.inject_frame(t0, cloud.fabric, hosts[0].1, f);
            sim.run();
            let got = sim.node::<Sink>(hosts[dst as usize].0).unwrap().got.clone();
            arrivals.push(got[0] - t0);
        }
        assert_eq!(arrivals[0], arrivals[1]);
        assert_eq!(arrivals[1], arrivals[2]);
        // And the constant dwarfs a colo switch hop.
        assert!(arrivals[0] >= SimTime::from_us(50));
    }

    #[test]
    fn provider_multicast_is_generous() {
        let mut sim = Simulator::new(1);
        let cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 2,
                ..CloudConfig::default()
            },
        );
        let sw = sim.node::<CommoditySwitch>(cloud.fabric).unwrap();
        assert_eq!(sw.hw_group_count(), 0);
        // The group budget is far beyond any commodity switch (§3's
        // thousands): the cloud's pitch is scale.
        assert!(cloud.cfg.mcast_groups >= 100_000);
    }

    #[test]
    fn external_exchange_pays_wan_latency() {
        let mut sim = Simulator::new(1);
        let mut cloud = CloudFabric::build(
            &mut sim,
            CloudConfig {
                tenant_ports: 2,
                ..CloudConfig::default()
            },
        );
        let t_port = cloud.take_tenant_port();
        let tenant = sim.add_node("tenant", Sink { got: vec![] });
        attach(&mut sim, cloud.fabric, t_port, tenant, cloud.tenant_link());
        let exch = sim.add_node("exch", Sink { got: vec![] });
        attach(
            &mut sim,
            cloud.fabric,
            cloud.external_port,
            exch,
            cloud.external_link(),
        );
        cloud.install_route(
            &mut sim,
            ipv4::Addr::new(10, 200, 1, 1),
            cloud.external_port,
        );

        let frame = stack::build_udp(
            eth::MacAddr::host(1),
            Some(eth::MacAddr::host(2)),
            ipv4::Addr::host(1),
            ipv4::Addr::new(10, 200, 1, 1),
            1,
            2,
            &[0u8; 26],
        );
        let f = sim.frame().copy_from(&frame).build();
        sim.inject_frame(SimTime::ZERO, cloud.fabric, t_port, f);
        sim.run();
        let got = &sim.node::<Sink>(exch).unwrap().got;
        assert_eq!(got.len(), 1);
        // Equalization + WAN: around a millisecond — §4.2's "latency for
        // communication beyond the cloud will be excessive".
        assert!(got[0] >= SimTime::from_ms(1));
    }
}
