//! Design 1: commodity leaf-and-spine (§4.1).
//!
//! A standard two-tier Clos: every rack's ToR (leaf) uplinks to every
//! spine; one leaf is *dedicated to exchange connectivity* so that every
//! host is equidistant from the exchange and policy can be enforced at
//! one choke point, exactly as §4.1 describes.
//!
//! Unicast routing is host-granular: leaves know their local hosts and
//! default-route (ECMP over all spines) everything else; spines know
//! which leaf owns every host. Multicast is rendezvous-rooted at spine 0:
//! joins propagate leaf → spine 0, and data is always hauled to the
//! rendezvous, then down the member tree.
//!
//! §4.1's hop arithmetic emerges directly: a frame from an exchange-ToR
//! host to a host in another rack crosses leaf → spine → leaf = 3 switch
//! hops one way; the paper's normalizer → strategy → gateway round trip
//! (exchange → … → exchange) is 4 such legs = 12 switch hops.

use tn_netdev::EtherLink;
use tn_sim::{NodeId, PortId, SimTime, Simulator};
use tn_switch::{CommoditySwitch, SwitchConfig};
use tn_wire::ipv4;

/// Configuration for the leaf-spine fabric.
#[derive(Debug, Clone)]
pub struct LeafSpineConfig {
    /// Number of server racks (excluding the dedicated exchange ToR).
    pub racks: usize,
    /// Host ports per rack.
    pub hosts_per_rack: usize,
    /// Number of spines.
    pub spines: usize,
    /// Ports on the exchange ToR reserved for exchange cross-connects.
    pub exchange_ports: usize,
    /// Per-switch parameters (latency, mcast table, fallback).
    pub switch: SwitchConfig,
    /// Host access link rate (bits/sec); §2's cross-connects are 10G.
    pub host_link_bps: u64,
    /// Fabric (leaf-spine) link rate.
    pub fabric_link_bps: u64,
    /// Propagation on in-building links.
    pub link_propagation: SimTime,
}

impl Default for LeafSpineConfig {
    /// The paper's scale target: ~1000 servers. 32 racks x 32 hosts with
    /// 4 spines gives 1024 host ports.
    fn default() -> LeafSpineConfig {
        LeafSpineConfig {
            racks: 32,
            hosts_per_rack: 32,
            spines: 4,
            exchange_ports: 4,
            switch: SwitchConfig::default(),
            host_link_bps: 10_000_000_000,
            fabric_link_bps: 100_000_000_000,
            link_propagation: SimTime::from_ns(25), // ~5 m of fiber
        }
    }
}

/// A built fabric: switch node ids and host attachment points.
pub struct LeafSpine {
    /// The dedicated exchange ToR.
    pub exchange_tor: NodeId,
    /// Server-rack leaves.
    pub leaves: Vec<NodeId>,
    /// Spines (index 0 is the multicast rendezvous).
    pub spines: Vec<NodeId>,
    /// Free host attachment points as `(leaf, port)`, rack-major order.
    pub host_ports: Vec<(NodeId, PortId)>,
    /// Exchange attachment points on the exchange ToR.
    pub exchange_attach: Vec<(NodeId, PortId)>,
    cfg: LeafSpineConfig,
    next_in_rack: Vec<usize>,
}

impl LeafSpine {
    /// Build the fabric inside `sim`.
    pub fn build(sim: &mut Simulator, cfg: LeafSpineConfig) -> LeafSpine {
        assert!(cfg.racks >= 1 && cfg.spines >= 1 && cfg.hosts_per_rack >= 1);
        let uplink_base = |host_ports: usize| host_ports as u16;

        // Spines first. Spine ports: one per leaf (including exchange ToR).
        let total_leaves = cfg.racks + 1;
        let mut spines = Vec::new();
        for s in 0..cfg.spines {
            let mut sw_cfg = cfg.switch.clone();
            sw_cfg.mcast_upstream = None; // spine 0 is the rendezvous root
            let node = sim.add_node(format!("spine{s}"), CommoditySwitch::new(sw_cfg));
            spines.push(node);
        }

        // Exchange ToR: ports 0..exchange_ports face exchanges, then
        // uplinks to each spine.
        let mut tor_cfg = cfg.switch.clone();
        tor_cfg.mcast_upstream = Some(PortId(uplink_base(cfg.exchange_ports)));
        let exchange_tor = sim.add_node("exchange-tor", CommoditySwitch::new(tor_cfg));

        // Server leaves: ports 0..hosts_per_rack face hosts, then uplinks.
        let mut leaves = Vec::new();
        for r in 0..cfg.racks {
            let mut leaf_cfg = cfg.switch.clone();
            leaf_cfg.mcast_upstream = Some(PortId(uplink_base(cfg.hosts_per_rack)));
            let node = sim.add_node(format!("leaf{r}"), CommoditySwitch::new(leaf_cfg));
            leaves.push(node);
        }

        // Wire uplinks: leaf port (base + s) <-> spine port (leaf index).
        // Leaf index on spines: 0 = exchange ToR, 1.. = racks.
        let fabric_link = || EtherLink::new(cfg.fabric_link_bps, cfg.link_propagation);
        // Fabric links are concrete EtherLink models, so they attach via
        // the raw `install_link` primitive, one instance per direction.
        let attach = |sim: &mut Simulator, a: NodeId, ap: PortId, b: NodeId, bp: PortId| {
            sim.install_link(a, ap, b, bp, Box::new(fabric_link()));
            sim.install_link(b, bp, a, ap, Box::new(fabric_link()));
        };
        for (s, &spine) in spines.iter().enumerate() {
            attach(
                sim,
                exchange_tor,
                PortId(uplink_base(cfg.exchange_ports) + s as u16),
                spine,
                PortId(0),
            );
            for (r, &leaf) in leaves.iter().enumerate() {
                attach(
                    sim,
                    leaf,
                    PortId(uplink_base(cfg.hosts_per_rack) + s as u16),
                    spine,
                    PortId(1 + r as u16),
                );
            }
        }
        let _ = total_leaves;

        let host_ports = leaves
            .iter()
            .flat_map(|&leaf| (0..cfg.hosts_per_rack).map(move |p| (leaf, PortId(p as u16))))
            .collect();
        let exchange_attach = (0..cfg.exchange_ports)
            .map(|p| (exchange_tor, PortId(p as u16)))
            .collect();

        let racks = cfg.racks;
        LeafSpine {
            exchange_tor,
            leaves,
            spines,
            host_ports,
            exchange_attach,
            cfg,
            next_in_rack: vec![0; racks],
        }
    }

    /// Total host attachment capacity.
    pub fn host_capacity(&self) -> usize {
        self.host_ports.len()
    }

    /// The access link profile for attaching hosts.
    pub fn host_link(&self) -> EtherLink {
        EtherLink::new(self.cfg.host_link_bps, self.cfg.link_propagation)
    }

    /// Claim the next free host port anywhere (rack-major order).
    pub fn take_host_port(&mut self) -> (NodeId, PortId) {
        for rack in 0..self.cfg.racks {
            if self.next_in_rack[rack] < self.cfg.hosts_per_rack {
                return self.take_host_port_in_rack(rack);
            }
        }
        panic!("fabric is full");
    }

    /// Claim the next free host port in a specific rack (panics when the
    /// rack is full) — functions are grouped by rack, per §4.1.
    pub fn take_host_port_in_rack(&mut self, rack: usize) -> (NodeId, PortId) {
        let next = self.next_in_rack[rack];
        assert!(next < self.cfg.hosts_per_rack, "rack {rack} is full");
        self.next_in_rack[rack] = next + 1;
        (self.leaves[rack], PortId(next as u16))
    }

    /// Install unicast routes for a host with address `addr` attached at
    /// `(leaf, port)`. Call after attaching each host.
    pub fn install_host_routes(
        &self,
        sim: &mut Simulator,
        leaf: NodeId,
        port: PortId,
        addr: ipv4::Addr,
    ) {
        // The owning leaf delivers locally.
        sim.node_mut::<CommoditySwitch>(leaf)
            .expect("leaf is a commodity switch")
            .add_route(addr, vec![port]);
        // Every spine routes toward the owning leaf.
        let leaf_index = if leaf == self.exchange_tor {
            0u16
        } else {
            1 + self
                .leaves
                .iter()
                .position(|&l| l == leaf)
                .expect("leaf belongs to this fabric") as u16
        };
        for &spine in &self.spines {
            sim.node_mut::<CommoditySwitch>(spine)
                .expect("spine is a commodity switch")
                .add_route(addr, vec![PortId(leaf_index)]);
        }
        // All other leaves (and the exchange ToR) default-route up; make
        // sure defaults exist (idempotent).
        let uplinks_tor: Vec<PortId> = (0..self.cfg.spines)
            .map(|s| PortId((self.cfg.exchange_ports + s) as u16))
            .collect();
        sim.node_mut::<CommoditySwitch>(self.exchange_tor)
            .expect("tor")
            .set_default_route(uplinks_tor);
        for &l in &self.leaves {
            let uplinks: Vec<PortId> = (0..self.cfg.spines)
                .map(|s| PortId((self.cfg.hosts_per_rack + s) as u16))
                .collect();
            sim.node_mut::<CommoditySwitch>(l)
                .expect("leaf")
                .set_default_route(uplinks);
        }
    }

    /// Switch hops between two attachment points (for latency budgets):
    /// same leaf = 1, different leaves = 3 (leaf, spine, leaf).
    pub fn switch_hops(&self, a_leaf: NodeId, b_leaf: NodeId) -> usize {
        if a_leaf == b_leaf {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{Context, Frame, Node};
    use tn_wire::{eth, stack};

    struct Sink {
        got: Vec<(SimTime, Vec<u8>)>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.got.push((ctx.now(), f.bytes));
        }
    }

    /// Bidirectional host hookup through the fabric's Ethernet profile
    /// (an already-built link model, so it goes through `install_link`).
    fn attach_host(
        sim: &mut Simulator,
        fabric: &LeafSpine,
        leaf: NodeId,
        port: PortId,
        host: NodeId,
    ) {
        let link = fabric.host_link();
        sim.install_link(leaf, port, host, PortId(0), Box::new(link.clone()));
        sim.install_link(host, PortId(0), leaf, port, Box::new(link));
    }

    fn small_cfg() -> LeafSpineConfig {
        LeafSpineConfig {
            racks: 3,
            hosts_per_rack: 2,
            spines: 2,
            exchange_ports: 1,
            ..LeafSpineConfig::default()
        }
    }

    #[test]
    fn default_scale_hits_1000_servers() {
        // §4: "support a network of roughly 1,000 servers".
        let mut sim = Simulator::new(1);
        let fabric = LeafSpine::build(&mut sim, LeafSpineConfig::default());
        assert!(fabric.host_capacity() >= 1000);
        assert_eq!(fabric.leaves.len(), 32);
        assert_eq!(fabric.spines.len(), 4);
    }

    #[test]
    fn unicast_crosses_three_switches() {
        let mut sim = Simulator::new(1);
        let mut fabric = LeafSpine::build(&mut sim, small_cfg());
        // Host A in rack 0, host B in rack 1.
        let (leaf_a, port_a) = fabric.take_host_port();
        let (leaf_b, port_b) = {
            // skip to rack 1's first port
            fabric.take_host_port();
            fabric.take_host_port()
        };
        assert_ne!(leaf_a, leaf_b);
        let a = sim.add_node("a", Sink { got: vec![] });
        let b = sim.add_node("b", Sink { got: vec![] });
        attach_host(&mut sim, &fabric, leaf_a, port_a, a);
        attach_host(&mut sim, &fabric, leaf_b, port_b, b);
        let addr_a = ipv4::Addr::host(1);
        let addr_b = ipv4::Addr::host(2);
        fabric.install_host_routes(&mut sim, leaf_a, port_a, addr_a);
        fabric.install_host_routes(&mut sim, leaf_b, port_b, addr_b);

        let frame = stack::build_udp(
            eth::MacAddr::host(1),
            Some(eth::MacAddr::host(2)),
            addr_a,
            addr_b,
            1,
            2,
            &[0u8; 58],
        );
        let f = sim.frame().copy_from(&frame).build();
        sim.inject_frame(SimTime::ZERO, leaf_a, port_a, f);
        sim.run();
        let got = &sim.node::<Sink>(b).unwrap().got;
        assert_eq!(got.len(), 1);
        // 3 switch hops at 500 ns each dominate; plus 2 fabric links + 1
        // host link of serialization/propagation.
        let t = got[0].0;
        assert!(t >= SimTime::from_ns(1500), "{t}");
        assert!(t < SimTime::from_ns(2200), "{t}");
        assert!(sim.node::<Sink>(a).unwrap().got.is_empty());
    }

    #[test]
    fn multicast_reaches_joined_hosts_across_racks() {
        let mut sim = Simulator::new(1);
        let mut fabric = LeafSpine::build(&mut sim, small_cfg());
        let group = ipv4::Addr::multicast_group(7);
        // Receiver in rack 2, source at the exchange ToR.
        let (leaf_r, port_r) = {
            for _ in 0..4 {
                fabric.take_host_port();
            }
            fabric.take_host_port()
        };
        let r = sim.add_node("r", Sink { got: vec![] });
        attach_host(&mut sim, &fabric, leaf_r, port_r, r);
        let (tor, xport) = fabric.exchange_attach[0];
        let src = sim.add_node("exch", Sink { got: vec![] });
        attach_host(&mut sim, &fabric, tor, xport, src);

        // Join from the receiver.
        let join = tn_switch::commodity::igmp_frame(
            tn_wire::igmp::MessageType::Report,
            eth::MacAddr::host(9),
            ipv4::Addr::host(9),
            group,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, leaf_r, port_r, f);
        sim.run();

        // Feed data from the exchange port.
        let data = stack::build_udp(
            eth::MacAddr::host(1),
            None,
            ipv4::Addr::new(10, 200, 1, 1),
            group,
            30_001,
            30_001,
            &[0xAB; 100],
        );
        let f = sim.frame().copy_from(&data).build();
        let t0 = sim.now();
        sim.inject_frame(t0, tor, xport, f);
        sim.run();
        let got = &sim.node::<Sink>(r).unwrap().got;
        assert_eq!(got.len(), 1, "receiver should get exactly one copy");
        // ToR -> spine0 -> leaf -> host: 3 switch hops ≈ 1.5 us+.
        let dt = got[0].0 - t0;
        assert!(dt >= SimTime::from_ns(1500), "{dt}");
        // Non-joined host (the source sink) sees nothing back.
        assert!(sim.node::<Sink>(src).unwrap().got.is_empty());
    }

    #[test]
    fn hop_count_model() {
        let mut sim = Simulator::new(1);
        let fabric = LeafSpine::build(&mut sim, small_cfg());
        assert_eq!(fabric.switch_hops(fabric.leaves[0], fabric.leaves[0]), 1);
        assert_eq!(fabric.switch_hops(fabric.leaves[0], fabric.leaves[1]), 3);
        assert_eq!(fabric.switch_hops(fabric.exchange_tor, fabric.leaves[2]), 3);
    }
}
