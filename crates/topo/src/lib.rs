//! # tn-topo — network designs for trading systems
//!
//! Builders for the three §4 designs plus the metro-region substrate:
//!
//! * [`leafspine`] — Design 1: commodity leaf-and-spine with a dedicated
//!   exchange ToR, L3 unicast with ECMP, and rendezvous-rooted multicast.
//! * [`cloud`] — Design 2: a latency-equalized provider fabric.
//! * [`l1fabric`] — Design 3: four Layer-1 circuit networks
//!   (exchange→normalizers, normalizers→strategies, strategies→gateways,
//!   gateways→exchange) with per-strategy merge stages.
//! * [`metro`] — co-location facilities tens of miles apart connected by
//!   fiber or microwave (§2's metropolitan region).
//! * [`placement`] — rack-placement optimization: the §4.1 grouped
//!   baseline versus a latency-aware greedy packer (§5 "Cluster
//!   Management").

pub mod cloud;
pub mod l1fabric;
pub mod leafspine;
pub mod metro;
pub mod placement;

pub use cloud::{CloudConfig, CloudFabric, CloudFairnessSpec, CloudOverlayFeed};
pub use l1fabric::{L1FabricConfig, L1TradingFabric};
pub use leafspine::{LeafSpine, LeafSpineConfig};
pub use metro::{Colo, MetroRegion};
