//! Placement optimization (§4.1 / §5 "Cluster Management").
//!
//! §4.1: "We could try to reduce switch hops by placing servers in more
//! optimal ways, but in our system, the distribution of normalizers,
//! trading strategies, and order gateways is not uniform, so we could
//! only optimize placement for a few strategies and the majority would
//! not benefit." §5 asks for cluster managers that "optimize latency
//! above other criteria."
//!
//! This module makes both statements quantitative: given a leaf-spine
//! rack budget and a traffic matrix over functions (normalizer →
//! strategy → gateway chains), it computes expected switch hops for
//! * **grouped** placement (functions by rack, the §4.1 baseline),
//! * **optimized** placement (a greedy co-location pass that packs each
//!   strategy with the normalizer feed it consumes most), and
//! * the theoretical lower bound (everything in one rack).

use std::collections::HashMap;

/// A unit of work to place: which normalizer partition feeds it and
/// which gateway it sends to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyDemand {
    /// The normalizer this strategy consumes most.
    pub primary_normalizer: usize,
    /// Its gateway.
    pub gateway: usize,
    /// Relative traffic weight (events/sec).
    pub weight: u64,
}

/// A concrete assignment of every function instance to a rack.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Rack of each normalizer.
    pub normalizer_rack: Vec<usize>,
    /// Rack of each strategy.
    pub strategy_rack: Vec<usize>,
    /// Rack of each gateway.
    pub gateway_rack: Vec<usize>,
}

/// Hop model of a two-tier Clos: same rack = 1 switch hop, different
/// racks = 3 (leaf, spine, leaf).
pub fn hops(a: usize, b: usize) -> u64 {
    if a == b {
        1
    } else {
        3
    }
}

/// Weighted average switch hops on the normalizer→strategy→gateway path.
pub fn mean_path_hops(demands: &[StrategyDemand], p: &Placement) -> f64 {
    let mut total = 0u64;
    let mut weight = 0u64;
    for (s, d) in demands.iter().enumerate() {
        let h = hops(p.normalizer_rack[d.primary_normalizer], p.strategy_rack[s])
            + hops(p.strategy_rack[s], p.gateway_rack[d.gateway]);
        total += h * d.weight;
        weight += d.weight;
    }
    if weight == 0 {
        0.0
    } else {
        total as f64 / weight as f64
    }
}

/// The §4.1 baseline: functions grouped by rack in function order.
/// `slots_per_rack` bounds hosts per rack.
pub fn grouped(
    normalizers: usize,
    strategies: usize,
    gateways: usize,
    slots_per_rack: usize,
) -> Placement {
    assert!(slots_per_rack >= 1);
    let mut rack = 0usize;
    let mut used = 0usize;
    let mut place = |count: usize, out: &mut Vec<usize>, advance: bool| {
        for _ in 0..count {
            if used == slots_per_rack {
                rack += 1;
                used = 0;
            }
            out.push(rack);
            used += 1;
        }
        if advance && used > 0 {
            rack += 1;
            used = 0;
        }
    };
    let mut n = Vec::new();
    let mut s = Vec::new();
    let mut g = Vec::new();
    place(normalizers, &mut n, true);
    place(strategies, &mut s, true);
    place(gateways, &mut g, false);
    Placement {
        normalizer_rack: n,
        strategy_rack: s,
        gateway_rack: g,
    }
}

/// Greedy latency-aware placement: spread normalizers and gateways, then
/// place each strategy (heaviest first) in the rack of its primary
/// normalizer while slots remain, else the emptiest rack.
pub fn optimize(
    demands: &[StrategyDemand],
    normalizers: usize,
    gateways: usize,
    racks: usize,
    slots_per_rack: usize,
) -> Placement {
    assert!(racks >= 1);
    let mut free = vec![slots_per_rack; racks];
    // Normalizers round-robin across racks (each anchors a locality).
    let mut normalizer_rack = Vec::with_capacity(normalizers);
    for i in 0..normalizers {
        let r = i % racks;
        normalizer_rack.push(r);
        free[r] = free[r].saturating_sub(1);
    }
    // Gateways likewise.
    let mut gateway_rack = Vec::with_capacity(gateways);
    for i in 0..gateways {
        let r = i % racks;
        gateway_rack.push(r);
        free[r] = free[r].saturating_sub(1);
    }
    // Strategies, heaviest first.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(demands[s].weight));
    let mut strategy_rack = vec![0usize; demands.len()];
    for s in order {
        let want = normalizer_rack[demands[s].primary_normalizer];
        let r = if free[want] > 0 {
            want
        } else {
            // Emptiest rack (stable tie-break on index).
            (0..racks)
                .max_by_key(|&r| (free[r], usize::MAX - r))
                .expect("racks >= 1")
        };
        strategy_rack[s] = r;
        free[r] = free[r].saturating_sub(1);
    }
    Placement {
        normalizer_rack,
        strategy_rack,
        gateway_rack,
    }
}

/// Fraction of strategies co-located with their primary normalizer.
pub fn colocated_fraction(demands: &[StrategyDemand], p: &Placement) -> f64 {
    if demands.is_empty() {
        return 0.0;
    }
    let hits = demands
        .iter()
        .enumerate()
        .filter(|(s, d)| p.strategy_rack[*s] == p.normalizer_rack[d.primary_normalizer])
        .count();
    hits as f64 / demands.len() as f64
}

/// A skewed demand set: strategy `s` mostly consumes normalizer
/// `s % normalizers`, with Zipf-ish weights (few strategies dominate
/// traffic — §4.1's "distribution ... is not uniform").
pub fn skewed_demands(
    strategies: usize,
    normalizers: usize,
    gateways: usize,
) -> Vec<StrategyDemand> {
    (0..strategies)
        .map(|s| StrategyDemand {
            primary_normalizer: s % normalizers.max(1),
            gateway: s % gateways.max(1),
            weight: (1_000_000 / (s as u64 + 1)).max(1),
        })
        .collect()
}

/// Per-rack host counts implied by a placement (for capacity checks).
pub fn rack_loads(p: &Placement) -> HashMap<usize, usize> {
    let mut loads = HashMap::new();
    for &r in p
        .normalizer_rack
        .iter()
        .chain(p.strategy_rack.iter())
        .chain(p.gateway_rack.iter())
    {
        *loads.entry(r).or_insert(0) += 1;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_respects_rack_capacity() {
        let p = grouped(4, 20, 4, 8);
        let loads = rack_loads(&p);
        assert!(loads.values().all(|&c| c <= 8), "{loads:?}");
        // Functions do not share racks in grouped placement.
        for nr in &p.normalizer_rack {
            assert!(!p.strategy_rack.contains(nr));
            assert!(!p.gateway_rack.contains(nr));
        }
    }

    #[test]
    fn grouped_paths_are_all_remote() {
        let demands = skewed_demands(20, 4, 4);
        let p = grouped(4, 20, 4, 8);
        // Every leg crosses racks: 3 + 3 hops.
        assert_eq!(mean_path_hops(&demands, &p), 6.0);
        assert_eq!(colocated_fraction(&demands, &p), 0.0);
    }

    #[test]
    fn optimizer_colocates_heavy_strategies() {
        let demands = skewed_demands(40, 4, 4);
        let p = optimize(&demands, 4, 4, 8, 8);
        let loads = rack_loads(&p);
        assert!(loads.values().all(|&c| c <= 8), "{loads:?}");
        let grouped_p = grouped(4, 40, 4, 8);
        let opt_hops = mean_path_hops(&demands, &p);
        let grp_hops = mean_path_hops(&demands, &grouped_p);
        // Optimization buys a meaningful weighted-hop reduction...
        assert!(
            opt_hops < grp_hops - 0.5,
            "opt {opt_hops} vs grouped {grp_hops}"
        );
        // ...by co-locating the heavy head of the distribution.
        assert!(colocated_fraction(&demands, &p) > 0.3);
    }

    #[test]
    fn majority_does_not_benefit_when_racks_are_tight() {
        // §4.1's caveat: with many strategies per normalizer rack, only a
        // few fit next to their feed; the majority still pays 3 hops.
        let demands = skewed_demands(200, 4, 4);
        let p = optimize(&demands, 4, 4, 8, 8);
        let frac = colocated_fraction(&demands, &p);
        assert!(frac < 0.5, "only a minority can co-locate: {frac}");
        // But the *weighted* mean still improves because the co-located
        // minority carries most of the traffic.
        let grp = grouped(4, 200, 4, 8);
        assert!(mean_path_hops(&demands, &p) < mean_path_hops(&demands, &grp));
    }

    #[test]
    fn lower_bound_single_rack() {
        // Everything in one rack: 1 + 1 hops.
        let demands = skewed_demands(4, 2, 1);
        let p = Placement {
            normalizer_rack: vec![0; 2],
            strategy_rack: vec![0; 4],
            gateway_rack: vec![0; 1],
        };
        assert_eq!(mean_path_hops(&demands, &p), 2.0);
    }

    #[test]
    fn empty_demands() {
        let p = grouped(1, 1, 1, 8);
        assert_eq!(mean_path_hops(&[], &p), 0.0);
        assert_eq!(colocated_fraction(&[], &p), 0.0);
    }
}
