//! The metropolitan region: co-location facilities and inter-colo links.
//!
//! §2 / Figure 1(a): US equities and options trading spans three New
//! Jersey co-location facilities tens of miles apart; firms run private
//! WANs over fiber or microwave between them. This module captures the
//! geometry and produces the link profiles the designs attach to.

use tn_netdev::{fiber_propagation, microwave_propagation, EtherLink};
use tn_sim::SimTime;

/// A co-location facility.
#[derive(Debug, Clone, PartialEq)]
pub struct Colo {
    /// Facility name.
    pub name: &'static str,
    /// Exchanges hosted there (names only; the simulation attaches
    /// `tn_market::Exchange`-like nodes separately).
    pub exchanges: Vec<&'static str>,
    /// Position (km, km) in a local plane, for distance computation.
    pub position: (f64, f64),
}

/// How an inter-colo circuit is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitKind {
    /// Buried fiber: reliable, ~2/3 c, effectively unlimited bandwidth.
    Fiber,
    /// Microwave: ~c, lossy, low bandwidth (§2's latency-over-reliability
    /// trade).
    Microwave,
}

/// A metropolitan region of colos.
#[derive(Debug, Clone)]
pub struct MetroRegion {
    /// The facilities.
    pub colos: Vec<Colo>,
    /// Fiber route inflation over line-of-sight (fiber never runs
    /// straight; 1.4 is typical for metro routes).
    pub fiber_route_factor: f64,
}

impl MetroRegion {
    /// The New-Jersey-like triangle of Figure 1(a): three facilities
    /// hosting the US equities/options exchanges, tens of km apart.
    pub fn nj_triangle() -> MetroRegion {
        MetroRegion {
            colos: vec![
                Colo {
                    name: "NorthColo", // Mahwah-like
                    exchanges: vec!["EXCH-N1", "EXCH-N2"],
                    position: (0.0, 0.0),
                },
                Colo {
                    name: "MidColo", // Secaucus-like
                    exchanges: vec!["EXCH-M1", "EXCH-M2", "EXCH-M3"],
                    position: (8.0, -35.0),
                },
                Colo {
                    name: "SouthColo", // Carteret-like
                    exchanges: vec!["EXCH-S1"],
                    position: (-2.0, -55.0),
                },
            ],
            fiber_route_factor: 1.4,
        }
    }

    /// Line-of-sight distance between colos `a` and `b`, km.
    pub fn distance_km(&self, a: usize, b: usize) -> f64 {
        let (x1, y1) = self.colos[a].position;
        let (x2, y2) = self.colos[b].position;
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }

    /// One-way propagation delay between colos over the given medium.
    pub fn propagation(&self, a: usize, b: usize, kind: CircuitKind) -> SimTime {
        let d = self.distance_km(a, b);
        match kind {
            CircuitKind::Fiber => fiber_propagation(d * self.fiber_route_factor),
            CircuitKind::Microwave => microwave_propagation(d),
        }
    }

    /// A link profile for the circuit between colos `a` and `b`.
    /// Microwave circuits get realistic loss and constrained bandwidth.
    pub fn circuit(&self, a: usize, b: usize, kind: CircuitKind) -> EtherLink {
        match kind {
            CircuitKind::Fiber => EtherLink::ten_gig(self.propagation(a, b, kind)),
            CircuitKind::Microwave => {
                EtherLink::new(1_000_000_000, self.propagation(a, b, kind)).with_loss(0.0005)
            }
        }
    }

    /// The latency edge microwave holds over fiber on a route, one way.
    pub fn microwave_advantage(&self, a: usize, b: usize) -> SimTime {
        self.propagation(a, b, CircuitKind::Fiber)
            .saturating_sub(self.propagation(a, b, CircuitKind::Microwave))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_distances_are_tens_of_km() {
        let m = MetroRegion::nj_triangle();
        assert_eq!(m.colos.len(), 3);
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    let d = m.distance_km(a, b);
                    assert!((10.0..80.0).contains(&d), "{a}->{b}: {d} km");
                }
            }
        }
        assert_eq!(m.distance_km(0, 1), m.distance_km(1, 0));
    }

    #[test]
    fn microwave_beats_fiber_meaningfully() {
        // §2: microwave links are worth their unreliability because light
        // in air beats light in (longer, slower) glass by ~30-50%.
        let m = MetroRegion::nj_triangle();
        let adv = m.microwave_advantage(0, 2);
        let fiber = m.propagation(0, 2, CircuitKind::Fiber);
        let ratio = adv.as_ps() as f64 / fiber.as_ps() as f64;
        assert!(ratio > 0.3, "advantage ratio {ratio}");
        // Absolute advantage on the long leg is tens of microseconds.
        assert!(adv > SimTime::from_us(100), "{adv}");
    }

    #[test]
    fn circuit_profiles() {
        let m = MetroRegion::nj_triangle();
        use tn_sim::Link;
        let fiber = m.circuit(0, 1, CircuitKind::Fiber);
        let mw = m.circuit(0, 1, CircuitKind::Microwave);
        assert_eq!(fiber.rate(), 10_000_000_000);
        assert_eq!(mw.rate(), 1_000_000_000);
        assert!(Link::propagation(&mw) < Link::propagation(&fiber));
    }

    #[test]
    fn fiber_propagation_matches_physics() {
        // ~50 km straight-line -> 70 km routed -> ~343 us in glass.
        let m = MetroRegion::nj_triangle();
        let p = m.propagation(1, 2, CircuitKind::Fiber);
        assert!(
            p > SimTime::from_us(100) && p < SimTime::from_us(300),
            "{p}"
        );
    }
}
