//! Design 3: the four-network Layer-1 fabric (§4.3).
//!
//! "To use L1Ses in a trading system, one would essentially construct
//! four different networks between each of: exchanges and normalizers,
//! normalizers and strategies, strategies and gateways, and gateways and
//! exchanges."
//!
//! Each network is a fan-out stage (replicate a source to its consumers)
//! optionally followed by a merge stage (mux many circuits onto one
//! consumer NIC). The normalizer→strategy network is where the paper's
//! trade-off lives: every strategy takes at most `subscription_cap`
//! normalizer feeds, merged onto its single receive interface — more
//! subscriptions means more merge contention; fewer means coarser
//! partitioning.

use tn_sim::SimTime;
use tn_sim::{NodeId, PortId, Simulator};
use tn_switch::l1s::{L1Config, L1Switch};

/// Configuration for the L1 trading fabric.
#[derive(Debug, Clone)]
pub struct L1FabricConfig {
    /// Number of normalizer hosts.
    pub normalizers: usize,
    /// Number of strategy hosts.
    pub strategies: usize,
    /// Number of gateway hosts.
    pub gateways: usize,
    /// Max normalizer feeds merged onto one strategy (§4.3's cap).
    pub subscription_cap: usize,
    /// L1 timing for fan-out stages.
    pub fanout: L1Config,
    /// L1 timing for merge stages (the +50 ns path).
    pub merge: L1Config,
}

impl Default for L1FabricConfig {
    fn default() -> L1FabricConfig {
        L1FabricConfig {
            normalizers: 4,
            strategies: 16,
            gateways: 2,
            subscription_cap: 2,
            fanout: L1Config::default(),
            merge: L1Config {
                fanout_latency: SimTime::from_ns(6),
                merge_latency: SimTime::from_ns(50),
            },
        }
    }
}

/// Attachment points of one stage: where producers plug in and where each
/// consumer's merged circuit comes out.
#[derive(Debug, Clone)]
pub struct StagePorts {
    /// The switch node.
    pub switch: NodeId,
    /// Producer-facing input ports (one per producer).
    pub inputs: Vec<PortId>,
    /// Consumer-facing output ports (one per consumer).
    pub outputs: Vec<PortId>,
}

/// The four networks, built.
pub struct L1TradingFabric {
    /// Exchange feed → normalizers (pure fan-out; every normalizer gets
    /// the whole feed in ~6 ns).
    pub feed_net: StagePorts,
    /// Normalizers → strategies (fan-out per normalizer + merge per
    /// strategy, bounded by the subscription cap). `switch` here is the
    /// fan-out stage (producers attach to `inputs` on it); consumer
    /// outputs live on [`L1TradingFabric::dist_merge`].
    pub dist_net: StagePorts,
    /// Merge stage of the distribution network (strategy outputs).
    pub dist_merge: NodeId,
    /// Strategies → gateways (merge per gateway).
    pub order_net: StagePorts,
    /// Gateways → exchange (merge onto the cross-connect).
    pub entry_net: StagePorts,
    /// Which normalizers each strategy is subscribed to.
    pub subscriptions: Vec<Vec<usize>>,
}

impl L1TradingFabric {
    /// Build all four networks inside `sim`.
    pub fn build(sim: &mut Simulator, cfg: &L1FabricConfig) -> L1TradingFabric {
        assert!(cfg.subscription_cap >= 1);
        // --- Network 1: exchange -> normalizers (one input, N outputs).
        let feed_net = {
            let mut sw = L1Switch::new(cfg.fanout);
            let input = PortId(0);
            let outputs: Vec<PortId> = (0..cfg.normalizers).map(|i| PortId(1 + i as u16)).collect();
            sw.provision_fanout(input, outputs.clone());
            let switch = sim.add_node("l1-feed", sw);
            StagePorts {
                switch,
                inputs: vec![input],
                outputs,
            }
        };

        // --- Network 2: normalizers -> strategies.
        // Port map on one switch: inputs 0..N from normalizers; internal
        // merge-inputs and per-strategy outputs. Normalizer i fans out to
        // the merge inputs of its subscribers; merge input (s, k) merges
        // onto strategy s's output port.
        let dist_merge: NodeId;
        let mut subscriptions: Vec<Vec<usize>> = Vec::with_capacity(cfg.strategies);
        for s in 0..cfg.strategies {
            // Deterministic round-robin subscription: strategy s takes
            // `cap` consecutive normalizer feeds starting at s % N.
            let subs: Vec<usize> = (0..cfg.subscription_cap.min(cfg.normalizers))
                .map(|k| (s + k) % cfg.normalizers)
                .collect();
            subscriptions.push(subs);
        }
        let dist_net = {
            // Two chained switches: a fan-out stage then a merge stage.
            let mut fan = L1Switch::new(cfg.fanout);
            let mut merge = L1Switch::new(cfg.merge);
            // Fan-out switch: input i from normalizer i; output port per
            // (strategy, slot) pair toward the merge switch.
            let inputs: Vec<PortId> = (0..cfg.normalizers).map(|i| PortId(i as u16)).collect();
            let slot_port = |s: usize, k: usize| {
                PortId((cfg.normalizers + s * cfg.subscription_cap + k) as u16)
            };
            for (i, &input) in inputs.iter().enumerate() {
                let mut outs = Vec::new();
                for (s, subs) in subscriptions.iter().enumerate() {
                    for (k, &n) in subs.iter().enumerate() {
                        if n == i {
                            outs.push(slot_port(s, k));
                        }
                    }
                }
                if !outs.is_empty() {
                    fan.provision_fanout(input, outs);
                }
            }
            // Merge switch: input (s, k) -> output port for strategy s.
            let outputs: Vec<PortId> = (0..cfg.strategies)
                .map(|s| PortId((cfg.strategies * cfg.subscription_cap + s) as u16))
                .collect();
            let merge_in = |s: usize, k: usize| PortId((s * cfg.subscription_cap + k) as u16);
            for (s, subs) in subscriptions.iter().enumerate() {
                for k in 0..subs.len() {
                    merge.provision_merge(merge_in(s, k), outputs[s]);
                }
            }
            let fan_node = sim.add_node("l1-dist-fan", fan);
            let merge_node = sim.add_node("l1-dist-merge", merge);
            dist_merge = merge_node;
            // Chain the stages with zero-delay circuits.
            for (s, subs) in subscriptions.iter().enumerate() {
                for k in 0..subs.len() {
                    sim.install_link(
                        fan_node,
                        slot_port(s, k),
                        merge_node,
                        merge_in(s, k),
                        Box::new(tn_sim::IdealLink::new(SimTime::ZERO)),
                    );
                }
            }
            StagePorts {
                switch: fan_node,
                inputs,
                outputs,
            }
        };

        // --- Network 3: strategies -> gateways (merge per gateway).
        let order_net = {
            let mut sw = L1Switch::new(cfg.merge);
            let inputs: Vec<PortId> = (0..cfg.strategies).map(|i| PortId(i as u16)).collect();
            let outputs: Vec<PortId> = (0..cfg.gateways)
                .map(|g| PortId((cfg.strategies + g) as u16))
                .collect();
            for (s, &input) in inputs.iter().enumerate() {
                let g = s % cfg.gateways;
                sw.provision_merge(input, outputs[g]);
            }
            // Reverse direction: a gateway's replies fan out to all of its
            // strategies' circuits (hosts filter by address — L1 gear
            // cannot classify).
            for (g, &out) in outputs.iter().enumerate() {
                let members: Vec<PortId> = (0..cfg.strategies)
                    .filter(|s| s % cfg.gateways == g)
                    .map(|s| inputs[s])
                    .collect();
                if !members.is_empty() {
                    sw.provision_fanout(out, members);
                }
            }
            let switch = sim.add_node("l1-orders", sw);
            StagePorts {
                switch,
                inputs,
                outputs,
            }
        };

        // --- Network 4: gateways -> exchange (merge onto cross-connect).
        let entry_net = {
            let mut sw = L1Switch::new(cfg.merge);
            let inputs: Vec<PortId> = (0..cfg.gateways).map(|g| PortId(g as u16)).collect();
            let output = PortId(cfg.gateways as u16);
            for &input in &inputs {
                sw.provision_merge(input, output);
            }
            // Exchange replies fan back to every gateway circuit.
            sw.provision_fanout(output, inputs.clone());
            let switch = sim.add_node("l1-entry", sw);
            StagePorts {
                switch,
                inputs,
                outputs: vec![output],
            }
        };

        L1TradingFabric {
            feed_net,
            dist_net,
            dist_merge,
            order_net,
            entry_net,
            subscriptions,
        }
    }

    /// The merge-stage node of the distribution network (strategy outputs
    /// live there).
    pub fn dist_merge_node(&self) -> NodeId {
        self.dist_merge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{Context, Frame, Node};

    struct Sink {
        got: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, _f: Frame) {
            self.got.push(ctx.now());
        }
    }

    /// Bidirectional ideal hookup of a test sink (already-built link
    /// model, so it goes through `install_link`).
    fn attach_sink(sim: &mut Simulator, sw: NodeId, sp: PortId, sink: NodeId) {
        let link = tn_sim::IdealLink::new(SimTime::ZERO);
        sim.install_link(sw, sp, sink, PortId(0), Box::new(link.clone()));
        sim.install_link(sink, PortId(0), sw, sp, Box::new(link));
    }

    #[test]
    fn feed_net_fans_out_to_all_normalizers() {
        let mut sim = Simulator::new(1);
        let cfg = L1FabricConfig {
            normalizers: 3,
            ..L1FabricConfig::default()
        };
        let fabric = L1TradingFabric::build(&mut sim, &cfg);
        let mut sinks = Vec::new();
        for (i, &out) in fabric.feed_net.outputs.iter().enumerate() {
            let s = sim.add_node(format!("n{i}"), Sink { got: vec![] });
            attach_sink(&mut sim, fabric.feed_net.switch, out, s);
            sinks.push(s);
        }
        let f = sim.frame().zeroed(100).build();
        sim.inject_frame(
            SimTime::ZERO,
            fabric.feed_net.switch,
            fabric.feed_net.inputs[0],
            f,
        );
        sim.run();
        for s in sinks {
            let got = &sim.node::<Sink>(s).unwrap().got;
            assert_eq!(got, &vec![SimTime::from_ns(6)]);
        }
    }

    #[test]
    fn dist_net_respects_subscription_cap() {
        let mut sim = Simulator::new(1);
        let cfg = L1FabricConfig {
            normalizers: 4,
            strategies: 4,
            subscription_cap: 2,
            ..L1FabricConfig::default()
        };
        let fabric = L1TradingFabric::build(&mut sim, &cfg);
        for subs in &fabric.subscriptions {
            assert_eq!(subs.len(), 2);
        }
        // Strategy 0 subscribes to normalizers 0 and 1.
        assert_eq!(fabric.subscriptions[0], vec![0, 1]);
        // Attach a sink to strategy 0's merged output.
        let merge_node = fabric.dist_merge_node();
        let s0 = sim.add_node("s0", Sink { got: vec![] });
        attach_sink(&mut sim, merge_node, fabric.dist_net.outputs[0], s0);
        // Frames from normalizer 0 and 1 reach it; normalizer 2's don't.
        for n in 0..3u16 {
            let f = sim.frame().fill(|b| b.resize(64, n as u8)).build();
            sim.inject_frame(SimTime::ZERO, fabric.dist_net.switch, PortId(n), f);
        }
        sim.run();
        let got = &sim.node::<Sink>(s0).unwrap().got;
        assert_eq!(got.len(), 2);
        // Path: fan-out 6 ns + merge 50 ns.
        assert_eq!(got[0], SimTime::from_ns(56));
    }

    #[test]
    fn order_nets_merge_onto_gateways_and_exchange() {
        let mut sim = Simulator::new(1);
        let cfg = L1FabricConfig {
            strategies: 4,
            gateways: 2,
            ..L1FabricConfig::default()
        };
        let fabric = L1TradingFabric::build(&mut sim, &cfg);
        let g0 = sim.add_node("g0", Sink { got: vec![] });
        let g1 = sim.add_node("g1", Sink { got: vec![] });
        attach_sink(
            &mut sim,
            fabric.order_net.switch,
            fabric.order_net.outputs[0],
            g0,
        );
        attach_sink(
            &mut sim,
            fabric.order_net.switch,
            fabric.order_net.outputs[1],
            g1,
        );
        // Strategies 0..3 send one order each; 0,2 -> gw0; 1,3 -> gw1.
        for s in 0..4u16 {
            let f = sim.frame().zeroed(64).build();
            sim.inject_frame(SimTime::ZERO, fabric.order_net.switch, PortId(s), f);
        }
        sim.run();
        assert_eq!(sim.node::<Sink>(g0).unwrap().got.len(), 2);
        assert_eq!(sim.node::<Sink>(g1).unwrap().got.len(), 2);

        // Entry net: both gateways merge onto one cross-connect.
        let x = sim.add_node("x", Sink { got: vec![] });
        attach_sink(
            &mut sim,
            fabric.entry_net.switch,
            fabric.entry_net.outputs[0],
            x,
        );
        let t = sim.now();
        for g in 0..2u16 {
            let f = sim.frame().zeroed(64).build();
            sim.inject_frame(t, fabric.entry_net.switch, PortId(g), f);
        }
        sim.run();
        assert_eq!(sim.node::<Sink>(x).unwrap().got.len(), 2);
    }

    #[test]
    fn network_latency_is_two_orders_below_commodity() {
        // End-to-end L1 path: 6 (feed) + 6+50 (dist) = 62 ns of switching
        // versus 3 commodity hops = 1500 ns for the same topology depth.
        let l1_path = 6u64 + 56;
        let commodity_path = 3 * 500u64;
        assert!(commodity_path / l1_path >= 20);
        // Single fan-out hop comparison: 6 vs 500 ns ≈ two orders.
        let per_hop_ratio = L1Config::default().fanout_latency.as_ps();
        assert!(SimTime::from_ns(500).as_ps() / per_hop_ratio >= 80);
    }
}
