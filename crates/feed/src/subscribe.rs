//! Partition subscriptions.
//!
//! Strategies subscribe to the internal partitions carrying the symbols
//! they trade (§2). The set also enforces the *subscription cap* that
//! Layer-1 designs impose: with per-feed circuits instead of per-group
//! multicast, each strategy server can take only so many feeds (§4.3 "a
//! practical workaround for NIC proliferation is to restrict the total
//! number of normalizers each trading strategy can subscribe to").

use std::collections::BTreeSet;

/// A bounded set of subscribed partitions.
#[derive(Debug, Clone)]
pub struct SubscriptionSet {
    subscribed: BTreeSet<u16>,
    cap: usize,
    rejected: u64,
}

impl SubscriptionSet {
    /// An empty set with no cap.
    pub fn unbounded() -> SubscriptionSet {
        SubscriptionSet {
            subscribed: BTreeSet::new(),
            cap: usize::MAX,
            rejected: 0,
        }
    }

    /// An empty set admitting at most `cap` partitions.
    pub fn with_cap(cap: usize) -> SubscriptionSet {
        SubscriptionSet {
            subscribed: BTreeSet::new(),
            cap,
            rejected: 0,
        }
    }

    /// Subscribe to a partition. Returns `false` (and counts a rejection)
    /// if the cap is reached.
    pub fn subscribe(&mut self, partition: u16) -> bool {
        if self.subscribed.contains(&partition) {
            return true;
        }
        if self.subscribed.len() >= self.cap {
            self.rejected += 1;
            return false;
        }
        self.subscribed.insert(partition);
        true
    }

    /// Unsubscribe. Returns whether the partition was subscribed.
    pub fn unsubscribe(&mut self, partition: u16) -> bool {
        self.subscribed.remove(&partition)
    }

    /// Membership test — the per-event filter a strategy host runs.
    #[inline]
    pub fn wants(&self, partition: u16) -> bool {
        self.subscribed.contains(&partition)
    }

    /// Subscribed partitions in order.
    pub fn partitions(&self) -> impl Iterator<Item = u16> + '_ {
        self.subscribed.iter().copied()
    }

    /// Current subscription count.
    pub fn len(&self) -> usize {
        self.subscribed.len()
    }

    /// True when nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subscribed.is_empty()
    }

    /// Cap on subscriptions.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Subscriptions rejected at the cap.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_and_filter() {
        let mut s = SubscriptionSet::unbounded();
        assert!(s.is_empty());
        assert!(s.subscribe(3));
        assert!(s.subscribe(7));
        assert!(s.subscribe(3)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.wants(3));
        assert!(!s.wants(4));
        assert_eq!(s.partitions().collect::<Vec<_>>(), vec![3, 7]);
        assert!(s.unsubscribe(3));
        assert!(!s.unsubscribe(3));
        assert!(!s.wants(3));
    }

    #[test]
    fn cap_rejects_and_counts() {
        let mut s = SubscriptionSet::with_cap(2);
        assert!(s.subscribe(1));
        assert!(s.subscribe(2));
        assert!(!s.subscribe(3));
        assert!(s.subscribe(1)); // already-subscribed is fine at cap
        assert_eq!(s.len(), 2);
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.cap(), 2);
        // Freeing a slot admits a new one.
        s.unsubscribe(1);
        assert!(s.subscribe(3));
    }
}
