//! Gap recovery as simulation nodes.
//!
//! Wraps the [`crate::retrans`] state machines for use in topologies:
//!
//! * [`RecoveryReceiver`] — a feed subscriber that reorders, requests
//!   retransmissions over a unicast channel, and retries with backoff
//!   ([`RecoveryClient`] drives the policy).
//! * [`RetransUnit`] — the exchange-side server: taps the live feed into
//!   a bounded history and answers gap requests under a rate limit.
//!
//! Both speak the same wire idiom as the rest of the stack: feed packets
//! and replays are UDP-framed PITCH, requests are UDP-framed
//! [`GapRequest`]s. Fault injection composes from outside — wrap either
//! node's links in a `FaultLink` and the recovery loop sees exactly the
//! loss, reordering, and outages the spec describes.

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Metrics, Node, PortId, SimTime, TimerToken};
use tn_wire::pitch::GapRequest;
use tn_wire::{eth, ipv4, stack};

use crate::retrans::{RecoveryClient, RecoveryConfig, RetransmissionServer};

/// Receiver port carrying the (lossy) multicast feed.
pub const RECV_FEED: PortId = PortId(0);
/// Receiver port for the unicast recovery channel (requests out,
/// replays in).
pub const RECV_RETRANS: PortId = PortId(1);

/// Server port tapping the live feed into history.
pub const UNIT_TAP: PortId = PortId(0);
/// Server port for the recovery channel (requests in, replays out).
pub const UNIT_REQ: PortId = PortId(1);

const POLL_TOKEN: TimerToken = TimerToken(1);
const SVC_TOKEN: u64 = 2;

/// [`RecoveryReceiver`] configuration.
#[derive(Debug, Clone)]
pub struct RecoveryReceiverConfig {
    /// Timeout/backoff policy.
    pub recovery: RecoveryConfig,
    /// Source MAC for emitted requests.
    pub src_mac: eth::MacAddr,
    /// Source IP for emitted requests.
    pub src_ip: ipv4::Addr,
    /// Retransmission server address (requests' destination).
    pub server_ip: ipv4::Addr,
    /// UDP port of the recovery channel.
    pub udp_port: u16,
}

impl RecoveryReceiverConfig {
    /// Defaults for receiver index `i`.
    pub fn new(i: u32) -> RecoveryReceiverConfig {
        RecoveryReceiverConfig {
            recovery: RecoveryConfig::default(),
            src_mac: eth::MacAddr::host(0x5E00 + i),
            src_ip: ipv4::Addr::new(10, 60, 0, (i % 250) as u8 + 1),
            server_ip: ipv4::Addr::new(10, 60, 255, 1),
            udp_port: 32_000,
        }
    }
}

/// Receiver node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReceiverStats {
    /// Frames received on either port.
    pub frames_in: u64,
    /// Messages released in sequence order.
    pub delivered_messages: u64,
    /// Gap requests sent (first requests and re-requests).
    pub requests_sent: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
}

/// Feed subscriber with gap detection, retransmission requests, and
/// timeout/backoff retries.
pub struct RecoveryReceiver {
    cfg: RecoveryReceiverConfig,
    client: RecoveryClient,
    /// Deadline the poll timer is currently armed for, if any.
    armed: Option<SimTime>,
    /// Release timeline: `(when, messages released)` — the report layer
    /// turns this into degraded-window throughput.
    deliveries: Vec<(SimTime, u32)>,
    stats: RecoveryReceiverStats,
}

impl RecoveryReceiver {
    /// Build from config.
    pub fn new(cfg: RecoveryReceiverConfig) -> RecoveryReceiver {
        RecoveryReceiver {
            client: RecoveryClient::new(cfg.recovery),
            cfg,
            armed: None,
            deliveries: Vec::new(),
            stats: RecoveryReceiverStats::default(),
        }
    }

    /// Node counters.
    pub fn stats(&self) -> RecoveryReceiverStats {
        self.stats
    }

    /// The recovery state machine (fill latencies, abandoned gaps).
    pub fn client(&self) -> &RecoveryClient {
        &self.client
    }

    /// Release timeline: `(when, messages released at that instant)`.
    pub fn deliveries(&self) -> &[(SimTime, u32)] {
        &self.deliveries
    }

    fn send_requests(&mut self, ctx: &mut Context<'_>, requests: &[GapRequest]) {
        let cfg = &self.cfg;
        for req in requests {
            // Single-pass emission into the arena buffer: reserve the
            // headers, append the request, fill the headers in place.
            let frame = ctx
                .frame()
                .fill(|b| {
                    let start = stack::reserve_udp(b);
                    req.emit_into(b);
                    stack::finish_udp(
                        &mut b[start..],
                        cfg.src_mac,
                        None,
                        cfg.src_ip,
                        cfg.server_ip,
                        cfg.udp_port,
                        cfg.udp_port,
                    );
                })
                .build();
            ctx.send(RECV_RETRANS, frame);
            // Leave the gap in the flight recorder: a crash dump that
            // ends mid-recovery shows which sequences were outstanding.
            ctx.flight_note(
                tn_sim::FlightKind::RecoveryGap,
                u64::from(req.seq),
                u64::from(req.count),
            );
            self.stats.requests_sent += 1;
        }
    }

    /// Arm the poll timer for the earliest open deadline, if it moved
    /// ahead of what's already armed. Spurious firings (the deadline was
    /// pushed back by a fill) re-arm themselves in `on_timer`.
    fn rearm(&mut self, ctx: &mut Context<'_>) {
        let Some(deadline) = self.client.next_deadline() else {
            return;
        };
        if self.armed.is_some_and(|at| at <= deadline) {
            return;
        }
        self.armed = Some(deadline);
        ctx.set_timer(deadline.saturating_sub(ctx.now()), POLL_TOKEN);
    }

    fn record_release(&mut self, now: SimTime, n: usize) {
        if n > 0 {
            self.deliveries.push((now, n as u32));
            self.stats.delivered_messages += n as u64;
        }
    }
}

impl Node for RecoveryReceiver {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        self.stats.frames_in += 1;
        match stack::parse_udp(&frame.bytes) {
            Err(_) => self.stats.parse_errors += 1,
            // Live multicast and unicast replays converge on the same
            // reorderer; the ports differ only in what faults their
            // links carry.
            Ok(view) if port == RECV_FEED || port == RECV_RETRANS => {
                match self.client.offer(ctx.now(), view.payload) {
                    Ok(out) => {
                        self.record_release(ctx.now(), out.messages.len());
                        self.send_requests(ctx, &out.requests);
                        self.rearm(ctx);
                    }
                    Err(_) => self.stats.parse_errors += 1,
                }
            }
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            Ok(_) => panic!("recovery receiver has 2 ports, got {port:?}"),
        }
        // Terminal consumer: the payload has been copied into the
        // reorderer (or rejected), so the buffer goes back to the arena.
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, POLL_TOKEN);
        self.armed = None;
        let out = self.client.poll(ctx.now());
        self.record_release(ctx.now(), out.messages.len());
        self.send_requests(ctx, &out.requests);
        self.rearm(ctx);
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.client.set_metrics(metrics);
    }
}

/// [`RetransUnit`] configuration.
#[derive(Debug, Clone)]
pub struct RetransUnitConfig {
    /// Packets of history kept per unit.
    pub history_packets: usize,
    /// Replay rate limit in bytes/second.
    pub rate_bytes_per_sec: u64,
    /// Replay burst allowance in bytes.
    pub burst_bytes: u64,
    /// Lookup-and-replay cost per served request.
    pub per_request_service: SimTime,
    /// Source MAC for replayed frames.
    pub src_mac: eth::MacAddr,
    /// Source IP for replayed frames.
    pub src_ip: ipv4::Addr,
    /// UDP port of the recovery channel.
    pub udp_port: u16,
}

impl Default for RetransUnitConfig {
    fn default() -> RetransUnitConfig {
        RetransUnitConfig {
            history_packets: 4_096,
            rate_bytes_per_sec: 125_000_000, // 1 Gb/s of replay budget
            burst_bytes: 1_500 * 64,
            per_request_service: SimTime::from_us(2),
            src_mac: eth::MacAddr::host(0x6E00),
            src_ip: ipv4::Addr::new(10, 60, 255, 1),
            udp_port: 32_000,
        }
    }
}

/// Server node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetransUnitStats {
    /// Live packets tapped into history.
    pub tapped: u64,
    /// Gap requests received.
    pub requests_in: u64,
    /// Replay packets sent.
    pub replays_out: u64,
    /// Requests refused (aged out or throttled).
    pub refused: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
}

/// Exchange-side retransmission server node: live-feed tap in, replays
/// out, with per-request service time.
pub struct RetransUnit {
    cfg: RetransUnitConfig,
    server: RetransmissionServer,
    svc: TxQueue,
    stats: RetransUnitStats,
    metrics: Metrics,
}

impl RetransUnit {
    /// Build from config.
    pub fn new(cfg: RetransUnitConfig) -> RetransUnit {
        RetransUnit {
            server: RetransmissionServer::new(
                cfg.history_packets,
                cfg.rate_bytes_per_sec,
                cfg.burst_bytes,
            ),
            svc: TxQueue::new(SVC_TOKEN),
            cfg,
            stats: RetransUnitStats::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// Node counters.
    pub fn stats(&self) -> RetransUnitStats {
        self.stats
    }

    /// The underlying server (history/limit counters).
    pub fn server(&self) -> &RetransmissionServer {
        &self.server
    }

    fn handle_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: &Frame) {
        let Ok(view) = stack::parse_udp(&frame.bytes) else {
            self.stats.parse_errors += 1;
            return;
        };
        match port {
            UNIT_TAP => match self.server.store(view.payload) {
                Ok(()) => self.stats.tapped += 1,
                Err(_) => self.stats.parse_errors += 1,
            },
            UNIT_REQ => {
                self.stats.requests_in += 1;
                self.metrics.inc("feed", "retrans_req", Some(ctx.me().0));
                let Ok(req) = GapRequest::parse(view.payload) else {
                    self.stats.parse_errors += 1;
                    return;
                };
                let requester_ip = view.src_ip;
                let requester_mac = view.src_mac;
                match self.server.serve(ctx.now(), &req) {
                    Ok(replays) => {
                        self.svc.charge(ctx.now(), self.cfg.per_request_service);
                        let (src_mac, src_ip, udp_port) =
                            (self.cfg.src_mac, self.cfg.src_ip, self.cfg.udp_port);
                        for payload in replays {
                            let out = ctx
                                .frame()
                                .fill(|b| {
                                    stack::emit_udp_into(
                                        src_mac,
                                        Some(requester_mac),
                                        src_ip,
                                        requester_ip,
                                        udp_port,
                                        udp_port,
                                        &payload,
                                        b,
                                    )
                                })
                                .build();
                            self.stats.replays_out += 1;
                            self.metrics.inc("feed", "retrans_replay", Some(ctx.me().0));
                            self.svc.send_after(ctx, SimTime::ZERO, UNIT_REQ, out);
                        }
                    }
                    Err(_) => {
                        self.stats.refused += 1;
                        self.metrics
                            .inc("feed", "retrans_refused", Some(ctx.me().0));
                    }
                }
            }
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("retrans unit has 2 ports, got {other:?}"),
        }
    }
}

impl Node for RetransUnit {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        self.handle_frame(ctx, port, &frame);
        // Terminal consumer: tapped packets are copied into history and
        // requests are fully decoded, so the buffer goes back to the arena.
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        let consumed = self.svc.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer {timer:?}");
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::pitch;

    fn feed_frame(first_seq: u32, n: u32) -> Vec<u8> {
        let mut pb = pitch::PacketBuilder::new(0, first_seq, 1400);
        for i in 0..n {
            pb.push(&pitch::Message::DeleteOrder {
                offset_ns: i,
                order_id: u64::from(first_seq + i),
            });
        }
        let payload = pb.flush().unwrap();
        stack::build_udp(
            eth::MacAddr::host(1),
            None,
            ipv4::Addr::new(10, 200, 1, 1),
            ipv4::Addr::multicast_group(0),
            32_000,
            32_000,
            &payload,
        )
    }

    fn rig(recovery: RecoveryConfig) -> (Simulator, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(4);
        let mut rc = RecoveryReceiverConfig::new(0);
        rc.recovery = recovery;
        let rx = sim.add_node("rx", RecoveryReceiver::new(rc));
        let unit = sim.add_node("unit", RetransUnit::new(RetransUnitConfig::default()));
        sim.connect_spec(
            rx,
            RECV_RETRANS,
            unit,
            UNIT_REQ,
            &LinkSpec::ideal(SimTime::from_us(5)),
        );
        (sim, rx, unit)
    }

    #[test]
    fn lost_packet_is_recovered_via_server() {
        let (mut sim, rx, unit) = rig(RecoveryConfig::default());
        for seq in (1..=9u32).step_by(2) {
            let bytes = feed_frame(seq, 2);
            let t = SimTime::from_us(u64::from(seq) * 10);
            let tap = sim.frame().copy_from(&bytes).build();
            sim.inject_frame(t, unit, UNIT_TAP, tap);
            // The copy starting at seq 5 is lost on the multicast path.
            if seq != 5 {
                let f = sim.frame().copy_from(&bytes).build();
                sim.inject_frame(t, rx, RECV_FEED, f);
            }
        }
        sim.run();
        let rx_node = sim.node::<RecoveryReceiver>(rx).unwrap();
        assert_eq!(rx_node.stats().delivered_messages, 10);
        assert_eq!(rx_node.stats().requests_sent, 1);
        assert_eq!(rx_node.client().fill_latencies_ps().len(), 1);
        // Round trip is two 5 us hops plus the server's 2 us service,
        // counted from when the gap was detected.
        let fill_ps = rx_node.client().fill_latencies_ps()[0];
        assert!(fill_ps >= SimTime::from_us(12).as_ps(), "fill={fill_ps}");
        assert_eq!(rx_node.client().abandoned_gaps(), 0);
        let unit_node = sim.node::<RetransUnit>(unit).unwrap();
        assert_eq!(unit_node.stats().requests_in, 1);
        assert_eq!(unit_node.stats().replays_out, 1);
    }

    #[test]
    fn unservable_gap_retries_then_abandons() {
        let cfg = RecoveryConfig {
            timeout: SimTime::from_us(50),
            backoff: 2,
            max_retries: 2,
            max_held: 100,
        };
        let (mut sim, rx, unit) = rig(cfg);
        // The server never sees the missing packet (nothing tapped), so
        // every request is refused and the receiver eventually gives up.
        let f = sim.frame().copy_from(&feed_frame(1, 2)).build();
        sim.inject_frame(SimTime::ZERO, rx, RECV_FEED, f);
        let f = sim.frame().copy_from(&feed_frame(5, 2)).build(); // 3..=4 lost forever
        sim.inject_frame(SimTime::from_us(1), rx, RECV_FEED, f);
        sim.run();
        let rx_node = sim.node::<RecoveryReceiver>(rx).unwrap();
        // First request plus two timed-out re-requests, then abandon.
        assert_eq!(rx_node.stats().requests_sent, 3);
        assert_eq!(rx_node.client().abandoned_gaps(), 1);
        assert_eq!(rx_node.stats().delivered_messages, 4); // 1,2 then 5,6
        assert!(rx_node.client().fill_latencies_ps().is_empty());
        let unit_node = sim.node::<RetransUnit>(unit).unwrap();
        assert_eq!(unit_node.stats().requests_in, 3);
        assert_eq!(unit_node.stats().refused, 3);
    }
}
