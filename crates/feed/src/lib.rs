//! # tn-feed — feed consumption substrate
//!
//! Everything a trading firm does with a raw exchange feed before a
//! strategy sees it (§2):
//!
//! * [`arb`] — A/B feed arbitration: exchanges publish the feed twice;
//!   receivers take whichever copy arrives first, deduplicate by
//!   sequence, and detect gaps.
//! * [`bookbuild`] — reconstructs per-symbol book state from the stateful
//!   PITCH message stream (executions and deletes don't carry symbols, so
//!   consumers must track order ids) and surfaces BBO changes.
//! * [`normalize`] — the normalizer core: native feed in, fixed-size
//!   normalized records out, re-partitioned onto the firm's internal
//!   scheme.
//! * [`subscribe`] — partition subscription sets, including the
//!   subscription caps that the L1S design forces (§4.3).
//! * [`retrans`] — gap recovery: reordering receivers, gap requests,
//!   timeout/backoff retry policy, and rate-limited retransmission
//!   servers.
//! * [`nodes`] — the recovery machinery packaged as simulation nodes
//!   ([`nodes::RecoveryReceiver`], [`nodes::RetransUnit`]) for the
//!   fault-injection experiments.

pub mod arb;
pub mod bookbuild;
pub mod nodes;
pub mod normalize;
pub mod retrans;
pub mod subscribe;

pub use arb::{ArbStats, Arbiter, FeedSide, SideStats};
pub use bookbuild::{BboUpdate, BookBuilder};
pub use nodes::{RecoveryReceiver, RetransUnit};
pub use normalize::{NormalizerCore, NormalizerOutput};
pub use retrans::{RecoveryClient, RecoveryConfig, Reorderer, RetransmissionServer};
pub use subscribe::SubscriptionSet;
