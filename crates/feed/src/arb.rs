//! A/B feed arbitration and gap detection.
//!
//! Exchanges publish every packet on two independent paths (§2's
//! cross-connects carry an A/B pair). The arbiter takes the first copy of
//! each sequence range to arrive, drops the duplicate, and reports gaps —
//! which in production trigger retransmission requests or a re-snapshot.

use std::collections::HashMap;

use tn_sim::Metrics;
use tn_wire::pitch;
use tn_wire::Result;

/// Which of the exchange's two feed copies a packet arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedSide {
    /// The A feed.
    A,
    /// The B feed.
    B,
}

/// Per-side arbitration counters: when one side degrades, its `won`
/// share collapses while the pair keeps the stream whole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SideStats {
    /// Packets offered from this side.
    pub offered: u64,
    /// Packets from this side that advanced the stream (arrived first).
    pub won: u64,
}

/// Arbitration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbStats {
    /// Packets accepted (first copy).
    pub accepted: u64,
    /// Packets dropped as duplicates (other side arrived first).
    pub duplicates: u64,
    /// Packets dropped as stale (entirely before the expected sequence).
    pub stale: u64,
    /// Sequence numbers skipped (lost on both sides).
    pub gap_messages: u64,
    /// Distinct gap events.
    pub gap_events: u64,
    /// A-side breakdown (only populated via [`Arbiter::offer_from`]).
    pub side_a: SideStats,
    /// B-side breakdown (only populated via [`Arbiter::offer_from`]).
    pub side_b: SideStats,
}

/// Per-unit arbitration state.
#[derive(Debug, Default)]
struct UnitState {
    next_seq: Option<u32>,
}

/// The arbiter. Feed it packets from either side; it yields each unique
/// packet's messages exactly once, in sequence order per unit (gaps are
/// skipped forward, as real feed handlers do after declaring loss).
#[derive(Debug, Default)]
pub struct Arbiter {
    units: HashMap<u8, UnitState>,
    stats: ArbStats,
    metrics: Metrics,
}

impl Arbiter {
    /// Fresh arbiter.
    pub fn new() -> Arbiter {
        Arbiter::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> ArbStats {
        self.stats
    }

    /// Mirror arbitration counters into a metrics registry (scope
    /// `"feed"`). Pure side-state; arbitration decisions are unaffected.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }

    /// Offer a sequenced-unit packet (the UDP payload). Returns the
    /// decoded messages if this packet advanced the stream, or `None` for
    /// duplicates/stale copies.
    pub fn offer(&mut self, payload: &[u8]) -> Result<Option<Vec<pitch::Message>>> {
        let pkt = pitch::Packet::new_checked(payload)?;
        let count = u32::from(pkt.count());
        let seq = pkt.sequence();
        let unit = self.units.entry(pkt.unit()).or_default();
        let next = unit.next_seq.unwrap_or(seq);
        let end = seq.wrapping_add(count);
        // Entirely before the cursor: duplicate of something delivered.
        if wrapping_le(end, next) && count > 0 && unit.next_seq.is_some() {
            self.stats.duplicates += 1;
            self.metrics.inc("feed", "arb_duplicate", None);
            return Ok(None);
        }
        // Overlapping start: partial duplicate — deliver only the new tail.
        let skip = if wrapping_lt(seq, next) {
            next.wrapping_sub(seq)
        } else {
            0
        };
        if skip > 0 {
            self.stats.duplicates += 1; // overlapping copy counted once
        }
        // Gap: the packet starts beyond the cursor.
        if wrapping_lt(next, seq) && unit.next_seq.is_some() {
            self.stats.gap_events += 1;
            self.stats.gap_messages += u64::from(seq.wrapping_sub(next));
            self.metrics.inc("feed", "arb_gap", None);
            self.metrics.add(
                "feed",
                "arb_gap_msgs",
                None,
                u64::from(seq.wrapping_sub(next)),
            );
        }
        // audit:allow(hotpath-alloc): per-replay message batch; zero-alloc feed path is ROADMAP item 2
        let mut msgs = Vec::with_capacity(count as usize);
        for (i, m) in pkt.messages().enumerate() {
            let m = m?;
            if (i as u32) < skip {
                continue;
            }
            msgs.push(m);
        }
        unit.next_seq = Some(end);
        if msgs.is_empty() && skip >= count {
            self.stats.stale += 1;
            return Ok(None);
        }
        self.stats.accepted += 1;
        self.metrics.inc("feed", "arb_accepted", None);
        Ok(Some(msgs))
    }

    /// [`offer`](Arbiter::offer), attributed to a feed side so the stats
    /// record which copy is actually winning races (the A/B-failover
    /// experiments read this to show arbitration papering over
    /// single-side loss).
    pub fn offer_from(
        &mut self,
        side: FeedSide,
        payload: &[u8],
    ) -> Result<Option<Vec<pitch::Message>>> {
        let out = self.offer(payload)?;
        let (s, offered_name, won_name) = match side {
            FeedSide::A => (&mut self.stats.side_a, "a_offered", "a_won"),
            FeedSide::B => (&mut self.stats.side_b, "b_offered", "b_won"),
        };
        s.offered += 1;
        if out.is_some() {
            s.won += 1;
        }
        self.metrics.inc("feed", offered_name, None);
        if out.is_some() {
            self.metrics.inc("feed", won_name, None);
        }
        Ok(out)
    }

    /// The next expected sequence for a unit (`None` before any packet).
    pub fn expected_seq(&self, unit: u8) -> Option<u32> {
        self.units.get(&unit).and_then(|u| u.next_seq)
    }
}

fn wrapping_lt(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 > 0
}

fn wrapping_le(a: u32, b: u32) -> bool {
    a == b || wrapping_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_wire::WireError;

    fn packet(unit: u8, first_seq: u32, n: u32) -> Vec<u8> {
        let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
        for i in 0..n {
            pb.push(&pitch::Message::DeleteOrder {
                offset_ns: i,
                order_id: u64::from(first_seq + i),
            });
        }
        pb.flush().expect("non-empty")
    }

    #[test]
    fn first_copy_wins_duplicate_dropped() {
        let mut arb = Arbiter::new();
        let p = packet(0, 1, 3);
        let a = arb.offer(&p).unwrap();
        assert_eq!(a.as_ref().map(|m| m.len()), Some(3));
        let b = arb.offer(&p).unwrap();
        assert!(b.is_none());
        let s = arb.stats();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.duplicates, 1);
        assert_eq!(arb.expected_seq(0), Some(4));
    }

    #[test]
    fn interleaved_ab_sides() {
        let mut arb = Arbiter::new();
        let p1 = packet(0, 1, 2);
        let p2 = packet(0, 3, 2);
        // A delivers p1, B delivers p1 late, B delivers p2 first, A dup.
        assert!(arb.offer(&p1).unwrap().is_some());
        assert!(arb.offer(&p1).unwrap().is_none());
        assert!(arb.offer(&p2).unwrap().is_some());
        assert!(arb.offer(&p2).unwrap().is_none());
        assert_eq!(arb.stats().accepted, 2);
        assert_eq!(arb.stats().duplicates, 2);
        assert_eq!(arb.stats().gap_messages, 0);
    }

    #[test]
    fn gap_detection_and_skip_forward() {
        let mut arb = Arbiter::new();
        assert!(arb.offer(&packet(0, 1, 2)).unwrap().is_some()); // 1,2
                                                                 // 3..=5 lost on both sides; next packet starts at 6.
        let msgs = arb.offer(&packet(0, 6, 2)).unwrap().unwrap();
        assert_eq!(msgs.len(), 2);
        let s = arb.stats();
        assert_eq!(s.gap_events, 1);
        assert_eq!(s.gap_messages, 3);
        assert_eq!(arb.expected_seq(0), Some(8));
    }

    #[test]
    fn partial_overlap_delivers_only_new_messages() {
        let mut arb = Arbiter::new();
        assert!(arb.offer(&packet(0, 1, 3)).unwrap().is_some()); // 1..=3
                                                                 // A retransmitted copy covering 2..=5: only 4,5 are new.
        let msgs = arb.offer(&packet(0, 2, 4)).unwrap().unwrap();
        assert_eq!(msgs.len(), 2);
        match msgs[0] {
            pitch::Message::DeleteOrder { order_id, .. } => assert_eq!(order_id, 4),
            ref other => panic!("{other:?}"),
        }
        assert_eq!(arb.expected_seq(0), Some(6));
    }

    #[test]
    fn units_are_independent() {
        let mut arb = Arbiter::new();
        assert!(arb.offer(&packet(0, 1, 2)).unwrap().is_some());
        assert!(arb.offer(&packet(1, 100, 2)).unwrap().is_some());
        assert_eq!(arb.expected_seq(0), Some(3));
        assert_eq!(arb.expected_seq(1), Some(102));
        assert_eq!(arb.expected_seq(2), None);
        assert_eq!(arb.stats().gap_messages, 0);
    }

    #[test]
    fn sequence_wraparound() {
        let mut arb = Arbiter::new();
        assert!(arb.offer(&packet(0, u32::MAX - 1, 2)).unwrap().is_some()); // wraps to 0
        assert_eq!(arb.expected_seq(0), Some(0));
        assert!(arb.offer(&packet(0, 0, 2)).unwrap().is_some());
        assert_eq!(arb.expected_seq(0), Some(2));
        assert_eq!(arb.stats().gap_messages, 0);
    }

    #[test]
    fn per_side_attribution() {
        let mut arb = Arbiter::new();
        let p1 = packet(0, 1, 2);
        let p2 = packet(0, 3, 2);
        // A wins p1; B's copy is a duplicate. B wins p2 (A copy lost).
        assert!(arb.offer_from(FeedSide::A, &p1).unwrap().is_some());
        assert!(arb.offer_from(FeedSide::B, &p1).unwrap().is_none());
        assert!(arb.offer_from(FeedSide::B, &p2).unwrap().is_some());
        let s = arb.stats();
        assert_eq!(s.side_a, SideStats { offered: 1, won: 1 });
        assert_eq!(s.side_b, SideStats { offered: 2, won: 1 });
        assert_eq!(s.accepted, 2);
    }

    #[test]
    fn malformed_packets_error() {
        let mut arb = Arbiter::new();
        assert_eq!(arb.offer(&[0u8; 3]).unwrap_err(), WireError::Truncated);
    }
}
