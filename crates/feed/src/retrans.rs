//! Gap recovery: reordering receivers and retransmission servers.
//!
//! Sequenced multicast feeds (§2's "highly-optimized, stateful
//! protocols") pair the lossy multicast stream with a unicast recovery
//! channel: receivers detect sequence gaps, request retransmission, and
//! hold later packets in a reorder buffer until the hole fills or a
//! give-up bound passes. The exchange side answers from a bounded history
//! under a token-bucket rate limit — recovery bandwidth is a shared,
//! policed resource.
//!
//! [`Reorderer`] is the receiver half (a stricter alternative to
//! [`crate::Arbiter`]'s skip-forward policy); [`RetransmissionServer`]
//! is the exchange half.

use std::collections::{BTreeMap, HashMap, VecDeque};

use tn_netdev::queues::TokenBucket;
use tn_sim::{Metrics, SimTime};
use tn_wire::pitch::{self, GapRequest};
use tn_wire::{Result, WireError};

/// What the reorderer wants done after a packet is offered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReorderOutput {
    /// Messages released in sequence order.
    pub messages: Vec<pitch::Message>,
    /// A retransmission request to send, if a new gap opened.
    pub request: Option<GapRequest>,
    /// Sequence numbers abandoned (buffer bound passed before recovery).
    pub abandoned: u64,
}

#[derive(Debug, Default)]
struct UnitReorder {
    next_seq: Option<u32>,
    /// Out-of-order packets keyed by start sequence.
    held: BTreeMap<u32, Vec<pitch::Message>>,
    held_messages: usize,
    /// Whether the current gap has already been requested.
    requested: bool,
}

/// Receiver-side reordering with gap requests.
#[derive(Debug)]
pub struct Reorderer {
    units: BTreeMap<u8, UnitReorder>,
    /// Held messages per unit before giving up on a gap.
    max_held: usize,
    stats: ReorderStats,
}

/// Reorderer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Messages released in order.
    pub released: u64,
    /// Gap requests issued.
    pub requests: u64,
    /// Messages recovered via retransmission (arrived while held).
    pub recovered_gaps: u64,
    /// Messages released by a gap closing (the retransmitted fill plus
    /// the held packets it unblocked) — the "records recovered" number.
    pub recovered_messages: u64,
    /// Sequence numbers abandoned.
    pub abandoned: u64,
}

impl Reorderer {
    /// Receiver that holds at most `max_held` messages per unit while
    /// waiting for a retransmission.
    pub fn new(max_held: usize) -> Reorderer {
        Reorderer {
            units: BTreeMap::new(),
            max_held,
            stats: ReorderStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Messages currently buffered behind gaps (all units).
    pub fn held(&self) -> usize {
        self.units.values().map(|u| u.held_messages).sum()
    }

    /// Is a gap currently open (request outstanding / packets held) on
    /// `unit`?
    pub fn gap_open(&self, unit: u8) -> bool {
        self.units
            .get(&unit)
            .is_some_and(|u| u.requested || !u.held.is_empty())
    }

    /// The hole currently blocking `unit`, as a re-requestable range
    /// (first missing sequence up to the first held packet), or `None`
    /// when the unit is flowing in order.
    pub fn current_gap(&self, unit: u8) -> Option<GapRequest> {
        let u = self.units.get(&unit)?;
        let next = u.next_seq?;
        let (&first_held, _) = u.held.iter().next()?;
        Some(GapRequest {
            unit,
            seq: next,
            count: first_held.wrapping_sub(next).min(u32::from(u16::MAX)) as u16,
        })
    }

    /// Give up on `unit`'s open gap: declare the hole lost, skip the
    /// cursor to the first held packet, and drain. The timeout/backoff
    /// path of [`RecoveryClient`] calls this when retries are exhausted.
    pub fn abandon_gap(&mut self, unit: u8) -> ReorderOutput {
        let mut out = ReorderOutput::default();
        let Some(u) = self.units.get_mut(&unit) else {
            return out;
        };
        let Some((&first_held, _)) = u.held.iter().next() else {
            u.requested = false;
            return out;
        };
        // audit:allow(hotpath-unwrap): a unit holding packets always has a cursor, set when its first gap opened
        let next = u.next_seq.expect("held implies a cursor");
        let lost = u64::from(first_held.wrapping_sub(next));
        out.abandoned += lost;
        self.stats.abandoned += lost;
        u.next_seq = Some(first_held);
        u.requested = false;
        drain_held(u, &mut out);
        self.stats.released += out.messages.len() as u64;
        out
    }

    /// Offer a sequenced-unit packet (multicast or retransmitted — the
    /// server replays the same packets, so both paths converge here).
    pub fn offer(&mut self, payload: &[u8]) -> Result<ReorderOutput> {
        let pkt = pitch::Packet::new_checked(payload)?;
        let unit_id = pkt.unit();
        let seq = pkt.sequence();
        let count = u32::from(pkt.count());
        let msgs: Vec<pitch::Message> = pkt.messages().collect::<Result<_>>()?;
        let max_held = self.max_held;
        let unit = self.units.entry(unit_id).or_default();
        let mut out = ReorderOutput::default();

        let next = *unit.next_seq.get_or_insert(seq);
        let end = seq.wrapping_add(count);
        // Entirely old: duplicate.
        if wrapping_le(end, next) {
            return Ok(out);
        }
        if seq == next || wrapping_lt(seq, next) {
            // In-order (possibly overlapping): release the new tail.
            let skip = next.wrapping_sub(seq) as usize;
            let released = msgs.into_iter().skip(skip);
            out.messages.extend(released);
            unit.next_seq = Some(end);
            // Drain any held packets that are now contiguous.
            let gap_was_open = unit.requested;
            drain_held(unit, &mut out);
            if gap_was_open && unit.held.is_empty() {
                unit.requested = false;
                self.stats.recovered_gaps += 1;
            }
            if gap_was_open {
                self.stats.recovered_messages += out.messages.len() as u64;
            }
        } else {
            // Future packet: a gap is open. Hold it and maybe request.
            if !unit.held.contains_key(&seq) {
                unit.held_messages += msgs.len();
                unit.held.insert(seq, msgs);
            }
            if !unit.requested {
                unit.requested = true;
                self.stats.requests += 1;
                out.request = Some(GapRequest {
                    unit: unit_id,
                    seq: next,
                    count: seq.wrapping_sub(next).min(u32::from(u16::MAX)) as u16,
                });
            }
            // Give up if the hold buffer is past its bound: skip to the
            // first held packet (declaring the hole lost) and drain.
            if unit.held_messages > max_held {
                // audit:allow(hotpath-unwrap): held_messages > 0 implies the held map is non-empty
                let (&first_held, _) = unit.held.iter().next().expect("non-empty");
                let lost = first_held.wrapping_sub(next);
                out.abandoned += u64::from(lost);
                self.stats.abandoned += u64::from(lost);
                unit.next_seq = Some(first_held);
                unit.requested = false;
                drain_held(unit, &mut out);
            }
        }
        self.stats.released += out.messages.len() as u64;
        Ok(out)
    }
}

/// Release every held packet that became contiguous with `unit`'s
/// cursor, skipping fully/partially duplicate ranges.
// Peek-then-conditionally-pop; clippy's while-let suggestion would hold
// the map borrow across the pop.
#[allow(clippy::while_let_loop)]
fn drain_held(unit: &mut UnitReorder, out: &mut ReorderOutput) {
    loop {
        let Some((&held_seq, _)) = unit.held.iter().next() else {
            break;
        };
        // audit:allow(hotpath-unwrap): drain_held is only entered after the caller set the cursor
        let cur = unit.next_seq.expect("drain requires a cursor");
        if wrapping_lt(cur, held_seq) {
            break; // still a hole before the next held packet
        }
        // audit:allow(hotpath-unwrap): the loop head just observed a held entry; pop_first cannot miss
        let (held_seq, held_msgs) = unit.held.pop_first().expect("non-empty");
        let held_count = held_msgs.len() as u32;
        unit.held_messages -= held_msgs.len();
        let held_end = held_seq.wrapping_add(held_count);
        if wrapping_le(held_end, cur) {
            continue; // fully duplicate of what we released
        }
        let skip = cur.wrapping_sub(held_seq) as usize;
        out.messages.extend(held_msgs.into_iter().skip(skip));
        unit.next_seq = Some(held_end);
    }
}

fn wrapping_lt(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 > 0
}

fn wrapping_le(a: u32, b: u32) -> bool {
    a == b || wrapping_lt(a, b)
}

/// Timeout/backoff policy for [`RecoveryClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Wait this long for a fill before re-requesting.
    pub timeout: SimTime,
    /// Multiply the wait by this factor on every retry (exponential
    /// backoff; `1` keeps a fixed interval).
    pub backoff: u32,
    /// Re-request at most this many times before abandoning the gap and
    /// resuming from the first held packet.
    pub max_retries: u32,
    /// Held-message bound handed to the inner [`Reorderer`].
    pub max_held: usize,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            timeout: SimTime::from_us(200),
            backoff: 2,
            max_retries: 3,
            max_held: 4096,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenGap {
    opened_at: SimTime,
    /// When the next re-request (or the abandon) fires.
    deadline: SimTime,
    retries: u32,
}

/// What a [`RecoveryClient`] call produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryOutput {
    /// Messages released in sequence order.
    pub messages: Vec<pitch::Message>,
    /// Gap requests (first requests and timed-out re-requests) to send.
    pub requests: Vec<GapRequest>,
    /// Sequence numbers abandoned as unrecoverable.
    pub abandoned: u64,
}

impl RecoveryOutput {
    fn absorb(&mut self, out: ReorderOutput) {
        self.messages.extend(out.messages);
        self.requests.extend(out.request);
        self.abandoned += out.abandoned;
    }
}

/// Receiver-side gap recovery with timeout/backoff: a [`Reorderer`] plus
/// the retry state machine around its requests.
///
/// Drive it with [`offer`](RecoveryClient::offer) for every arriving
/// packet (live or retransmitted) and [`poll`](RecoveryClient::poll)
/// whenever [`next_deadline`](RecoveryClient::next_deadline) passes —
/// sim nodes arm a timer for exactly that instant. The client records a
/// gap-fill latency sample (request to release, in picoseconds) for every
/// gap a retransmission closes; those samples feed the report layer's
/// recovery section.
#[derive(Debug)]
pub struct RecoveryClient {
    reorderer: Reorderer,
    cfg: RecoveryConfig,
    open: BTreeMap<u8, OpenGap>,
    fill_latency_ps: Vec<u64>,
    re_requests: u64,
    abandoned_gaps: u64,
    metrics: Metrics,
}

impl RecoveryClient {
    /// New client with `cfg`'s policy.
    pub fn new(cfg: RecoveryConfig) -> RecoveryClient {
        RecoveryClient {
            reorderer: Reorderer::new(cfg.max_held),
            cfg,
            open: BTreeMap::new(),
            fill_latency_ps: Vec::new(),
            re_requests: 0,
            abandoned_gaps: 0,
            metrics: Metrics::disabled(),
        }
    }

    /// Mirror recovery counters — gap detections, retransmit round-trip
    /// latencies, re-requests, abandons — into a metrics registry (scope
    /// `"feed"`). Pure side-state; recovery decisions are unaffected.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }

    /// The inner reorderer (for its counters).
    pub fn reorderer(&self) -> &Reorderer {
        &self.reorderer
    }

    /// The retry policy.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// Request-to-release latency of every gap a retransmission filled,
    /// in picoseconds.
    pub fn fill_latencies_ps(&self) -> &[u64] {
        &self.fill_latency_ps
    }

    /// Timed-out re-requests issued.
    pub fn re_requests(&self) -> u64 {
        self.re_requests
    }

    /// Gaps abandoned (retries exhausted or hold bound passed).
    pub fn abandoned_gaps(&self) -> u64 {
        self.abandoned_gaps
    }

    /// Units currently blocked on an open gap.
    pub fn open_gaps(&self) -> usize {
        self.open.len()
    }

    /// Earliest re-request/abandon deadline across open gaps, if any —
    /// the instant to call [`poll`](RecoveryClient::poll) at.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.open.values().map(|g| g.deadline).min()
    }

    /// Offer an arriving packet at time `now`.
    pub fn offer(&mut self, now: SimTime, payload: &[u8]) -> Result<RecoveryOutput> {
        let unit = pitch::Packet::new_checked(payload)?.unit();
        let inner = self.reorderer.offer(payload)?;
        let mut out = RecoveryOutput::default();
        let abandoned_by_bound = inner.abandoned > 0;
        if inner.request.is_some() {
            self.metrics.inc("feed", "gap_detected", None);
            self.open.insert(
                unit,
                OpenGap {
                    opened_at: now,
                    deadline: now + self.cfg.timeout,
                    retries: 0,
                },
            );
        }
        out.absorb(inner);
        if let Some(gap) = self.open.get(&unit).copied() {
            if !self.reorderer.gap_open(unit) {
                self.open.remove(&unit);
                if abandoned_by_bound {
                    self.abandoned_gaps += 1;
                    self.metrics.inc("feed", "gap_abandoned", None);
                } else {
                    let fill_ps = now.saturating_sub(gap.opened_at).as_ps();
                    self.fill_latency_ps.push(fill_ps);
                    self.metrics.observe("feed", "fill_ps", None, fill_ps);
                }
            }
        }
        Ok(out)
    }

    /// Fire timeouts due at `now`: re-request still-open gaps (with
    /// exponential backoff) and abandon those out of retries.
    pub fn poll(&mut self, now: SimTime) -> RecoveryOutput {
        let mut out = RecoveryOutput::default();
        let due: Vec<u8> = self
            .open
            .iter()
            .filter(|(_, g)| g.deadline <= now)
            .map(|(&u, _)| u)
            .collect();
        for unit in due {
            let Some(req) = self.reorderer.current_gap(unit) else {
                // Nothing held any more (e.g. closed by an abandon path);
                // drop the bookkeeping entry.
                self.open.remove(&unit);
                continue;
            };
            // audit:allow(hotpath-unwrap): `due` was filtered from `open`; the entry cannot have vanished since
            let gap = self.open.get_mut(&unit).expect("due implies open");
            if gap.retries >= self.cfg.max_retries {
                self.open.remove(&unit);
                self.abandoned_gaps += 1;
                self.metrics.inc("feed", "gap_abandoned", None);
                let drained = self.reorderer.abandon_gap(unit);
                out.messages.extend(drained.messages);
                out.abandoned += drained.abandoned;
            } else {
                gap.retries += 1;
                let wait_ps = self
                    .cfg
                    .timeout
                    .as_ps()
                    .saturating_mul(u64::from(self.cfg.backoff).saturating_pow(gap.retries));
                gap.deadline = now + SimTime::from_ps(wait_ps);
                self.re_requests += 1;
                self.metrics.inc("feed", "re_request", None);
                out.requests.push(req);
            }
        }
        out
    }
}

/// Exchange-side retransmission server: bounded per-unit history, rate
/// limited by a token bucket (recovery must not starve the live feed).
pub struct RetransmissionServer {
    history: HashMap<u8, VecDeque<(u32, Vec<u8>)>>,
    max_packets_per_unit: usize,
    bucket: TokenBucket,
    stats: RetransStats,
}

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetransStats {
    /// Packets stored.
    pub stored: u64,
    /// Requests served (fully or partially).
    pub served: u64,
    /// Requests refused: sequence aged out of history.
    pub too_old: u64,
    /// Requests refused: rate limit.
    pub throttled: u64,
}

impl RetransmissionServer {
    /// Server keeping `max_packets_per_unit` of history and replaying at
    /// most `rate_bytes_per_sec` (burst `burst_bytes`).
    pub fn new(
        max_packets_per_unit: usize,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) -> RetransmissionServer {
        RetransmissionServer {
            history: HashMap::new(),
            max_packets_per_unit,
            bucket: TokenBucket::new(rate_bytes_per_sec, burst_bytes),
            stats: RetransStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RetransStats {
        self.stats
    }

    /// Record a published packet (call for every live packet).
    pub fn store(&mut self, payload: &[u8]) -> Result<()> {
        let pkt = pitch::Packet::new_checked(payload)?;
        let ring = self.history.entry(pkt.unit()).or_default();
        // audit:allow(hotpath-alloc): retention ring owns a copy of every live payload; pooling is ROADMAP item 2
        ring.push_back((pkt.sequence(), payload.to_vec()));
        if ring.len() > self.max_packets_per_unit {
            ring.pop_front();
        }
        self.stats.stored += 1;
        Ok(())
    }

    /// Serve a gap request at time `now`: returns the stored packets
    /// covering the requested range, subject to history and rate limits.
    pub fn serve(&mut self, now: SimTime, req: &GapRequest) -> Result<Vec<Vec<u8>>> {
        let Some(ring) = self.history.get(&req.unit) else {
            self.stats.too_old += 1;
            return Err(WireError::BadField);
        };
        let want_end = req.seq.wrapping_add(u32::from(req.count));
        // audit:allow(hotpath-alloc): replay batch for one gap request; zero-alloc feed path is ROADMAP item 2
        let mut replay = Vec::new();
        let mut covered_start = false;
        for (seq, payload) in ring {
            let pkt = pitch::Packet::new_checked(&payload[..])?;
            let end = seq.wrapping_add(u32::from(pkt.count()));
            // Overlaps the requested range?
            if wrapping_lt(*seq, want_end) && wrapping_lt(req.seq, end) {
                if wrapping_le(*seq, req.seq) {
                    covered_start = true;
                }
                replay.push(payload.clone());
            }
        }
        if replay.is_empty() || !covered_start {
            self.stats.too_old += 1;
            return Err(WireError::BadLength);
        }
        let bytes: usize = replay.iter().map(|p| p.len()).sum();
        if !self.bucket.try_consume(now, bytes) {
            self.stats.throttled += 1;
            return Err(WireError::BadLength);
        }
        self.stats.served += 1;
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(unit: u8, first_seq: u32, n: u32) -> Vec<u8> {
        let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
        for i in 0..n {
            pb.push(&pitch::Message::DeleteOrder {
                offset_ns: i,
                order_id: u64::from(first_seq.wrapping_add(i)),
            });
        }
        pb.flush().expect("non-empty")
    }

    fn ids(msgs: &[pitch::Message]) -> Vec<u64> {
        msgs.iter().map(|m| m.order_id().unwrap()).collect()
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = Reorderer::new(100);
        let out = r.offer(&packet(0, 1, 3)).unwrap();
        assert_eq!(ids(&out.messages), vec![1, 2, 3]);
        assert!(out.request.is_none());
        let out = r.offer(&packet(0, 4, 2)).unwrap();
        assert_eq!(ids(&out.messages), vec![4, 5]);
        assert_eq!(r.stats().released, 5);
        assert_eq!(r.held(), 0);
    }

    #[test]
    fn gap_holds_and_requests_then_recovers() {
        let mut r = Reorderer::new(100);
        r.offer(&packet(0, 1, 2)).unwrap(); // 1,2
                                            // 3..=4 lost; 5..=6 arrives.
        let out = r.offer(&packet(0, 5, 2)).unwrap();
        assert!(out.messages.is_empty());
        assert_eq!(
            out.request,
            Some(GapRequest {
                unit: 0,
                seq: 3,
                count: 2
            })
        );
        assert_eq!(r.held(), 2);
        // More future data: held, but no duplicate request.
        let out = r.offer(&packet(0, 7, 1)).unwrap();
        assert!(out.request.is_none());
        // Retransmission of 3..=4 arrives: everything drains in order.
        let out = r.offer(&packet(0, 3, 2)).unwrap();
        assert_eq!(ids(&out.messages), vec![3, 4, 5, 6, 7]);
        assert_eq!(r.held(), 0);
        let s = r.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.recovered_gaps, 1);
        assert_eq!(s.abandoned, 0);
    }

    #[test]
    fn gives_up_when_hold_bound_passes() {
        let mut r = Reorderer::new(3);
        r.offer(&packet(0, 1, 1)).unwrap();
        // Lose 2; buffer 3,4,5,6 — the 4th held message trips the bound.
        assert!(r.offer(&packet(0, 3, 1)).unwrap().request.is_some());
        r.offer(&packet(0, 4, 1)).unwrap();
        r.offer(&packet(0, 5, 1)).unwrap();
        let out = r.offer(&packet(0, 6, 1)).unwrap();
        assert_eq!(out.abandoned, 1); // seq 2 declared lost
        assert_eq!(ids(&out.messages), vec![3, 4, 5, 6]);
        assert_eq!(r.stats().abandoned, 1);
        // Stream continues normally afterward.
        let out = r.offer(&packet(0, 7, 1)).unwrap();
        assert_eq!(ids(&out.messages), vec![7]);
    }

    #[test]
    fn duplicates_and_overlaps() {
        let mut r = Reorderer::new(10);
        r.offer(&packet(0, 1, 3)).unwrap();
        let out = r.offer(&packet(0, 1, 3)).unwrap(); // full dup
        assert!(out.messages.is_empty());
        let out = r.offer(&packet(0, 2, 4)).unwrap(); // overlap: 4,5 new
        assert_eq!(ids(&out.messages), vec![4, 5]);
    }

    #[test]
    fn server_stores_and_replays() {
        let mut s = RetransmissionServer::new(16, 1_000_000, 10_000);
        for seq in [1u32, 4, 7] {
            s.store(&packet(2, seq, 3)).unwrap();
        }
        let replay = s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 2,
                    seq: 4,
                    count: 3,
                },
            )
            .unwrap();
        assert_eq!(replay.len(), 1);
        let pkt = pitch::Packet::new_checked(&replay[0][..]).unwrap();
        assert_eq!(pkt.sequence(), 4);
        assert_eq!(s.stats().served, 1);
        // A range spanning two packets returns both.
        let replay = s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 2,
                    seq: 5,
                    count: 4,
                },
            )
            .unwrap();
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn server_refuses_aged_out_and_unknown() {
        let mut s = RetransmissionServer::new(2, 1_000_000, 10_000);
        for seq in [1u32, 4, 7, 10] {
            s.store(&packet(0, seq, 3)).unwrap();
        }
        // Only 7.. and 10.. remain in a 2-deep ring.
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_err());
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 9,
                    seq: 1,
                    count: 1
                }
            )
            .is_err());
        assert_eq!(s.stats().too_old, 2);
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 7,
                    count: 3
                }
            )
            .is_ok());
    }

    #[test]
    fn server_rate_limits() {
        // Bucket of ~one packet; the second immediate request throttles.
        let pkt = packet(0, 1, 3);
        let mut s = RetransmissionServer::new(16, 1_000, pkt.len() as u64 + 4);
        s.store(&pkt).unwrap();
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_ok());
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_err());
        assert_eq!(s.stats().throttled, 1);
        // Tokens refill with time.
        assert!(s
            .serve(
                SimTime::from_secs(1),
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_ok());
    }

    fn client_cfg() -> RecoveryConfig {
        RecoveryConfig {
            timeout: SimTime::from_us(100),
            backoff: 2,
            max_retries: 2,
            max_held: 100,
        }
    }

    #[test]
    fn client_requests_and_records_fill_latency() {
        let mut c = RecoveryClient::new(client_cfg());
        c.offer(SimTime::ZERO, &packet(0, 1, 2)).unwrap();
        // 3..=4 lost; 5 arrives at t=10us.
        let out = c.offer(SimTime::from_us(10), &packet(0, 5, 1)).unwrap();
        assert_eq!(out.requests.len(), 1);
        assert_eq!(c.open_gaps(), 1);
        assert_eq!(c.next_deadline(), Some(SimTime::from_us(110)));
        // Fill arrives at t=60us: gap closes, latency = 50us.
        let out = c.offer(SimTime::from_us(60), &packet(0, 3, 2)).unwrap();
        assert_eq!(ids(&out.messages), vec![3, 4, 5]);
        assert_eq!(c.open_gaps(), 0);
        assert_eq!(c.next_deadline(), None);
        assert_eq!(c.fill_latencies_ps(), &[SimTime::from_us(50).as_ps()]);
        assert_eq!(c.abandoned_gaps(), 0);
    }

    #[test]
    fn client_backs_off_then_abandons() {
        let mut c = RecoveryClient::new(client_cfg());
        c.offer(SimTime::ZERO, &packet(0, 1, 1)).unwrap();
        let out = c.offer(SimTime::ZERO, &packet(0, 3, 1)).unwrap(); // 2 lost
        let first = out.requests[0];
        // Before the deadline nothing fires.
        assert!(c.poll(SimTime::from_us(99)).requests.is_empty());
        // 1st timeout at 100us: re-request, next wait doubles to 200us.
        let out = c.poll(SimTime::from_us(100));
        assert_eq!(out.requests, vec![first]);
        assert_eq!(c.next_deadline(), Some(SimTime::from_us(300)));
        // 2nd timeout: re-request again, wait doubles to 400us.
        let out = c.poll(SimTime::from_us(300));
        assert_eq!(out.requests, vec![first]);
        assert_eq!(c.re_requests(), 2);
        assert_eq!(c.next_deadline(), Some(SimTime::from_us(700)));
        // Retries exhausted: abandon, releasing the held tail.
        let out = c.poll(SimTime::from_us(700));
        assert!(out.requests.is_empty());
        assert_eq!(out.abandoned, 1); // seq 2
        assert_eq!(ids(&out.messages), vec![3]);
        assert_eq!(c.abandoned_gaps(), 1);
        assert_eq!(c.open_gaps(), 0);
        assert!(c.fill_latencies_ps().is_empty());
        // Stream resumes cleanly past the abandoned hole.
        let out = c.offer(SimTime::from_us(800), &packet(0, 4, 1)).unwrap();
        assert_eq!(ids(&out.messages), vec![4]);
    }

    #[test]
    fn client_bound_abandon_counts_as_abandoned_not_fill() {
        let mut c = RecoveryClient::new(RecoveryConfig {
            max_held: 2,
            ..client_cfg()
        });
        c.offer(SimTime::ZERO, &packet(0, 1, 1)).unwrap();
        c.offer(SimTime::from_us(1), &packet(0, 3, 1)).unwrap();
        c.offer(SimTime::from_us(2), &packet(0, 4, 1)).unwrap();
        // Third held message trips the bound: seq 2 declared lost.
        let out = c.offer(SimTime::from_us(3), &packet(0, 5, 1)).unwrap();
        assert_eq!(out.abandoned, 1);
        assert_eq!(ids(&out.messages), vec![3, 4, 5]);
        assert_eq!(c.abandoned_gaps(), 1);
        assert!(c.fill_latencies_ps().is_empty());
        assert_eq!(c.open_gaps(), 0);
    }

    #[test]
    fn reorderer_recovery_end_to_end_with_server() {
        // The full loop: live stream with a hole, request, server replay.
        let mut server = RetransmissionServer::new(64, 1_000_000, 100_000);
        let mut rx = Reorderer::new(100);
        let mut delivered = Vec::new();
        for seq in (1..=20u32).step_by(2) {
            let p = packet(0, seq, 2);
            server.store(&p).unwrap();
            // Drop the packet starting at seq 9 on the "multicast" path.
            if seq == 9 {
                continue;
            }
            let out = rx.offer(&p).unwrap();
            delivered.extend(ids(&out.messages));
            if let Some(req) = out.request {
                for replay in server.serve(SimTime::ZERO, &req).unwrap() {
                    let out = rx.offer(&replay).unwrap();
                    delivered.extend(ids(&out.messages));
                }
            }
        }
        assert_eq!(delivered, (1..=20u64).collect::<Vec<_>>());
        assert_eq!(rx.stats().abandoned, 0);
        assert_eq!(server.stats().served, 1);
    }
}
