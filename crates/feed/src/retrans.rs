//! Gap recovery: reordering receivers and retransmission servers.
//!
//! Sequenced multicast feeds (§2's "highly-optimized, stateful
//! protocols") pair the lossy multicast stream with a unicast recovery
//! channel: receivers detect sequence gaps, request retransmission, and
//! hold later packets in a reorder buffer until the hole fills or a
//! give-up bound passes. The exchange side answers from a bounded history
//! under a token-bucket rate limit — recovery bandwidth is a shared,
//! policed resource.
//!
//! [`Reorderer`] is the receiver half (a stricter alternative to
//! [`crate::Arbiter`]'s skip-forward policy); [`RetransmissionServer`]
//! is the exchange half.

use std::collections::{BTreeMap, HashMap, VecDeque};

use tn_netdev::queues::TokenBucket;
use tn_sim::SimTime;
use tn_wire::pitch::{self, GapRequest};
use tn_wire::{Result, WireError};

/// What the reorderer wants done after a packet is offered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReorderOutput {
    /// Messages released in sequence order.
    pub messages: Vec<pitch::Message>,
    /// A retransmission request to send, if a new gap opened.
    pub request: Option<GapRequest>,
    /// Sequence numbers abandoned (buffer bound passed before recovery).
    pub abandoned: u64,
}

#[derive(Debug, Default)]
struct UnitReorder {
    next_seq: Option<u32>,
    /// Out-of-order packets keyed by start sequence.
    held: BTreeMap<u32, Vec<pitch::Message>>,
    held_messages: usize,
    /// Whether the current gap has already been requested.
    requested: bool,
}

/// Receiver-side reordering with gap requests.
#[derive(Debug)]
pub struct Reorderer {
    units: BTreeMap<u8, UnitReorder>,
    /// Held messages per unit before giving up on a gap.
    max_held: usize,
    stats: ReorderStats,
}

/// Reorderer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Messages released in order.
    pub released: u64,
    /// Gap requests issued.
    pub requests: u64,
    /// Messages recovered via retransmission (arrived while held).
    pub recovered_gaps: u64,
    /// Sequence numbers abandoned.
    pub abandoned: u64,
}

impl Reorderer {
    /// Receiver that holds at most `max_held` messages per unit while
    /// waiting for a retransmission.
    pub fn new(max_held: usize) -> Reorderer {
        Reorderer {
            units: BTreeMap::new(),
            max_held,
            stats: ReorderStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Messages currently buffered behind gaps (all units).
    pub fn held(&self) -> usize {
        self.units.values().map(|u| u.held_messages).sum()
    }

    /// Offer a sequenced-unit packet (multicast or retransmitted — the
    /// server replays the same packets, so both paths converge here).
    // The drain loops peek-then-conditionally-pop; clippy's while-let
    // suggestion would hold the map borrow across the pop.
    #[allow(clippy::while_let_loop)]
    pub fn offer(&mut self, payload: &[u8]) -> Result<ReorderOutput> {
        let pkt = pitch::Packet::new_checked(payload)?;
        let unit_id = pkt.unit();
        let seq = pkt.sequence();
        let count = u32::from(pkt.count());
        let msgs: Vec<pitch::Message> = pkt.messages().collect::<Result<_>>()?;
        let max_held = self.max_held;
        let unit = self.units.entry(unit_id).or_default();
        let mut out = ReorderOutput::default();

        let next = *unit.next_seq.get_or_insert(seq);
        let end = seq.wrapping_add(count);
        // Entirely old: duplicate.
        if wrapping_le(end, next) {
            return Ok(out);
        }
        if seq == next || wrapping_lt(seq, next) {
            // In-order (possibly overlapping): release the new tail.
            let skip = next.wrapping_sub(seq) as usize;
            let released = msgs.into_iter().skip(skip);
            out.messages.extend(released);
            unit.next_seq = Some(end);
            // Drain any held packets that are now contiguous.
            let mut gap_was_open = unit.requested;
            loop {
                let Some((&held_seq, _)) = unit.held.iter().next() else {
                    break;
                };
                let cur = unit.next_seq.expect("set above");
                if wrapping_lt(cur, held_seq) {
                    break; // still a hole before the next held packet
                }
                let (held_seq, held_msgs) = unit.held.pop_first().expect("non-empty");
                let held_count = held_msgs.len() as u32;
                unit.held_messages -= held_msgs.len();
                let held_end = held_seq.wrapping_add(held_count);
                if wrapping_le(held_end, cur) {
                    continue; // fully duplicate of what we released
                }
                let skip = cur.wrapping_sub(held_seq) as usize;
                out.messages.extend(held_msgs.into_iter().skip(skip));
                unit.next_seq = Some(held_end);
            }
            if gap_was_open && unit.held.is_empty() {
                unit.requested = false;
                self.stats.recovered_gaps += 1;
                gap_was_open = false;
            }
            let _ = gap_was_open;
        } else {
            // Future packet: a gap is open. Hold it and maybe request.
            if !unit.held.contains_key(&seq) {
                unit.held_messages += msgs.len();
                unit.held.insert(seq, msgs);
            }
            if !unit.requested {
                unit.requested = true;
                self.stats.requests += 1;
                out.request = Some(GapRequest {
                    unit: unit_id,
                    seq: next,
                    count: seq.wrapping_sub(next).min(u32::from(u16::MAX)) as u16,
                });
            }
            // Give up if the hold buffer is past its bound: skip to the
            // first held packet (declaring the hole lost) and drain.
            if unit.held_messages > max_held {
                let (&first_held, _) = unit.held.iter().next().expect("non-empty");
                let lost = first_held.wrapping_sub(next);
                out.abandoned += u64::from(lost);
                self.stats.abandoned += u64::from(lost);
                unit.next_seq = Some(first_held);
                unit.requested = false;
                // Re-run the drain by recursion-free loop.
                loop {
                    let Some((&held_seq, _)) = unit.held.iter().next() else {
                        break;
                    };
                    let cur = unit.next_seq.expect("set");
                    if wrapping_lt(cur, held_seq) {
                        break;
                    }
                    let (held_seq, held_msgs) = unit.held.pop_first().expect("non-empty");
                    let held_count = held_msgs.len() as u32;
                    unit.held_messages -= held_msgs.len();
                    let held_end = held_seq.wrapping_add(held_count);
                    if wrapping_le(held_end, cur) {
                        continue;
                    }
                    let skip = cur.wrapping_sub(held_seq) as usize;
                    out.messages.extend(held_msgs.into_iter().skip(skip));
                    unit.next_seq = Some(held_end);
                }
            }
        }
        self.stats.released += out.messages.len() as u64;
        Ok(out)
    }
}

fn wrapping_lt(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 > 0
}

fn wrapping_le(a: u32, b: u32) -> bool {
    a == b || wrapping_lt(a, b)
}

/// Exchange-side retransmission server: bounded per-unit history, rate
/// limited by a token bucket (recovery must not starve the live feed).
pub struct RetransmissionServer {
    history: HashMap<u8, VecDeque<(u32, Vec<u8>)>>,
    max_packets_per_unit: usize,
    bucket: TokenBucket,
    stats: RetransStats,
}

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetransStats {
    /// Packets stored.
    pub stored: u64,
    /// Requests served (fully or partially).
    pub served: u64,
    /// Requests refused: sequence aged out of history.
    pub too_old: u64,
    /// Requests refused: rate limit.
    pub throttled: u64,
}

impl RetransmissionServer {
    /// Server keeping `max_packets_per_unit` of history and replaying at
    /// most `rate_bytes_per_sec` (burst `burst_bytes`).
    pub fn new(
        max_packets_per_unit: usize,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) -> RetransmissionServer {
        RetransmissionServer {
            history: HashMap::new(),
            max_packets_per_unit,
            bucket: TokenBucket::new(rate_bytes_per_sec, burst_bytes),
            stats: RetransStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RetransStats {
        self.stats
    }

    /// Record a published packet (call for every live packet).
    pub fn store(&mut self, payload: &[u8]) -> Result<()> {
        let pkt = pitch::Packet::new_checked(payload)?;
        let ring = self.history.entry(pkt.unit()).or_default();
        ring.push_back((pkt.sequence(), payload.to_vec()));
        if ring.len() > self.max_packets_per_unit {
            ring.pop_front();
        }
        self.stats.stored += 1;
        Ok(())
    }

    /// Serve a gap request at time `now`: returns the stored packets
    /// covering the requested range, subject to history and rate limits.
    pub fn serve(&mut self, now: SimTime, req: &GapRequest) -> Result<Vec<Vec<u8>>> {
        let Some(ring) = self.history.get(&req.unit) else {
            self.stats.too_old += 1;
            return Err(WireError::BadField);
        };
        let want_end = req.seq.wrapping_add(u32::from(req.count));
        let mut replay = Vec::new();
        let mut covered_start = false;
        for (seq, payload) in ring {
            let pkt = pitch::Packet::new_checked(&payload[..])?;
            let end = seq.wrapping_add(u32::from(pkt.count()));
            // Overlaps the requested range?
            if wrapping_lt(*seq, want_end) && wrapping_lt(req.seq, end) {
                if wrapping_le(*seq, req.seq) {
                    covered_start = true;
                }
                replay.push(payload.clone());
            }
        }
        if replay.is_empty() || !covered_start {
            self.stats.too_old += 1;
            return Err(WireError::BadLength);
        }
        let bytes: usize = replay.iter().map(|p| p.len()).sum();
        if !self.bucket.try_consume(now, bytes) {
            self.stats.throttled += 1;
            return Err(WireError::BadLength);
        }
        self.stats.served += 1;
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(unit: u8, first_seq: u32, n: u32) -> Vec<u8> {
        let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
        for i in 0..n {
            pb.push(&pitch::Message::DeleteOrder {
                offset_ns: i,
                order_id: u64::from(first_seq.wrapping_add(i)),
            });
        }
        pb.flush().expect("non-empty")
    }

    fn ids(msgs: &[pitch::Message]) -> Vec<u64> {
        msgs.iter().map(|m| m.order_id().unwrap()).collect()
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = Reorderer::new(100);
        let out = r.offer(&packet(0, 1, 3)).unwrap();
        assert_eq!(ids(&out.messages), vec![1, 2, 3]);
        assert!(out.request.is_none());
        let out = r.offer(&packet(0, 4, 2)).unwrap();
        assert_eq!(ids(&out.messages), vec![4, 5]);
        assert_eq!(r.stats().released, 5);
        assert_eq!(r.held(), 0);
    }

    #[test]
    fn gap_holds_and_requests_then_recovers() {
        let mut r = Reorderer::new(100);
        r.offer(&packet(0, 1, 2)).unwrap(); // 1,2
                                            // 3..=4 lost; 5..=6 arrives.
        let out = r.offer(&packet(0, 5, 2)).unwrap();
        assert!(out.messages.is_empty());
        assert_eq!(
            out.request,
            Some(GapRequest {
                unit: 0,
                seq: 3,
                count: 2
            })
        );
        assert_eq!(r.held(), 2);
        // More future data: held, but no duplicate request.
        let out = r.offer(&packet(0, 7, 1)).unwrap();
        assert!(out.request.is_none());
        // Retransmission of 3..=4 arrives: everything drains in order.
        let out = r.offer(&packet(0, 3, 2)).unwrap();
        assert_eq!(ids(&out.messages), vec![3, 4, 5, 6, 7]);
        assert_eq!(r.held(), 0);
        let s = r.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.recovered_gaps, 1);
        assert_eq!(s.abandoned, 0);
    }

    #[test]
    fn gives_up_when_hold_bound_passes() {
        let mut r = Reorderer::new(3);
        r.offer(&packet(0, 1, 1)).unwrap();
        // Lose 2; buffer 3,4,5,6 — the 4th held message trips the bound.
        assert!(r.offer(&packet(0, 3, 1)).unwrap().request.is_some());
        r.offer(&packet(0, 4, 1)).unwrap();
        r.offer(&packet(0, 5, 1)).unwrap();
        let out = r.offer(&packet(0, 6, 1)).unwrap();
        assert_eq!(out.abandoned, 1); // seq 2 declared lost
        assert_eq!(ids(&out.messages), vec![3, 4, 5, 6]);
        assert_eq!(r.stats().abandoned, 1);
        // Stream continues normally afterward.
        let out = r.offer(&packet(0, 7, 1)).unwrap();
        assert_eq!(ids(&out.messages), vec![7]);
    }

    #[test]
    fn duplicates_and_overlaps() {
        let mut r = Reorderer::new(10);
        r.offer(&packet(0, 1, 3)).unwrap();
        let out = r.offer(&packet(0, 1, 3)).unwrap(); // full dup
        assert!(out.messages.is_empty());
        let out = r.offer(&packet(0, 2, 4)).unwrap(); // overlap: 4,5 new
        assert_eq!(ids(&out.messages), vec![4, 5]);
    }

    #[test]
    fn server_stores_and_replays() {
        let mut s = RetransmissionServer::new(16, 1_000_000, 10_000);
        for seq in [1u32, 4, 7] {
            s.store(&packet(2, seq, 3)).unwrap();
        }
        let replay = s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 2,
                    seq: 4,
                    count: 3,
                },
            )
            .unwrap();
        assert_eq!(replay.len(), 1);
        let pkt = pitch::Packet::new_checked(&replay[0][..]).unwrap();
        assert_eq!(pkt.sequence(), 4);
        assert_eq!(s.stats().served, 1);
        // A range spanning two packets returns both.
        let replay = s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 2,
                    seq: 5,
                    count: 4,
                },
            )
            .unwrap();
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn server_refuses_aged_out_and_unknown() {
        let mut s = RetransmissionServer::new(2, 1_000_000, 10_000);
        for seq in [1u32, 4, 7, 10] {
            s.store(&packet(0, seq, 3)).unwrap();
        }
        // Only 7.. and 10.. remain in a 2-deep ring.
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_err());
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 9,
                    seq: 1,
                    count: 1
                }
            )
            .is_err());
        assert_eq!(s.stats().too_old, 2);
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 7,
                    count: 3
                }
            )
            .is_ok());
    }

    #[test]
    fn server_rate_limits() {
        // Bucket of ~one packet; the second immediate request throttles.
        let pkt = packet(0, 1, 3);
        let mut s = RetransmissionServer::new(16, 1_000, pkt.len() as u64 + 4);
        s.store(&pkt).unwrap();
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_ok());
        assert!(s
            .serve(
                SimTime::ZERO,
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_err());
        assert_eq!(s.stats().throttled, 1);
        // Tokens refill with time.
        assert!(s
            .serve(
                SimTime::from_secs(1),
                &GapRequest {
                    unit: 0,
                    seq: 1,
                    count: 3
                }
            )
            .is_ok());
    }

    #[test]
    fn reorderer_recovery_end_to_end_with_server() {
        // The full loop: live stream with a hole, request, server replay.
        let mut server = RetransmissionServer::new(64, 1_000_000, 100_000);
        let mut rx = Reorderer::new(100);
        let mut delivered = Vec::new();
        for seq in (1..=20u32).step_by(2) {
            let p = packet(0, seq, 2);
            server.store(&p).unwrap();
            // Drop the packet starting at seq 9 on the "multicast" path.
            if seq == 9 {
                continue;
            }
            let out = rx.offer(&p).unwrap();
            delivered.extend(ids(&out.messages));
            if let Some(req) = out.request {
                for replay in server.serve(SimTime::ZERO, &req).unwrap() {
                    let out = rx.offer(&replay).unwrap();
                    delivered.extend(ids(&out.messages));
                }
            }
        }
        assert_eq!(delivered, (1..=20u64).collect::<Vec<_>>());
        assert_eq!(rx.stats().abandoned, 0);
        assert_eq!(server.stats().served, 1);
    }
}
