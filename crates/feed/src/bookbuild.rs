//! Book building from the stateful PITCH stream.
//!
//! PITCH executions, reductions and deletes carry only order ids; the
//! receiver must remember each order's symbol, side, price and size from
//! its original add. The builder maintains that state plus per-symbol
//! aggregated price levels, and reports best-bid/offer changes — the
//! events Figure 2(b)/(c) count ("filtered to just those that affect the
//! best bid and offer prices or sizes").

use std::collections::{BTreeMap, HashMap};

use tn_wire::pitch::{Message, Side};
use tn_wire::Symbol;

/// A change to a symbol's best bid or offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BboUpdate {
    /// The symbol whose top of book changed.
    pub symbol: Symbol,
    /// Side that changed.
    pub side: Side,
    /// New best price (0 when the side is empty).
    pub price: u64,
    /// New size at the best price (0 when empty).
    pub size: u64,
}

#[derive(Debug, Clone, Copy)]
struct TrackedOrder {
    symbol: Symbol,
    side: Side,
    price: u64,
    qty: u32,
}

#[derive(Debug, Default)]
struct SymbolBook {
    /// Aggregate displayed size per price level.
    bids: BTreeMap<u64, u64>,
    asks: BTreeMap<u64, u64>,
    /// Last published (price, size) per side, to suppress no-op updates.
    last_bid: Option<(u64, u64)>,
    last_ask: Option<(u64, u64)>,
}

impl SymbolBook {
    fn best(&self, side: Side) -> (u64, u64) {
        match side {
            Side::Buy => self
                .bids
                .iter()
                .next_back()
                .map(|(&p, &s)| (p, s))
                .unwrap_or((0, 0)),
            Side::Sell => self
                .asks
                .iter()
                .next()
                .map(|(&p, &s)| (p, s))
                .unwrap_or((0, 0)),
        }
    }

    fn apply(&mut self, side: Side, price: u64, delta: i64) {
        let levels = match side {
            Side::Buy => &mut self.bids,
            Side::Sell => &mut self.asks,
        };
        let entry = levels.entry(price).or_insert(0);
        let next = (*entry as i64 + delta).max(0) as u64;
        if next == 0 {
            levels.remove(&price);
        } else {
            *entry = next;
        }
    }
}

/// Builder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Messages applied.
    pub applied: u64,
    /// Messages referencing unknown order ids (evidence of upstream gaps).
    pub unknown_orders: u64,
    /// BBO updates emitted.
    pub bbo_updates: u64,
}

/// The book builder.
#[derive(Debug, Default)]
pub struct BookBuilder {
    orders: HashMap<u64, TrackedOrder>,
    books: HashMap<Symbol, SymbolBook>,
    stats: BuildStats,
}

impl BookBuilder {
    /// Fresh builder.
    pub fn new() -> BookBuilder {
        BookBuilder::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Orders currently tracked.
    pub fn tracked_orders(&self) -> usize {
        self.orders.len()
    }

    /// Current BBO for a symbol: `(bid_price, bid_size, ask_price,
    /// ask_size)`, zeros for empty sides.
    pub fn bbo(&self, symbol: Symbol) -> (u64, u64, u64, u64) {
        match self.books.get(&symbol) {
            Some(b) => {
                let (bp, bs) = b.best(Side::Buy);
                let (ap, asz) = b.best(Side::Sell);
                (bp, bs, ap, asz)
            }
            None => (0, 0, 0, 0),
        }
    }

    /// The symbol an order id belongs to, if tracked.
    pub fn symbol_of(&self, order_id: u64) -> Option<Symbol> {
        self.orders.get(&order_id).map(|o| o.symbol)
    }

    /// Apply one message; returns the BBO update it caused, if any.
    pub fn apply(&mut self, msg: &Message) -> Option<BboUpdate> {
        self.stats.applied += 1;
        let (symbol, side) = match *msg {
            Message::AddOrder {
                order_id,
                side,
                qty,
                symbol,
                price,
                ..
            } => {
                self.orders.insert(
                    order_id,
                    TrackedOrder {
                        symbol,
                        side,
                        price,
                        qty,
                    },
                );
                self.books
                    .entry(symbol)
                    .or_default()
                    .apply(side, price, i64::from(qty));
                (symbol, side)
            }
            Message::OrderExecuted { order_id, qty, .. }
            | Message::ReduceSize { order_id, qty, .. } => {
                let Some(mut o) = self.orders.get(&order_id).copied() else {
                    self.stats.unknown_orders += 1;
                    return None;
                };
                let delta = qty.min(o.qty);
                o.qty -= delta;
                if o.qty == 0 {
                    self.orders.remove(&order_id);
                } else {
                    self.orders.insert(order_id, o);
                }
                self.books
                    .entry(o.symbol)
                    .or_default()
                    .apply(o.side, o.price, -i64::from(delta));
                (o.symbol, o.side)
            }
            Message::DeleteOrder { order_id, .. } => {
                let Some(o) = self.orders.remove(&order_id) else {
                    self.stats.unknown_orders += 1;
                    return None;
                };
                self.books
                    .entry(o.symbol)
                    .or_default()
                    .apply(o.side, o.price, -i64::from(o.qty));
                (o.symbol, o.side)
            }
            Message::ModifyOrder {
                order_id,
                qty,
                price,
                ..
            } => {
                let Some(mut o) = self.orders.get(&order_id).copied() else {
                    self.stats.unknown_orders += 1;
                    return None;
                };
                let book = self.books.entry(o.symbol).or_default();
                book.apply(o.side, o.price, -i64::from(o.qty));
                book.apply(o.side, price, i64::from(qty));
                o.price = price;
                o.qty = qty;
                let (symbol, side) = (o.symbol, o.side);
                self.orders.insert(order_id, o);
                (symbol, side)
            }
            Message::Trade { .. } | Message::Time { .. } | Message::TradingStatus { .. } => {
                // Trades against hidden orders and status changes don't
                // move displayed books.
                return None;
            }
        };
        // Did the top of book change on that side?
        // audit:allow(hotpath-unwrap): books are created when a symbol is first seen; a miss is corrupted state worth a loud stop
        let book = self.books.get(&symbol).expect("book exists");
        let (price, size) = book.best(side);
        let update = BboUpdate {
            symbol,
            side,
            price,
            size,
        };
        // Track last-published BBO per (symbol, side) to suppress no-ops.
        let changed = self.note_bbo(update);
        if changed {
            self.stats.bbo_updates += 1;
            Some(update)
        } else {
            None
        }
    }

    fn note_bbo(&mut self, update: BboUpdate) -> bool {
        // Stored in the book struct to avoid another map.
        let book = self.books.entry(update.symbol).or_default();
        let slot = match update.side {
            Side::Buy => &mut book.last_bid,
            Side::Sell => &mut book.last_ask,
        };
        if *slot == Some((update.price, update.size)) {
            false
        } else {
            *slot = Some((update.price, update.size));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn add(order_id: u64, side: Side, qty: u32, price: u64) -> Message {
        Message::AddOrder {
            offset_ns: 0,
            order_id,
            side,
            qty,
            symbol: sym("SPY"),
            price,
        }
    }

    #[test]
    fn adds_move_the_bbo() {
        let mut b = BookBuilder::new();
        let u = b.apply(&add(1, Side::Buy, 100, 449_0000)).unwrap();
        assert_eq!(
            u,
            BboUpdate {
                symbol: sym("SPY"),
                side: Side::Buy,
                price: 449_0000,
                size: 100
            }
        );
        // A better bid moves the top.
        let u = b.apply(&add(2, Side::Buy, 50, 450_0000)).unwrap();
        assert_eq!(u.price, 450_0000);
        assert_eq!(u.size, 50);
        // A worse bid does not.
        assert!(b.apply(&add(3, Side::Buy, 10, 448_0000)).is_none());
        assert_eq!(b.bbo(sym("SPY")), (450_0000, 50, 0, 0));
        assert_eq!(b.tracked_orders(), 3);
    }

    #[test]
    fn size_changes_at_the_top_are_bbo_updates() {
        let mut b = BookBuilder::new();
        b.apply(&add(1, Side::Sell, 100, 451_0000));
        b.apply(&add(2, Side::Sell, 60, 451_0000)); // same level, more size
        let u = b
            .apply(&Message::OrderExecuted {
                offset_ns: 0,
                order_id: 1,
                qty: 40,
                exec_id: 1,
            })
            .unwrap();
        assert_eq!(u.size, 120); // 160 - 40
        assert_eq!(u.price, 451_0000);
    }

    #[test]
    fn delete_exposes_next_level() {
        let mut b = BookBuilder::new();
        b.apply(&add(1, Side::Buy, 100, 450_0000));
        b.apply(&add(2, Side::Buy, 70, 449_0000));
        let u = b
            .apply(&Message::DeleteOrder {
                offset_ns: 0,
                order_id: 1,
            })
            .unwrap();
        assert_eq!(u.price, 449_0000);
        assert_eq!(u.size, 70);
        // Deleting the last order empties the side.
        let u = b
            .apply(&Message::DeleteOrder {
                offset_ns: 0,
                order_id: 2,
            })
            .unwrap();
        assert_eq!((u.price, u.size), (0, 0));
        assert_eq!(b.tracked_orders(), 0);
    }

    #[test]
    fn modify_moves_between_levels() {
        let mut b = BookBuilder::new();
        b.apply(&add(1, Side::Sell, 100, 452_0000));
        let u = b
            .apply(&Message::ModifyOrder {
                offset_ns: 0,
                order_id: 1,
                qty: 80,
                price: 451_0000,
            })
            .unwrap();
        assert_eq!(u.price, 451_0000);
        assert_eq!(u.size, 80);
        assert_eq!(b.bbo(sym("SPY")).2, 451_0000);
    }

    #[test]
    fn unknown_orders_are_counted_not_fatal() {
        let mut b = BookBuilder::new();
        assert!(b
            .apply(&Message::OrderExecuted {
                offset_ns: 0,
                order_id: 99,
                qty: 1,
                exec_id: 1
            })
            .is_none());
        assert!(b
            .apply(&Message::DeleteOrder {
                offset_ns: 0,
                order_id: 98
            })
            .is_none());
        assert_eq!(b.stats().unknown_orders, 2);
    }

    #[test]
    fn non_book_messages_are_ignored() {
        let mut b = BookBuilder::new();
        assert!(b.apply(&Message::Time { seconds: 1 }).is_none());
        assert!(b
            .apply(&Message::TradingStatus {
                offset_ns: 0,
                symbol: sym("SPY"),
                status: b'H'
            })
            .is_none());
        assert_eq!(b.stats().applied, 2);
        assert_eq!(b.stats().bbo_updates, 0);
    }

    #[test]
    fn depth_changes_below_top_do_not_emit() {
        let mut b = BookBuilder::new();
        b.apply(&add(1, Side::Buy, 100, 450_0000));
        b.apply(&add(2, Side::Buy, 100, 449_0000));
        // Reduce the second-level order: BBO unchanged.
        assert!(b
            .apply(&Message::ReduceSize {
                offset_ns: 0,
                order_id: 2,
                qty: 50
            })
            .is_none());
        assert_eq!(b.stats().bbo_updates, 1);
    }
}
