//! The normalizer core: native feed in, normalized records out.
//!
//! §2: "The normalizer's purpose is to convert from each exchange's
//! format to an internal standard format, and also to re-partition the
//! data, again according to some standard." This module is that
//! transformation as a pure state machine; `tn-trading` wraps it in a
//! simulation node with service-time modeling.

use tn_wire::norm;
use tn_wire::pitch::{Message, Side};
use tn_wire::{Result, Symbol};

use crate::arb::Arbiter;
use crate::bookbuild::BookBuilder;

/// Maps a symbol to the firm's internal partition.
pub trait Repartition {
    /// Partition for `symbol` (dense, `< partitions()`).
    fn partition_for(&self, symbol: Symbol) -> u16;
    /// Total partitions.
    fn partitions(&self) -> u16;
}

/// FNV-hash repartitioning over a fixed count (the firm-internal default;
/// the paper notes one strategy's partition count growing 600 → 1300).
#[derive(Debug, Clone, Copy)]
pub struct HashRepartition {
    /// Partition count.
    pub partitions: u16,
}

impl Repartition for HashRepartition {
    fn partition_for(&self, symbol: Symbol) -> u16 {
        let mut h = 0xcbf29ce484222325u64;
        for b in symbol.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % u64::from(self.partitions.max(1))) as u16
    }

    fn partitions(&self) -> u16 {
        self.partitions
    }
}

/// A normalized record tagged with its internal partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizerOutput {
    /// Internal partition the record belongs on.
    pub partition: u16,
    /// The record.
    pub record: norm::Record,
}

/// Interns symbols to dense ids on first sight.
pub trait SymbolInterner {
    /// Stable id for `symbol`.
    fn intern(&mut self, symbol: Symbol) -> u32;
}

/// A simple growable interner.
#[derive(Debug, Default)]
pub struct MapInterner {
    map: std::collections::HashMap<Symbol, u32>,
}

impl SymbolInterner for MapInterner {
    fn intern(&mut self, symbol: Symbol) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(symbol).or_insert(next)
    }
}

impl MapInterner {
    /// Pre-assign ids in iteration order so they match a firm-wide
    /// dictionary (strategies must agree with normalizers on ids).
    pub fn preload(&mut self, symbols: impl IntoIterator<Item = Symbol>) {
        for s in symbols {
            self.intern(s);
        }
    }
}

/// Normalizer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormStats {
    /// Feed packets consumed (post-arbitration).
    pub packets_in: u64,
    /// Native messages consumed.
    pub messages_in: u64,
    /// Normalized records produced.
    pub records_out: u64,
}

/// The normalizer core for one exchange's feed.
pub struct NormalizerCore<R: Repartition> {
    exchange_id: u8,
    arbiter: Arbiter,
    builder: BookBuilder,
    interner: MapInterner,
    repartition: R,
    stats: NormStats,
    /// Emit depth deltas in addition to BBO updates.
    pub emit_depth: bool,
}

impl<R: Repartition> NormalizerCore<R> {
    /// A normalizer for `exchange_id`'s feed, repartitioning with `r`.
    pub fn new(exchange_id: u8, repartition: R) -> NormalizerCore<R> {
        NormalizerCore {
            exchange_id,
            arbiter: Arbiter::new(),
            builder: BookBuilder::new(),
            interner: MapInterner::default(),
            repartition,
            stats: NormStats::default(),
            emit_depth: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> NormStats {
        self.stats
    }

    /// Arbitration state (gaps etc.).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Mirror the inner arbiter's counters into a metrics registry.
    pub fn set_metrics(&mut self, metrics: &tn_sim::Metrics) {
        self.arbiter.set_metrics(metrics);
    }

    /// Pre-assign symbol ids in iteration order (to match a firm-wide
    /// dictionary shared with strategies).
    pub fn preload_symbols(&mut self, symbols: impl IntoIterator<Item = Symbol>) {
        self.interner.preload(symbols);
    }

    /// Process one feed packet (UDP payload from either A or B side).
    /// `src_time_ns` is the receive timestamp propagated into records.
    pub fn on_packet(&mut self, payload: &[u8], src_time_ns: u64) -> Result<Vec<NormalizerOutput>> {
        let Some(msgs) = self.arbiter.offer(payload)? else {
            // audit:allow(hotpath-alloc): capacity-0 Vec never touches the heap
            return Ok(Vec::new()); // duplicate
        };
        self.stats.packets_in += 1;
        // audit:allow(hotpath-alloc): per-packet message batch; zero-alloc feed path is ROADMAP item 2
        let mut out = Vec::new();
        for msg in msgs {
            self.stats.messages_in += 1;
            self.normalize(&msg, src_time_ns, &mut out);
        }
        self.stats.records_out += out.len() as u64;
        Ok(out)
    }

    fn normalize(&mut self, msg: &Message, src_time_ns: u64, out: &mut Vec<NormalizerOutput>) {
        // Resolve the symbol before mutating the book (deletes forget it).
        let symbol = msg
            .symbol()
            .or_else(|| msg.order_id().and_then(|id| self.builder.symbol_of(id)));
        // Trades print directly.
        if let Message::Trade {
            side,
            qty,
            price,
            exec_id,
            ..
        } = *msg
        {
            if let Some(symbol) = symbol {
                let symbol_id = self.interner.intern(symbol);
                out.push(self.make(
                    symbol,
                    norm::Record {
                        kind: norm::Kind::Trade,
                        exchange: self.exchange_id,
                        side: side_byte(side),
                        flags: 0,
                        symbol_id,
                        price: price as i64,
                        size: u64::from(qty) as u32,
                        aux: exec_id as u32,
                        src_time_ns,
                    },
                ));
            }
            return;
        }
        if let Message::TradingStatus { symbol, status, .. } = *msg {
            let symbol_id = self.interner.intern(symbol);
            out.push(self.make(
                symbol,
                norm::Record {
                    kind: norm::Kind::Status,
                    exchange: self.exchange_id,
                    side: status,
                    flags: 0,
                    symbol_id,
                    price: 0,
                    size: 0,
                    aux: 0,
                    src_time_ns,
                },
            ));
            return;
        }
        let bbo = self.builder.apply(msg);
        if let Some(u) = bbo {
            let symbol_id = self.interner.intern(u.symbol);
            let (_, bid_size, _, ask_size) = self.builder.bbo(u.symbol);
            let aux = match u.side {
                Side::Buy => ask_size,
                Side::Sell => bid_size,
            } as u32;
            out.push(self.make(
                u.symbol,
                norm::Record {
                    kind: norm::Kind::Bbo,
                    exchange: self.exchange_id,
                    side: side_byte(u.side),
                    flags: 0,
                    symbol_id,
                    price: u.price as i64,
                    size: u.size as u32,
                    aux,
                    src_time_ns,
                },
            ));
        } else if self.emit_depth {
            if let Some(symbol) = symbol {
                let symbol_id = self.interner.intern(symbol);
                out.push(self.make(
                    symbol,
                    norm::Record {
                        kind: norm::Kind::BookDelta,
                        exchange: self.exchange_id,
                        side: 0,
                        flags: 0,
                        symbol_id,
                        price: 0,
                        size: 0,
                        aux: 0,
                        src_time_ns,
                    },
                ));
            }
        }
    }

    fn make(&self, symbol: Symbol, record: norm::Record) -> NormalizerOutput {
        NormalizerOutput {
            partition: self.repartition.partition_for(symbol),
            record,
        }
    }
}

fn side_byte(side: Side) -> u8 {
    match side {
        Side::Buy => b'B',
        Side::Sell => b'S',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_wire::pitch::PacketBuilder;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn packet(first_seq: u32, msgs: &[Message]) -> Vec<u8> {
        let mut pb = PacketBuilder::new(0, first_seq, 1400);
        for m in msgs {
            pb.push(m);
        }
        pb.flush().unwrap()
    }

    fn add(order_id: u64, side: Side, qty: u32, price: u64, s: &str) -> Message {
        Message::AddOrder {
            offset_ns: 0,
            order_id,
            side,
            qty,
            symbol: sym(s),
            price,
        }
    }

    #[test]
    fn bbo_records_flow_through() {
        let mut n = NormalizerCore::new(2, HashRepartition { partitions: 8 });
        let p = packet(1, &[add(1, Side::Buy, 100, 450_0000, "SPY")]);
        let out = n.on_packet(&p, 34_200_000_000_123).unwrap();
        assert_eq!(out.len(), 1);
        let r = out[0].record;
        assert_eq!(r.kind, norm::Kind::Bbo);
        assert_eq!(r.exchange, 2);
        assert_eq!(r.side, b'B');
        assert_eq!(r.price, 450_0000);
        assert_eq!(r.size, 100);
        assert_eq!(r.src_time_ns, 34_200_000_000_123);
        let expected = HashRepartition { partitions: 8 }.partition_for(sym("SPY"));
        assert_eq!(out[0].partition, expected);
    }

    #[test]
    fn duplicates_produce_nothing() {
        let mut n = NormalizerCore::new(2, HashRepartition { partitions: 8 });
        let p = packet(1, &[add(1, Side::Buy, 100, 450_0000, "SPY")]);
        assert_eq!(n.on_packet(&p, 0).unwrap().len(), 1);
        assert_eq!(n.on_packet(&p, 0).unwrap().len(), 0);
        assert_eq!(n.stats().packets_in, 1);
        assert_eq!(n.arbiter().stats().duplicates, 1);
    }

    #[test]
    fn trades_and_status_normalize() {
        let mut n = NormalizerCore::new(3, HashRepartition { partitions: 4 });
        let msgs = [
            Message::Trade {
                offset_ns: 0,
                order_id: 9,
                side: Side::Sell,
                qty: 10,
                symbol: sym("QQQ"),
                price: 380_0000,
                exec_id: 77,
            },
            Message::TradingStatus {
                offset_ns: 0,
                symbol: sym("QQQ"),
                status: b'H',
            },
        ];
        let out = n.on_packet(&packet(1, &msgs), 5).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].record.kind, norm::Kind::Trade);
        assert_eq!(out[0].record.aux, 77);
        assert_eq!(out[1].record.kind, norm::Kind::Status);
        assert_eq!(out[1].record.side, b'H');
        // Same symbol, same partition.
        assert_eq!(out[0].partition, out[1].partition);
    }

    #[test]
    fn non_bbo_depth_suppressed_unless_enabled() {
        let mut n = NormalizerCore::new(1, HashRepartition { partitions: 4 });
        let p1 = packet(
            1,
            &[
                add(1, Side::Buy, 100, 450_0000, "SPY"),
                add(2, Side::Buy, 100, 449_0000, "SPY"),
            ],
        );
        // Second add is below the top: only one BBO record.
        let out = n.on_packet(&p1, 0).unwrap();
        assert_eq!(out.len(), 1);
        // With depth enabled, the below-top add also emits.
        let mut n2 = NormalizerCore::new(1, HashRepartition { partitions: 4 });
        n2.emit_depth = true;
        let out = n2.on_packet(&p1, 0).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].record.kind, norm::Kind::BookDelta);
    }

    #[test]
    fn delete_resolves_symbol_before_forgetting() {
        let mut n = NormalizerCore::new(1, HashRepartition { partitions: 4 });
        n.emit_depth = true;
        let p1 = packet(
            1,
            &[
                add(1, Side::Buy, 100, 450_0000, "SPY"),
                add(2, Side::Buy, 50, 451_0000, "SPY"),
            ],
        );
        n.on_packet(&p1, 0).unwrap();
        // Delete order 1 (below top after order 2 improved it): must emit
        // a BookDelta with SPY's partition, not be dropped.
        let p2 = packet(
            3,
            &[Message::DeleteOrder {
                offset_ns: 0,
                order_id: 1,
            }],
        );
        let out = n.on_packet(&p2, 0).unwrap();
        assert_eq!(out.len(), 1);
        let expected = HashRepartition { partitions: 4 }.partition_for(sym("SPY"));
        assert_eq!(out[0].partition, expected);
    }

    #[test]
    fn interner_is_stable() {
        let mut i = MapInterner::default();
        let a = i.intern(sym("SPY"));
        let b = i.intern(sym("QQQ"));
        assert_ne!(a, b);
        assert_eq!(i.intern(sym("SPY")), a);
    }

    #[test]
    fn hash_repartition_is_balanced() {
        let r = HashRepartition { partitions: 16 };
        let mut counts = vec![0u32; 16];
        for i in 0..1600 {
            let s = Symbol::new(&format!("S{i:04}")).unwrap();
            counts[r.partition_for(s) as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max < &(2 * min), "{counts:?}");
        assert_eq!(r.partitions(), 16);
    }
}
