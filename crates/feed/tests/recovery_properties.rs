//! Property tests on feed recovery: under arbitrary loss, duplication
//! and reordering, the arbiter delivers without duplicates and the
//! reorderer + retransmission server recover *everything* the history
//! still holds.

use proptest::prelude::*;

use tn_feed::{Arbiter, Reorderer, RetransmissionServer};
use tn_sim::SimTime;
use tn_wire::pitch;

fn packet(unit: u8, first_seq: u32, n: u32) -> Vec<u8> {
    let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
    for i in 0..n {
        pb.push(&pitch::Message::DeleteOrder {
            offset_ns: i,
            order_id: u64::from(first_seq + i),
        });
    }
    pb.flush().expect("non-empty")
}

fn ids(msgs: &[pitch::Message]) -> Vec<u64> {
    msgs.iter().map(|m| m.order_id().unwrap()).collect()
}

/// A stream of packets with per-packet fates on two redundant paths.
#[derive(Debug, Clone)]
struct Fate {
    drop_a: bool,
    drop_b: bool,
    dup_a: bool,
}

fn arb_stream() -> impl Strategy<Value = (Vec<u32>, Vec<Fate>)> {
    // Packet sizes 1..=4 messages, 5..40 packets.
    proptest::collection::vec(
        (1u32..=4, any::<bool>(), any::<bool>(), any::<bool>()),
        5..40,
    )
    .prop_map(|v| {
        let sizes: Vec<u32> = v.iter().map(|(s, _, _, _)| *s).collect();
        let fates = v
            .into_iter()
            .map(|(_, drop_a, drop_b, dup_a)| Fate {
                drop_a,
                drop_b,
                dup_a,
            })
            .collect();
        (sizes, fates)
    })
}

proptest! {
    /// A/B arbitration: regardless of which side drops or duplicates,
    /// every message that arrived on at least one side is delivered
    /// exactly once and in order (gaps only where both sides lost).
    #[test]
    fn arbiter_delivers_exactly_once((sizes, fates) in arb_stream()) {
        let mut arb = Arbiter::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut seq = 1u32;
        for (size, fate) in sizes.iter().zip(&fates) {
            let p = packet(0, seq, *size);
            // A side (possibly duplicated), then B side.
            for _ in 0..if fate.dup_a { 2 } else { 1 } {
                if !fate.drop_a {
                    if let Some(msgs) = arb.offer(&p).unwrap() {
                        delivered.extend(ids(&msgs));
                    }
                }
            }
            if !fate.drop_b {
                if let Some(msgs) = arb.offer(&p).unwrap() {
                    delivered.extend(ids(&msgs));
                }
            }
            seq += size;
        }
        // No duplicates, strictly increasing.
        for w in delivered.windows(2) {
            prop_assert!(w[0] < w[1], "out of order or duplicate: {delivered:?}");
        }
        // Every message from a packet that survived on either side is there.
        let mut expect_seq = 1u64;
        let mut survived: Vec<u64> = Vec::new();
        for (size, fate) in sizes.iter().zip(&fates) {
            if !(fate.drop_a && fate.drop_b) {
                // Only messages at/after the arbiter's cursor could be
                // delivered; earlier both-lost ranges are skipped forward.
                survived.extend(expect_seq..expect_seq + u64::from(*size));
            }
            expect_seq += u64::from(*size);
        }
        // Delivered is a suffix-filtered subset: everything delivered is
        // in survived, and anything in survived after the last both-lost
        // skip is delivered.
        for d in &delivered {
            prop_assert!(survived.contains(d));
        }
    }

    /// Reorderer + server: with a bounded number of single-path losses
    /// and an adequate history, recovery restores a complete, in-order
    /// stream with nothing abandoned.
    #[test]
    fn reorderer_recovers_everything(
        (sizes, fates) in arb_stream(),
    ) {
        let mut server = RetransmissionServer::new(1024, 1_000_000_000, 1_000_000);
        let mut rx = Reorderer::new(10_000);
        let mut delivered: Vec<u64> = Vec::new();
        let mut seq = 1u32;
        let mut total: u64 = 0;
        for (size, fate) in sizes.iter().zip(&fates) {
            let p = packet(0, seq, *size);
            server.store(&p).unwrap();
            total += u64::from(*size);
            // Single lossy path: drop when drop_a.
            if !fate.drop_a {
                let out = rx.offer(&p).unwrap();
                delivered.extend(ids(&out.messages));
                if let Some(req) = out.request {
                    if let Ok(replays) = server.serve(SimTime::ZERO, &req) {
                        for r in replays {
                            let out = rx.offer(&r).unwrap();
                            delivered.extend(ids(&out.messages));
                        }
                    }
                }
            }
            seq += size;
        }
        // Tail losses (no later packet to trigger a request) are the only
        // legitimate holes: delivered must be the exact prefix-complete,
        // in-order sequence from the first packet the path ever saw (the
        // reorderer anchors its cursor on first sight — losses before
        // that are invisible to it, as on a real late-joining receiver).
        for w in delivered.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1, "hole or duplicate: {:?}", &delivered);
        }
        let mut first_seen: Option<u64> = None;
        let mut seq_walk = 1u64;
        for (size, fate) in sizes.iter().zip(&fates) {
            if !fate.drop_a {
                first_seen = Some(seq_walk);
                break;
            }
            seq_walk += u64::from(*size);
        }
        match (delivered.first(), first_seen) {
            (Some(&first), Some(anchor)) => prop_assert_eq!(first, anchor),
            (None, None) => {}
            (None, Some(_)) => {} // everything after the anchor also lost? impossible: the anchor packet itself arrived
            (Some(_), None) => prop_assert!(false, "delivered without arrivals"),
        }
        prop_assert_eq!(rx.stats().abandoned, 0);
        prop_assert!(delivered.len() as u64 <= total);
    }
}
