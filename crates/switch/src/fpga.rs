//! FPGA-augmented Layer-1 switch.
//!
//! §5 ("Hardware") points at commercial L1 switches with reconfigurable-
//! logic accelerators as "the best of both worlds — 100-nanosecond
//! latency and standard IP forwarding and multicast — although they tend
//! to have small forwarding tables." This node models that design point:
//!
//! * fixed ~100 ns pipeline latency,
//! * IP multicast with a *small*, hard-capacity group table — overflow
//!   joins are **rejected** (no CPU to fall back to),
//! * unicast host routes,
//! * optional per-ingress-port group filters, the "combine data arriving
//!   on multiple interfaces \[with\] data filtering" idea: a merge that
//!   discards what the subscriber doesn't want instead of queueing it.

use std::collections::{HashMap, HashSet};

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Metrics, Node, PortId, SimTime, TimerToken};
use tn_wire::{eth, igmp, ipv4};

/// Configuration of an [`FpgaL1Switch`].
#[derive(Debug, Clone)]
pub struct FpgaConfig {
    /// Pipeline latency (≈100 ns per §5).
    pub latency: SimTime,
    /// Hard multicast table capacity.
    pub mcast_table_size: usize,
}

impl Default for FpgaConfig {
    fn default() -> FpgaConfig {
        FpgaConfig {
            latency: SimTime::from_ns(100),
            mcast_table_size: 128,
        }
    }
}

/// Counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpgaStats {
    /// Multicast replications forwarded.
    pub mcast_forwarded: u64,
    /// Unicast frames forwarded.
    pub unicast_forwarded: u64,
    /// Frames discarded by ingress filters (this is *useful* work:
    /// filtered merges shed load the subscriber never wanted).
    pub filtered: u64,
    /// Frames to unknown groups / without routes.
    pub dropped: u64,
    /// Joins rejected because the table was full.
    pub joins_rejected: u64,
}

const PIPE_TOKEN: u64 = 1;

/// The FPGA-L1S node.
pub struct FpgaL1Switch {
    cfg: FpgaConfig,
    groups: HashMap<ipv4::Addr, Vec<PortId>>,
    routes: HashMap<ipv4::Addr, PortId>,
    /// Per-ingress-port allow-lists. A port without an entry passes
    /// everything.
    ingress_filters: HashMap<PortId, HashSet<ipv4::Addr>>,
    pipe: TxQueue,
    stats: FpgaStats,
    metrics: Metrics,
}

impl FpgaL1Switch {
    /// Build with the given configuration.
    pub fn new(cfg: FpgaConfig) -> FpgaL1Switch {
        let pipe = TxQueue::new(PIPE_TOKEN).with_pipeline(cfg.latency);
        FpgaL1Switch {
            cfg,
            groups: HashMap::new(),
            routes: HashMap::new(),
            ingress_filters: HashMap::new(),
            pipe,
            stats: FpgaStats::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// Install a unicast host route.
    pub fn add_route(&mut self, dst: ipv4::Addr, port: PortId) {
        self.routes.insert(dst, port);
    }

    /// Statically add `port` to `group` (provisioned, not IGMP-learned).
    /// Returns `false` if the table is full.
    pub fn add_group_member(&mut self, group: ipv4::Addr, port: PortId) -> bool {
        if !self.groups.contains_key(&group) && self.groups.len() >= self.cfg.mcast_table_size {
            self.stats.joins_rejected += 1;
            return false;
        }
        let members = self.groups.entry(group).or_default();
        if !members.contains(&port) {
            members.push(port);
        }
        true
    }

    /// Restrict what `port` may inject: only frames to `groups` pass.
    /// This is the §5 "filtering" feature that makes merges safe.
    pub fn set_ingress_filter(&mut self, port: PortId, groups: HashSet<ipv4::Addr>) {
        self.ingress_filters.insert(port, groups);
    }

    /// Counters so far.
    pub fn stats(&self) -> FpgaStats {
        self.stats
    }

    /// Installed group count.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl Node for FpgaL1Switch {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        let Ok(eth_view) = eth::Frame::new_checked(frame.bytes.as_slice()) else {
            ctx.recycle(frame);
            return;
        };
        self.metrics.inc("switch", "frames", Some(ctx.me().0));
        if eth_view.ethertype() != eth::EtherType::Ipv4 {
            self.stats.dropped += 1;
            self.metrics.inc("switch", "no_route", Some(ctx.me().0));
            ctx.recycle(frame);
            return;
        }
        let Ok(ip) = ipv4::Packet::new_checked(eth_view.payload()) else {
            ctx.recycle(frame);
            return;
        };
        let dst = ip.dst();

        if ip.protocol() == ipv4::PROTO_IGMP {
            if let Ok(msg) = igmp::Message::parse(ip.payload()) {
                match msg.kind {
                    igmp::MessageType::Report => {
                        self.add_group_member(msg.group, port);
                    }
                    igmp::MessageType::Leave => {
                        if let Some(m) = self.groups.get_mut(&msg.group) {
                            m.retain(|&p| p != port);
                            if m.is_empty() {
                                self.groups.remove(&msg.group);
                            }
                        }
                    }
                    igmp::MessageType::Query => {}
                }
            }
            ctx.recycle(frame);
            return;
        }

        let me = ctx.me().0;
        if let Some(allow) = self.ingress_filters.get(&port) {
            if !allow.contains(&dst) {
                self.stats.filtered += 1;
                self.metrics.inc("switch", "filtered", Some(me));
                ctx.recycle(frame);
                return;
            }
        }

        if dst.is_multicast() {
            match self.groups.get(&dst) {
                Some(members) => {
                    // Arena-backed replication: one recycled buffer per
                    // egress, all carrying the ingress FrameId.
                    for &p in members {
                        if p != port {
                            self.stats.mcast_forwarded += 1;
                            self.metrics.inc("switch", "mcast_fwd", Some(me));
                            let copy = ctx.clone_frame(&frame);
                            self.pipe.send_after(ctx, SimTime::ZERO, p, copy);
                        }
                    }
                }
                None => {
                    self.stats.dropped += 1;
                    self.metrics.inc("switch", "mcast_drop", Some(me));
                }
            }
            ctx.recycle(frame);
            return;
        }

        match self.routes.get(&dst) {
            Some(&p) if p != port => {
                self.stats.unicast_forwarded += 1;
                self.metrics.inc("switch", "unicast_fwd", Some(me));
                self.pipe.send_after(ctx, SimTime::ZERO, p, frame);
            }
            _ => {
                self.stats.dropped += 1;
                self.metrics.inc("switch", "no_route", Some(me));
                ctx.recycle(frame);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        let consumed = self.pipe.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer {timer:?}");
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::eth::MacAddr;
    use tn_wire::stack;

    struct Sink {
        got: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, _f: Frame) {
            self.got.push(ctx.now());
        }
    }

    fn feed(group: ipv4::Addr) -> Vec<u8> {
        stack::build_udp(
            MacAddr::host(1),
            None,
            ipv4::Addr::host(1),
            group,
            1,
            1,
            &[0; 64],
        )
    }

    fn rig(cfg: FpgaConfig, sinks: usize) -> (Simulator, tn_sim::NodeId, Vec<tn_sim::NodeId>) {
        let mut sim = Simulator::new(9);
        let sw = sim.add_node("fpga", FpgaL1Switch::new(cfg));
        let mut ids = Vec::new();
        for i in 0..sinks {
            let s = sim.add_node(format!("s{i}"), Sink { got: vec![] });
            sim.connect_spec(
                sw,
                PortId(1 + i as u16),
                s,
                PortId(0),
                &LinkSpec::ideal(SimTime::ZERO),
            );
            ids.push(s);
        }
        (sim, sw, ids)
    }

    #[test]
    fn multicast_at_100ns() {
        let (mut sim, sw, sinks) = rig(FpgaConfig::default(), 2);
        let g = ipv4::Addr::multicast_group(1);
        {
            let s = sim.node_mut::<FpgaL1Switch>(sw).unwrap();
            assert!(s.add_group_member(g, PortId(1)));
            assert!(s.add_group_member(g, PortId(2)));
        }
        let bytes = feed(g);
        let f = sim.frame().copy_from(&bytes).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(0), f);
        sim.run();
        for s in &sinks {
            assert_eq!(
                sim.node::<Sink>(*s).unwrap().got,
                vec![SimTime::from_ns(100)]
            );
        }
        assert_eq!(
            sim.node::<FpgaL1Switch>(sw)
                .unwrap()
                .stats()
                .mcast_forwarded,
            2
        );
    }

    #[test]
    fn small_table_rejects_overflow_joins() {
        let cfg = FpgaConfig {
            mcast_table_size: 2,
            ..FpgaConfig::default()
        };
        let (mut sim, sw, _sinks) = rig(cfg, 1);
        let s = sim.node_mut::<FpgaL1Switch>(sw).unwrap();
        assert!(s.add_group_member(ipv4::Addr::multicast_group(0), PortId(1)));
        assert!(s.add_group_member(ipv4::Addr::multicast_group(1), PortId(1)));
        assert!(!s.add_group_member(ipv4::Addr::multicast_group(2), PortId(1)));
        // Existing group still accepts new members.
        assert!(s.add_group_member(ipv4::Addr::multicast_group(0), PortId(2)));
        assert_eq!(s.group_count(), 2);
        assert_eq!(s.stats().joins_rejected, 1);
    }

    #[test]
    fn ingress_filter_sheds_unwanted_groups() {
        let (mut sim, sw, sinks) = rig(FpgaConfig::default(), 1);
        let wanted = ipv4::Addr::multicast_group(1);
        let unwanted = ipv4::Addr::multicast_group(2);
        {
            let s = sim.node_mut::<FpgaL1Switch>(sw).unwrap();
            s.add_group_member(wanted, PortId(1));
            s.add_group_member(unwanted, PortId(1));
            s.set_ingress_filter(PortId(0), HashSet::from([wanted]));
        }
        for g in [wanted, unwanted] {
            let bytes = feed(g);
            let f = sim.frame().copy_from(&bytes).build();
            sim.inject_frame(SimTime::ZERO, sw, PortId(0), f);
        }
        sim.run();
        assert_eq!(sim.node::<Sink>(sinks[0]).unwrap().got.len(), 1);
        let stats = sim.node::<FpgaL1Switch>(sw).unwrap().stats();
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.mcast_forwarded, 1);
    }

    #[test]
    fn igmp_learning_and_unicast() {
        let (mut sim, sw, sinks) = rig(FpgaConfig::default(), 2);
        let g = ipv4::Addr::multicast_group(4);
        let join = crate::commodity::igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            g,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        sim.run();
        assert_eq!(sim.node::<FpgaL1Switch>(sw).unwrap().group_count(), 1);

        sim.node_mut::<FpgaL1Switch>(sw)
            .unwrap()
            .add_route(ipv4::Addr::host(50), PortId(2));
        let uni = stack::build_udp(
            MacAddr::host(1),
            Some(MacAddr::host(50)),
            ipv4::Addr::host(1),
            ipv4::Addr::host(50),
            1,
            2,
            b"x",
        );
        let f = sim.frame().copy_from(&uni).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<Sink>(sinks[1]).unwrap().got.len(), 1);
        assert_eq!(
            sim.node::<FpgaL1Switch>(sw)
                .unwrap()
                .stats()
                .unicast_forwarded,
            1
        );
    }

    #[test]
    fn unknown_group_or_route_drops() {
        let (mut sim, sw, _s) = rig(FpgaConfig::default(), 1);
        let bytes = feed(ipv4::Addr::multicast_group(9));
        let f = sim.frame().copy_from(&bytes).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<FpgaL1Switch>(sw).unwrap().stats().dropped, 1);
    }
}
