//! Layer-1 switch (L1S).
//!
//! A crosspoint circuit switch in the mold of the Arista 7130 (§4.3):
//!
//! * **Fan-out**: any input port replicates to any set of output ports in
//!   5–6 ns. Pure signal regeneration — no parsing, no classification,
//!   no filtering, no queueing.
//! * **Merge**: several input ports mux onto one output for an extra
//!   ~50 ns. The mux output is a single serial stream, so simultaneous
//!   arrivals contend; contention turns into queueing (and, on a bounded
//!   egress link, loss) — the §4.3 merged-feed bottleneck.
//!
//! The configuration is static per port, set when the circuit is
//! provisioned, and cannot depend on packet contents — which is exactly
//! the limitation the paper explores.

use std::collections::HashMap;

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};

/// What a given input port is wired to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortRole {
    /// Replicate to this set of output ports (5–6 ns).
    Fanout(Vec<PortId>),
    /// Feed the merge unit driving this output port (+50 ns).
    Merge(PortId),
}

/// Timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct L1Config {
    /// Fan-out path latency (datasheet: 5–6 ns; we use 6).
    pub fanout_latency: SimTime,
    /// Merge path latency (datasheet: ~+50 ns).
    pub merge_latency: SimTime,
}

impl Default for L1Config {
    fn default() -> L1Config {
        L1Config {
            fanout_latency: SimTime::from_ns(6),
            merge_latency: SimTime::from_ns(56),
        }
    }
}

/// Counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Frame replications out of fan-out circuits.
    pub fanned_out: u64,
    /// Frames muxed through merge units.
    pub merged: u64,
    /// Frames arriving on unprovisioned ports (misconfiguration).
    pub unprovisioned: u64,
}

/// The L1 switch node.
pub struct L1Switch {
    roles: HashMap<PortId, PortRole>,
    fanout_path: TxQueue,
    merge_path: TxQueue,
    stats: L1Stats,
}

const FANOUT_TOKEN: u64 = 1;
const MERGE_TOKEN: u64 = 2;

impl L1Switch {
    /// An unprovisioned switch with the given timing.
    pub fn new(cfg: L1Config) -> L1Switch {
        L1Switch {
            roles: HashMap::new(),
            fanout_path: TxQueue::new(FANOUT_TOKEN).with_pipeline(cfg.fanout_latency),
            merge_path: TxQueue::new(MERGE_TOKEN).with_pipeline(cfg.merge_latency),
            stats: L1Stats::default(),
        }
    }

    /// Provision `input` to replicate to `outputs`.
    pub fn provision_fanout(&mut self, input: PortId, outputs: Vec<PortId>) {
        assert!(!outputs.contains(&input), "fanout loop");
        self.roles.insert(input, PortRole::Fanout(outputs));
    }

    /// Provision `input` as a member of the merge feeding `output`.
    pub fn provision_merge(&mut self, input: PortId, output: PortId) {
        assert_ne!(input, output, "merge loop");
        self.roles.insert(input, PortRole::Merge(output));
    }

    /// The role of a port, if provisioned.
    pub fn role(&self, port: PortId) -> Option<&PortRole> {
        self.roles.get(&port)
    }

    /// Counters so far.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }
}

impl Node for L1Switch {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        match self.roles.get(&port) {
            Some(PortRole::Fanout(outputs)) => {
                // Each replica is an arena-backed copy carrying the original
                // FrameId; the ingress buffer goes straight back to the pool.
                for &out in outputs {
                    self.stats.fanned_out += 1;
                    let copy = ctx.clone_frame(&frame);
                    self.fanout_path.send_after(ctx, SimTime::ZERO, out, copy);
                }
                ctx.recycle(frame);
            }
            Some(PortRole::Merge(output)) => {
                let out = *output;
                self.stats.merged += 1;
                self.merge_path.send_after(ctx, SimTime::ZERO, out, frame);
            }
            None => {
                self.stats.unprovisioned += 1;
                ctx.recycle(frame);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.fanout_path.on_timer(ctx, timer) {
            return;
        }
        let consumed = self.merge_path.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer {timer:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_netdev::EtherLink;
    use tn_sim::Simulator;

    struct Sink {
        got: Vec<SimTime>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, _f: Frame) {
            self.got.push(ctx.now());
        }
    }

    #[test]
    fn fanout_replicates_in_nanoseconds() {
        let mut sim = Simulator::new(2);
        let sw = sim.add_node("l1s", L1Switch::new(L1Config::default()));
        let mut sinks = Vec::new();
        for i in 0..3u16 {
            let s = sim.add_node(format!("s{i}"), Sink { got: vec![] });
            sim.connect_spec(
                sw,
                PortId(1 + i),
                s,
                PortId(0),
                &LinkSpec::ideal(SimTime::ZERO),
            );
            sinks.push(s);
        }
        sim.node_mut::<L1Switch>(sw)
            .unwrap()
            .provision_fanout(PortId(0), vec![PortId(1), PortId(2), PortId(3)]);
        let f = sim.frame().zeroed(200).build();
        sim.inject_frame(SimTime::from_ns(100), sw, PortId(0), f);
        sim.run();
        for s in &sinks {
            let got = &sim.node::<Sink>(*s).unwrap().got;
            assert_eq!(got, &vec![SimTime::from_ns(106)]); // +6 ns, two orders below 500 ns
        }
        assert_eq!(sim.node::<L1Switch>(sw).unwrap().stats().fanned_out, 3);
    }

    #[test]
    fn merge_adds_50ns_and_contends_on_egress() {
        let mut sim = Simulator::new(2);
        let sw = sim.add_node("l1s", L1Switch::new(L1Config::default()));
        let sink = sim.add_node("sink", Sink { got: vec![] });
        // Egress is a real 10G link: contention shows up as serialization
        // queueing. EtherLink is a concrete model with no LinkSpec
        // equivalent, so it goes in through the raw `install_link` primitive.
        let link = EtherLink::ten_gig(SimTime::ZERO);
        sim.install_link(sw, PortId(9), sink, PortId(0), Box::new(link.clone()));
        sim.install_link(sink, PortId(0), sw, PortId(9), Box::new(link));
        {
            let s = sim.node_mut::<L1Switch>(sw).unwrap();
            s.provision_merge(PortId(0), PortId(9));
            s.provision_merge(PortId(1), PortId(9));
        }
        // Two 1250-byte frames arrive simultaneously on both merge inputs.
        for p in [0u16, 1] {
            let f = sim.frame().zeroed(1250).build();
            sim.inject_frame(SimTime::ZERO, sw, PortId(p), f);
        }
        sim.run();
        let got = &sim.node::<Sink>(sink).unwrap().got;
        assert_eq!(got.len(), 2);
        // First: 56 ns merge + 1 us serialization.
        assert_eq!(got[0], SimTime::from_ns(56) + SimTime::from_us(1));
        // Second: queued behind the first on the shared egress.
        assert_eq!(got[1], SimTime::from_ns(56) + SimTime::from_us(2));
        assert_eq!(sim.node::<L1Switch>(sw).unwrap().stats().merged, 2);
    }

    #[test]
    fn unprovisioned_port_drops_and_counts() {
        let mut sim = Simulator::new(2);
        let sw = sim.add_node("l1s", L1Switch::new(L1Config::default()));
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(5), f);
        sim.run();
        assert_eq!(sim.node::<L1Switch>(sw).unwrap().stats().unprovisioned, 1);
    }

    #[test]
    fn role_introspection_and_loop_guards() {
        let mut s = L1Switch::new(L1Config::default());
        s.provision_fanout(PortId(0), vec![PortId(1)]);
        s.provision_merge(PortId(2), PortId(3));
        assert_eq!(s.role(PortId(0)), Some(&PortRole::Fanout(vec![PortId(1)])));
        assert_eq!(s.role(PortId(2)), Some(&PortRole::Merge(PortId(3))));
        assert_eq!(s.role(PortId(9)), None);
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.provision_fanout(PortId(4), vec![PortId(4)]);
        }));
        assert!(bad.is_err());
    }

    #[test]
    fn latency_is_two_orders_below_commodity() {
        // §4.3: "two orders of magnitude lower latency than commodity
        // switches" — 6 ns vs 500 ns is a factor of ~83; with merge (56
        // ns) the fan-out path is still ~83x and the merge path ~9x.
        let cfg = L1Config::default();
        let commodity = SimTime::from_ns(500);
        assert!(commodity.as_ps() / cfg.fanout_latency.as_ps() >= 80);
    }
}
