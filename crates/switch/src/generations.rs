//! Hardware-trend parameter presets (§3).
//!
//! §3 quantifies two decade-scale trends that the experiments sweep over:
//!
//! * Commodity switch latency **rose** ~20% (to ~500 ns) while bandwidth
//!   doubled every generation, and multicast group capacity grew only
//!   ~80% while market data grew ~500%.
//! * Host (software) hop latency **fell** below 1 µs with kernel bypass.
//!
//! These presets give every experiment the same numbers to sweep.

use tn_sim::SimTime;

/// One device generation's headline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceGen {
    /// Marketing year of the generation.
    pub year: u32,
    /// Port-to-port (switch) or through-host (host) latency.
    pub latency: SimTime,
    /// Aggregate bandwidth per device, bits/sec.
    pub bandwidth_bps: u64,
    /// Multicast groups supported (switches; 0 for hosts).
    pub mcast_groups: usize,
}

/// Commodity switch generations, oldest first. Latency creeps *up* ~20%
/// across the decade while bandwidth ~doubles per generation and
/// multicast capacity grows only 80% end-to-end.
pub fn switch_generations() -> Vec<DeviceGen> {
    vec![
        DeviceGen {
            year: 2014,
            latency: SimTime::from_ns(420),
            bandwidth_bps: 1_280_000_000_000, // 1.28 Tbps
            mcast_groups: 2000,
        },
        DeviceGen {
            year: 2016,
            latency: SimTime::from_ns(440),
            bandwidth_bps: 3_200_000_000_000,
            mcast_groups: 2300,
        },
        DeviceGen {
            year: 2018,
            latency: SimTime::from_ns(455),
            bandwidth_bps: 6_400_000_000_000,
            mcast_groups: 2700,
        },
        DeviceGen {
            year: 2020,
            latency: SimTime::from_ns(470),
            bandwidth_bps: 12_800_000_000_000,
            mcast_groups: 3000,
        },
        DeviceGen {
            year: 2022,
            latency: SimTime::from_ns(485),
            bandwidth_bps: 25_600_000_000_000,
            mcast_groups: 3300,
        },
        DeviceGen {
            year: 2024,
            latency: SimTime::from_ns(500),
            bandwidth_bps: 51_200_000_000_000,
            mcast_groups: 3600,
        },
    ]
}

/// Host (one software hop) generations: kernel stacks giving way to
/// kernel bypass; §3 cites sub-microsecond ping-pong hops today.
pub fn host_generations() -> Vec<DeviceGen> {
    vec![
        DeviceGen {
            year: 2014,
            latency: SimTime::from_ns(3500),
            bandwidth_bps: 10_000_000_000,
            mcast_groups: 0,
        },
        DeviceGen {
            year: 2019,
            latency: SimTime::from_ns(1800),
            bandwidth_bps: 25_000_000_000,
            mcast_groups: 0,
        },
        DeviceGen {
            year: 2024,
            latency: SimTime::from_ns(900),
            bandwidth_bps: 100_000_000_000,
            mcast_groups: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_latency_rose_about_20_percent() {
        let gens = switch_generations();
        let first = gens.first().unwrap();
        let last = gens.last().unwrap();
        let growth = last.latency.as_ps() as f64 / first.latency.as_ps() as f64;
        assert!((1.15..=1.25).contains(&growth), "latency growth {growth}");
        assert_eq!(last.latency, SimTime::from_ns(500)); // §3's number
    }

    #[test]
    fn bandwidth_doubles_per_generation() {
        let gens = switch_generations();
        for pair in gens.windows(2) {
            let ratio = pair[1].bandwidth_bps as f64 / pair[0].bandwidth_bps as f64;
            assert!((1.9..=2.6).contains(&ratio), "bandwidth ratio {ratio}");
        }
    }

    #[test]
    fn mcast_capacity_grew_80_percent_while_data_grew_500() {
        let gens = switch_generations();
        let growth =
            gens.last().unwrap().mcast_groups as f64 / gens.first().unwrap().mcast_groups as f64;
        assert!((1.75..=1.85).contains(&growth), "mcast growth {growth}");
    }

    #[test]
    fn host_hop_fell_below_a_microsecond() {
        let gens = host_generations();
        assert!(gens.first().unwrap().latency > SimTime::from_us(1));
        assert!(gens.last().unwrap().latency < SimTime::from_us(1));
    }

    #[test]
    fn network_share_of_latency_is_rising() {
        // The §3 punchline: switch latency up, host latency down, so the
        // network's share of a switch+host path grows monotonically.
        let sw = switch_generations();
        let hosts = host_generations();
        let share = |s: &DeviceGen, h: &DeviceGen| {
            s.latency.as_ps() as f64 / (s.latency.as_ps() + h.latency.as_ps()) as f64
        };
        let early = share(&sw[0], &hosts[0]);
        let late = share(sw.last().unwrap(), hosts.last().unwrap());
        assert!(late > early);
        assert!(late > 0.3, "network share today should be large: {late}");
    }
}
