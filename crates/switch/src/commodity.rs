//! Commodity merchant-silicon switch.
//!
//! Models what matters to trading networks out of a modern datacenter
//! switch (§3 "Latency Trends" / "Multicast Trends"):
//!
//! * a cut-through pipeline with fixed port-to-port latency (~500 ns on
//!   current silicon, ~420 ns a decade ago);
//! * L3 unicast forwarding with host routes, a default route, and ECMP;
//! * IGMP-snooped multicast with a **bounded mroute table**. Joins beyond
//!   the table capacity leave the group on the *software* path: every
//!   packet to such a group is punted to a slow, shallow CPU queue —
//!   orders of magnitude slower and quick to drop, exactly the cliff the
//!   paper describes switches falling off when internal tables overflow.
//!
//! Multicast trees across a fabric are built hop-by-hop: when the first
//! receiver joins a group the switch forwards the join out its configured
//! multicast upstream port, and when the last receiver leaves it sends a
//! leave — a simplified PIM/IGMP-snooping hybrid sufficient for
//! deterministic tree construction in leaf-spine topologies.

use std::collections::HashMap;

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Metrics, Node, PortId, SimTime, TimerToken};
use tn_wire::{eth, igmp, ipv4};

/// What to do with traffic for groups that did not fit in the mroute
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McastOverflowPolicy {
    /// Punt to the CPU: high per-packet service time, shallow queue,
    /// heavy loss under load (the realistic default).
    SoftwareForward,
    /// Drop outright (some platforms with snooping enabled and no
    /// mrouter behave this way).
    Drop,
}

/// Static configuration of a [`CommoditySwitch`].
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Cut-through port-to-port latency.
    pub latency: SimTime,
    /// Hardware mroute table capacity (groups).
    pub mcast_table_size: usize,
    /// Overflow behavior.
    pub overflow: McastOverflowPolicy,
    /// Per-packet service time on the software path.
    pub sw_service: SimTime,
    /// Software path queue depth (packets).
    pub sw_queue: usize,
    /// Port toward the multicast rendezvous (joins propagate there).
    pub mcast_upstream: Option<PortId>,
}

impl Default for SwitchConfig {
    /// A current-generation device: 500 ns, a few thousand groups,
    /// software fallback at ~25 µs/packet with a 64-packet CPU queue.
    fn default() -> SwitchConfig {
        SwitchConfig {
            latency: SimTime::from_ns(500),
            mcast_table_size: 3600,
            overflow: McastOverflowPolicy::SoftwareForward,
            sw_service: SimTime::from_us(25),
            sw_queue: 64,
            mcast_upstream: None,
        }
    }
}

/// Observable counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Unicast frames forwarded in hardware.
    pub unicast_forwarded: u64,
    /// Multicast frame *replications* out of the hardware path.
    pub mcast_forwarded: u64,
    /// Multicast replications that went via the software path.
    pub mcast_sw_forwarded: u64,
    /// Frames dropped: no route.
    pub no_route: u64,
    /// Frames to overflowed groups dropped (policy or CPU queue full).
    pub mcast_dropped: u64,
    /// IGMP joins accepted into hardware.
    pub hw_groups_installed: u64,
    /// IGMP joins that could not be installed (table full).
    pub hw_groups_rejected: u64,
}

const HW_TOKEN: u64 = 1;
const SW_TOKEN: u64 = 2;

/// The switch node. Any number of ports; connect them with links.
pub struct CommoditySwitch {
    cfg: SwitchConfig,
    /// Host routes: exact dst address -> ECMP port set.
    routes: HashMap<ipv4::Addr, Vec<PortId>>,
    /// Default route (ECMP set).
    default_route: Vec<PortId>,
    /// Hardware multicast: group -> member ports. Bounded by config.
    hw_groups: HashMap<ipv4::Addr, Vec<PortId>>,
    /// Overflow multicast membership, held in CPU memory (unbounded).
    sw_groups: HashMap<ipv4::Addr, Vec<PortId>>,
    hw_path: TxQueue,
    sw_path: TxQueue,
    stats: SwitchStats,
    metrics: Metrics,
}

impl CommoditySwitch {
    /// Build with the given configuration.
    pub fn new(cfg: SwitchConfig) -> CommoditySwitch {
        let hw_path = TxQueue::new(HW_TOKEN).with_pipeline(cfg.latency);
        let sw_path = TxQueue::new(SW_TOKEN).with_capacity(cfg.sw_queue);
        CommoditySwitch {
            cfg,
            routes: HashMap::new(),
            default_route: Vec::new(),
            hw_groups: HashMap::new(),
            sw_groups: HashMap::new(),
            hw_path,
            sw_path,
            stats: SwitchStats::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// Install a host route (replaces any previous set).
    pub fn add_route(&mut self, dst: ipv4::Addr, ports: Vec<PortId>) {
        assert!(!ports.is_empty());
        self.routes.insert(dst, ports);
    }

    /// Set the default route (ECMP set).
    pub fn set_default_route(&mut self, ports: Vec<PortId>) {
        self.default_route = ports;
    }

    /// Counters so far.
    pub fn stats(&self) -> SwitchStats {
        let mut s = self.stats;
        // CPU-queue drops surface as multicast drops.
        s.mcast_dropped += self.sw_path.dropped();
        s
    }

    /// Number of groups on the hardware path.
    pub fn hw_group_count(&self) -> usize {
        self.hw_groups.len()
    }

    /// Number of groups stuck on the software path.
    pub fn sw_group_count(&self) -> usize {
        self.sw_groups.len()
    }

    /// Ports a frame to `group` would be replicated to (hardware first).
    pub fn group_members(&self, group: ipv4::Addr) -> &[PortId] {
        self.hw_groups
            .get(&group)
            .or_else(|| self.sw_groups.get(&group))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn ecmp_pick(ports: &[PortId], src: ipv4::Addr, dst: ipv4::Addr) -> PortId {
        // Deterministic flow hash (FNV-1a over the address pair) so a flow
        // always takes one path — reordering is unacceptable for feeds.
        let mut h = 0xcbf29ce484222325u64;
        for b in src.0.iter().chain(dst.0.iter()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        ports[(h % ports.len() as u64) as usize]
    }

    fn on_igmp(&mut self, ctx: &mut Context<'_>, port: PortId, msg: igmp::Message, frame: &Frame) {
        match msg.kind {
            igmp::MessageType::Report => {
                let hw_has = self.hw_groups.contains_key(&msg.group);
                let sw_has = self.sw_groups.contains_key(&msg.group);
                let newly_seen = !hw_has && !sw_has;
                let fits_hw =
                    hw_has || (!sw_has && self.hw_groups.len() < self.cfg.mcast_table_size);
                let members = if fits_hw {
                    if !hw_has {
                        self.stats.hw_groups_installed += 1;
                    }
                    self.hw_groups.entry(msg.group).or_default()
                } else {
                    if newly_seen {
                        // Table full: membership tracked in CPU memory.
                        self.stats.hw_groups_rejected += 1;
                    }
                    self.sw_groups.entry(msg.group).or_default()
                };
                if !members.contains(&port) {
                    members.push(port);
                }
                // First receiver for this group: pull the tree toward us.
                if newly_seen {
                    if let Some(up) = self.cfg.mcast_upstream {
                        if up != port {
                            let copy = ctx.clone_frame(frame);
                            self.hw_path.send_after(ctx, SimTime::ZERO, up, copy);
                        }
                    }
                }
            }
            igmp::MessageType::Leave => {
                let emptied = |members: &mut Vec<PortId>| {
                    members.retain(|&p| p != port);
                    members.is_empty()
                };
                let mut now_empty = false;
                if let Some(m) = self.hw_groups.get_mut(&msg.group) {
                    if emptied(m) {
                        self.hw_groups.remove(&msg.group);
                        now_empty = true;
                    }
                } else if let Some(m) = self.sw_groups.get_mut(&msg.group) {
                    if emptied(m) {
                        self.sw_groups.remove(&msg.group);
                        now_empty = true;
                    }
                }
                if now_empty {
                    if let Some(up) = self.cfg.mcast_upstream {
                        if up != port {
                            let copy = ctx.clone_frame(frame);
                            self.hw_path.send_after(ctx, SimTime::ZERO, up, copy);
                        }
                    }
                }
            }
            igmp::MessageType::Query => {} // queriers are out of scope
        }
    }

    fn forward_multicast(
        &mut self,
        ctx: &mut Context<'_>,
        ingress: PortId,
        frame: Frame,
        group: ipv4::Addr,
    ) {
        // Rendezvous forwarding: traffic always flows toward the multicast
        // upstream (the fabric's rendezvous point) in addition to local
        // members, so sources anywhere reach receivers anywhere. Data
        // arriving *from* upstream only fans out locally — no loops.
        let upstream_extra = match self.cfg.mcast_upstream {
            Some(up) if up != ingress => Some(up),
            _ => None,
        };
        let me = ctx.me().0;
        if let Some(members) = self.hw_groups.get(&group) {
            // Replicate per egress through the arena: each copy reuses a
            // recycled buffer and keeps the original FrameId so capture
            // taps still correlate the fan-out.
            for &p in members {
                if p != ingress {
                    self.stats.mcast_forwarded += 1;
                    self.metrics.inc("switch", "mcast_fwd", Some(me));
                    let copy = ctx.clone_frame(&frame);
                    self.hw_path.send_after(ctx, SimTime::ZERO, p, copy);
                }
            }
            if let Some(up) = upstream_extra {
                if !self
                    .hw_groups
                    .get(&group)
                    .map(|m| m.contains(&up))
                    .unwrap_or(false)
                {
                    self.stats.mcast_forwarded += 1;
                    self.metrics.inc("switch", "mcast_fwd", Some(me));
                    let copy = ctx.clone_frame(&frame);
                    self.hw_path.send_after(ctx, SimTime::ZERO, up, copy);
                }
            }
            ctx.recycle(frame);
            return;
        }
        if !self.sw_groups.contains_key(&group) {
            // Unknown group: still haul it to the rendezvous, where the
            // fabric-wide membership lives.
            if let Some(up) = upstream_extra {
                self.stats.mcast_forwarded += 1;
                self.metrics.inc("switch", "mcast_fwd", Some(me));
                self.hw_path.send_after(ctx, SimTime::ZERO, up, frame);
                return;
            }
        }
        if let Some(members) = self.sw_groups.get(&group).cloned() {
            match self.cfg.overflow {
                McastOverflowPolicy::Drop => {
                    self.stats.mcast_dropped += 1;
                    self.metrics.inc("switch", "mcast_drop", Some(me));
                }
                McastOverflowPolicy::SoftwareForward => {
                    let mut targets = members.clone();
                    if let Some(up) = upstream_extra {
                        if !targets.contains(&up) {
                            targets.push(up);
                        }
                    }
                    for &p in &targets {
                        if p == ingress {
                            continue;
                        }
                        let copy = ctx.clone_frame(&frame);
                        if self.sw_path.send_after(ctx, self.cfg.sw_service, p, copy) {
                            self.stats.mcast_sw_forwarded += 1;
                            self.metrics.inc("switch", "mcast_sw_fwd", Some(me));
                        }
                    }
                }
            }
            ctx.recycle(frame);
            return;
        }
        // No receivers anywhere: drop silently (normal for multicast).
        self.stats.mcast_dropped += 1;
        self.metrics.inc("switch", "mcast_drop", Some(me));
        ctx.recycle(frame);
    }
}

impl Node for CommoditySwitch {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        let Ok(eth_view) = eth::Frame::new_checked(frame.bytes.as_slice()) else {
            ctx.recycle(frame);
            return;
        };
        self.metrics.inc("switch", "frames", Some(ctx.me().0));
        if eth_view.ethertype() != eth::EtherType::Ipv4 {
            // L1-transport or unknown ethertypes are not routable here.
            self.stats.no_route += 1;
            self.metrics.inc("switch", "no_route", Some(ctx.me().0));
            ctx.recycle(frame);
            return;
        }
        let Ok(ip) = ipv4::Packet::new_checked(eth_view.payload()) else {
            ctx.recycle(frame);
            return;
        };
        let (src, dst, proto) = (ip.src(), ip.dst(), ip.protocol());

        if proto == ipv4::PROTO_IGMP {
            if let Ok(msg) = igmp::Message::parse(ip.payload()) {
                self.on_igmp(ctx, port, msg, &frame);
            }
            ctx.recycle(frame);
            return;
        }

        if dst.is_multicast() {
            self.forward_multicast(ctx, port, frame, dst);
            return;
        }

        let egress = if let Some(ports) = self.routes.get(&dst) {
            Some(Self::ecmp_pick(ports, src, dst))
        } else if !self.default_route.is_empty() {
            Some(Self::ecmp_pick(&self.default_route, src, dst))
        } else {
            None
        };
        match egress {
            Some(p) if p != port => {
                self.stats.unicast_forwarded += 1;
                self.metrics.inc("switch", "unicast_fwd", Some(ctx.me().0));
                self.hw_path.send_after(ctx, SimTime::ZERO, p, frame);
            }
            _ => {
                self.stats.no_route += 1;
                self.metrics.inc("switch", "no_route", Some(ctx.me().0));
                ctx.recycle(frame);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.hw_path.on_timer(ctx, timer) {
            return;
        }
        let consumed = self.sw_path.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer {timer:?}");
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }
}

/// Append an IGMP join/leave frame, as a host would emit it, to `out`
/// in a single pass — no intermediate per-layer buffers.
pub fn igmp_frame_into(
    kind: igmp::MessageType,
    host_mac: eth::MacAddr,
    host_ip: ipv4::Addr,
    group: ipv4::Addr,
    out: &mut Vec<u8>,
) {
    eth::emit_into(
        eth::MacAddr::ipv4_multicast(group),
        host_mac,
        eth::EtherType::Ipv4,
        &[],
        out,
    );
    let ip_start = out.len();
    out.resize(ip_start + ipv4::HEADER_LEN, 0);
    igmp::Message { kind, group }.emit_into(out);
    ipv4::finish_header(&mut out[ip_start..], host_ip, group, ipv4::PROTO_IGMP);
}

/// Build an IGMP join/leave frame as a host would emit it.
pub fn igmp_frame(
    kind: igmp::MessageType,
    host_mac: eth::MacAddr,
    host_ip: ipv4::Addr,
    group: ipv4::Addr,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(eth::HEADER_LEN + ipv4::HEADER_LEN + igmp::MESSAGE_LEN);
    igmp_frame_into(kind, host_mac, host_ip, group, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::eth::MacAddr;
    use tn_wire::stack;

    struct Sink {
        got: Vec<(SimTime, usize)>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.got.push((ctx.now(), f.len()));
        }
    }

    fn feed_frame(group: ipv4::Addr, payload_len: usize) -> Vec<u8> {
        stack::build_udp(
            MacAddr::host(1),
            None,
            ipv4::Addr::host(1),
            group,
            30001,
            30001,
            &vec![0xAB; payload_len],
        )
    }

    fn unicast_frame(src: u32, dst: u32) -> Vec<u8> {
        stack::build_udp(
            MacAddr::host(src),
            Some(MacAddr::host(dst)),
            ipv4::Addr::host(src),
            ipv4::Addr::host(dst),
            1,
            2,
            b"x",
        )
    }

    /// Rig: switch port 0 = source, ports 1..=n = sinks.
    fn rig(cfg: SwitchConfig, sinks: usize) -> (Simulator, tn_sim::NodeId, Vec<tn_sim::NodeId>) {
        let mut sim = Simulator::new(5);
        let sw = sim.add_node("sw", CommoditySwitch::new(cfg));
        let mut ids = Vec::new();
        for i in 0..sinks {
            let s = sim.add_node(format!("sink{i}"), Sink { got: vec![] });
            sim.connect_spec(
                sw,
                PortId(1 + i as u16),
                s,
                PortId(0),
                &LinkSpec::ideal(SimTime::ZERO),
            );
            ids.push(s);
        }
        (sim, sw, ids)
    }

    #[test]
    fn unicast_forwarding_with_latency() {
        let (mut sim, sw, sinks) = rig(SwitchConfig::default(), 2);
        {
            let s = sim.node_mut::<CommoditySwitch>(sw).unwrap();
            s.add_route(ipv4::Addr::host(10), vec![PortId(1)]);
            s.add_route(ipv4::Addr::host(11), vec![PortId(2)]);
        }
        let f = sim.frame().copy_from(&unicast_frame(1, 10)).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(0), f);
        sim.run();
        let got = &sim.node::<Sink>(sinks[0]).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_ns(500)); // cut-through latency
        assert!(sim.node::<Sink>(sinks[1]).unwrap().got.is_empty());
        assert_eq!(
            sim.node::<CommoditySwitch>(sw)
                .unwrap()
                .stats()
                .unicast_forwarded,
            1
        );
    }

    #[test]
    fn default_route_and_no_route() {
        let (mut sim, sw, sinks) = rig(SwitchConfig::default(), 1);
        let f = sim.frame().copy_from(&unicast_frame(1, 99)).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<CommoditySwitch>(sw).unwrap().stats().no_route, 1);
        sim.node_mut::<CommoditySwitch>(sw)
            .unwrap()
            .set_default_route(vec![PortId(1)]);
        let f = sim.frame().copy_from(&unicast_frame(1, 99)).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<Sink>(sinks[0]).unwrap().got.len(), 1);
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let ports = vec![PortId(1), PortId(2), PortId(3), PortId(4)];
        let a = CommoditySwitch::ecmp_pick(&ports, ipv4::Addr::host(1), ipv4::Addr::host(2));
        for _ in 0..10 {
            assert_eq!(
                CommoditySwitch::ecmp_pick(&ports, ipv4::Addr::host(1), ipv4::Addr::host(2)),
                a
            );
        }
        // Different flows spread across ports (at least two distinct picks
        // among a spread of flows).
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            seen.insert(CommoditySwitch::ecmp_pick(
                &ports,
                ipv4::Addr::host(i),
                ipv4::Addr::host(1000 + i),
            ));
        }
        assert!(seen.len() >= 2);
    }

    #[test]
    fn igmp_join_builds_membership_and_multicast_replicates() {
        let (mut sim, sw, sinks) = rig(SwitchConfig::default(), 3);
        let group = ipv4::Addr::multicast_group(7);
        // Sinks 1 and 2 join; sink 3 does not.
        for port in [1u16, 2] {
            let join = igmp_frame(
                igmp::MessageType::Report,
                MacAddr::host(u32::from(port)),
                ipv4::Addr::host(u32::from(port)),
                group,
            );
            let f = sim.frame().copy_from(&join).build();
            sim.inject_frame(SimTime::ZERO, sw, PortId(port), f);
        }
        sim.run();
        assert_eq!(sim.node::<CommoditySwitch>(sw).unwrap().hw_group_count(), 1);

        let f = sim.frame().copy_from(&feed_frame(group, 100)).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<Sink>(sinks[0]).unwrap().got.len(), 1);
        assert_eq!(sim.node::<Sink>(sinks[1]).unwrap().got.len(), 1);
        assert!(sim.node::<Sink>(sinks[2]).unwrap().got.is_empty());
        let stats = sim.node::<CommoditySwitch>(sw).unwrap().stats();
        assert_eq!(stats.mcast_forwarded, 2);
        assert_eq!(stats.hw_groups_installed, 1);
    }

    #[test]
    fn leave_prunes_membership() {
        let (mut sim, sw, sinks) = rig(SwitchConfig::default(), 1);
        let group = ipv4::Addr::multicast_group(7);
        let join = igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            group,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        sim.run();
        let leave = igmp_frame(
            igmp::MessageType::Leave,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            group,
        );
        let f = sim.frame().copy_from(&leave).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(1), f);
        sim.run();
        assert_eq!(sim.node::<CommoditySwitch>(sw).unwrap().hw_group_count(), 0);
        let f = sim.frame().copy_from(&feed_frame(group, 64)).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        assert!(sim.node::<Sink>(sinks[0]).unwrap().got.is_empty());
    }

    #[test]
    fn mroute_overflow_falls_back_to_software_and_is_slow() {
        let cfg = SwitchConfig {
            mcast_table_size: 2,
            sw_service: SimTime::from_us(25),
            ..SwitchConfig::default()
        };
        let (mut sim, sw, sinks) = rig(cfg, 1);
        // Join 3 groups from the same sink port; the third overflows.
        for g in 0..3u32 {
            let join = igmp_frame(
                igmp::MessageType::Report,
                MacAddr::host(1),
                ipv4::Addr::host(1),
                ipv4::Addr::multicast_group(g),
            );
            let f = sim.frame().copy_from(&join).build();
            sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        }
        sim.run();
        {
            let s = sim.node::<CommoditySwitch>(sw).unwrap();
            assert_eq!(s.hw_group_count(), 2);
            assert_eq!(s.sw_group_count(), 1);
            assert_eq!(s.stats().hw_groups_rejected, 1);
        }
        // Traffic to group 0 (hardware) vs group 2 (software).
        let t = sim.now();
        let f = sim
            .frame()
            .copy_from(&feed_frame(ipv4::Addr::multicast_group(0), 64))
            .build();
        sim.inject_frame(t, sw, PortId(0), f);
        let f = sim
            .frame()
            .copy_from(&feed_frame(ipv4::Addr::multicast_group(2), 64))
            .build();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        let got = &sim.node::<Sink>(sinks[0]).unwrap().got;
        assert_eq!(got.len(), 2);
        let hw_latency = got[0].0 - t;
        let sw_latency = got[1].0 - t;
        assert_eq!(hw_latency, SimTime::from_ns(500));
        assert_eq!(sw_latency, SimTime::from_us(25));
        // Two orders of magnitude: the §3 software-forwarding cliff.
        assert!(sw_latency.as_ps() / hw_latency.as_ps() >= 50);
    }

    #[test]
    fn software_path_drops_under_load() {
        let cfg = SwitchConfig {
            mcast_table_size: 0, // everything overflows
            sw_queue: 4,
            ..SwitchConfig::default()
        };
        let (mut sim, sw, sinks) = rig(cfg, 1);
        let group = ipv4::Addr::multicast_group(0);
        let join = igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            group,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        sim.run();
        let t = sim.now();
        for _ in 0..100 {
            let f = sim.frame().copy_from(&feed_frame(group, 64)).build();
            sim.inject_frame(t, sw, PortId(0), f);
        }
        sim.run();
        let delivered = sim.node::<Sink>(sinks[0]).unwrap().got.len();
        let stats = sim.node::<CommoditySwitch>(sw).unwrap().stats();
        assert_eq!(delivered, 4); // only the CPU queue depth survived
        assert_eq!(stats.mcast_dropped, 96);
    }

    #[test]
    fn drop_policy_drops_overflow_traffic() {
        let cfg = SwitchConfig {
            mcast_table_size: 0,
            overflow: McastOverflowPolicy::Drop,
            ..SwitchConfig::default()
        };
        let (mut sim, sw, sinks) = rig(cfg, 1);
        let group = ipv4::Addr::multicast_group(0);
        let join = igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            group,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        sim.run();
        let t = sim.now();
        let f = sim.frame().copy_from(&feed_frame(group, 64)).build();
        sim.inject_frame(t, sw, PortId(0), f);
        sim.run();
        assert!(sim.node::<Sink>(sinks[0]).unwrap().got.is_empty());
        assert!(
            sim.node::<CommoditySwitch>(sw)
                .unwrap()
                .stats()
                .mcast_dropped
                >= 1
        );
    }

    #[test]
    fn joins_propagate_upstream() {
        // Port 0 is upstream; a join on port 1 must be re-emitted on 0.
        let cfg = SwitchConfig {
            mcast_upstream: Some(PortId(0)),
            ..SwitchConfig::default()
        };
        let mut sim = Simulator::new(5);
        let sw = sim.add_node("sw", CommoditySwitch::new(cfg));
        let up = sim.add_node("up", Sink { got: vec![] });
        sim.connect_spec(
            sw,
            PortId(0),
            up,
            PortId(0),
            &LinkSpec::ideal(SimTime::ZERO),
        );
        let group = ipv4::Addr::multicast_group(3);
        let join = igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(1),
            ipv4::Addr::host(1),
            group,
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
        sim.run();
        assert_eq!(sim.node::<Sink>(up).unwrap().got.len(), 1);
        // A second join to the same group does not re-propagate.
        let join2 = igmp_frame(
            igmp::MessageType::Report,
            MacAddr::host(2),
            ipv4::Addr::host(2),
            group,
        );
        let f = sim.frame().copy_from(&join2).build();
        let t = sim.now();
        sim.inject_frame(t, sw, PortId(2), f);
        sim.run();
        assert_eq!(sim.node::<Sink>(up).unwrap().got.len(), 1);
    }
}
