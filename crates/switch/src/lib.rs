//! # tn-switch — switch models
//!
//! The three classes of forwarding device the paper's design space is
//! built from:
//!
//! * [`commodity`] — a merchant-silicon cut-through switch: ~500 ns
//!   port-to-port, L3 unicast with ECMP, IGMP-snooped multicast backed by
//!   a **finite mroute table** whose overflow falls back to software
//!   forwarding — the §3 failure mode ("cripples performance and induces
//!   heavy packet loss").
//! * [`l1s`] — a Layer-1 switch (Arista 7130-class): a circuit cross-
//!   connect that fans any input out to any output set in 5–6 ns and can
//!   merge inputs onto one output for +50 ns, but cannot classify or
//!   filter packets (§4.3).
//! * [`fpga`] — an FPGA-augmented L1 switch: ~100 ns latency with IP
//!   forwarding, multicast and filtering, but small tables (§5
//!   "Hardware").
//! * [`generations`] — parameter presets tracking §3's hardware-trend
//!   numbers across device generations.

pub mod commodity;
pub mod fpga;
pub mod generations;
pub mod l1s;

pub use commodity::{CommoditySwitch, McastOverflowPolicy, SwitchConfig, SwitchStats};
pub use fpga::{FpgaConfig, FpgaL1Switch, FpgaStats};
pub use generations::{host_generations, switch_generations, DeviceGen};
pub use l1s::{L1Config, L1Stats, L1Switch, PortRole};
