//! `tn-flight/v1` — timeline export of provenance traces.
//!
//! Two renderings of a parsed [`TraceDoc`]:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON ("JSON Object Format"),
//!   loadable in Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
//!   Nodes become threads of one synthetic process; every provenance
//!   span becomes a complete (`"X"`) event; point events become instant
//!   (`"i"`) events. Timestamps are microseconds as the format requires,
//!   rendered as exact `ps/1e6` decimals so no precision is lost and the
//!   output is byte-stable.
//! * [`folded_stacks`] — flamegraph-ready folded stacks: one
//!   `node;kind weight` line per (node, segment-kind) pair, weights in
//!   picoseconds, aggregated and ordered via `BTreeMap` so repeated runs
//!   over the same document are byte-identical.
//!
//! Like every other wire format in the workspace the emitters are
//! hand-rolled; the schema marker is registered with tn-audit.

use std::collections::BTreeMap;

use crate::trace::TraceDoc;

/// Schema identifier carried by the leading line of the Chrome trace
/// export.
pub const FLIGHT_SCHEMA: &str = "tn-flight/v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Picoseconds rendered as an exact microsecond decimal (`ts`/`dur`
/// fields are microseconds in the trace-event format).
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn node_name(doc: &TraceDoc, id: u32) -> String {
    match doc.nodes.get(&id) {
        Some(name) => name.clone(),
        None => format!("node{id}"),
    }
}

/// Render a trace document as Chrome trace-event JSON.
///
/// The first line carries the `tn-flight/v1` schema marker; the whole
/// output is one JSON object with a `traceEvents` array, one event per
/// line. Deterministic: document order for spans/events, `BTreeMap`
/// order for thread names.
pub fn chrome_trace(doc: &TraceDoc) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"tn-sim\"}}"
            .to_string(),
    );
    // Thread (= node) names, plus any node that appears only in spans or
    // events without a name record.
    let mut tids: BTreeMap<u32, String> = doc.nodes.clone();
    for s in &doc.spans {
        tids.entry(s.seg.node)
            .or_insert_with(|| format!("node{}", s.seg.node));
    }
    for e in &doc.events {
        tids.entry(e.node)
            .or_insert_with(|| format!("node{}", e.node));
    }
    for (id, name) in &tids {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{id},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for s in &doc.spans {
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":\"provenance\",\"name\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{\"frame\":{},\"port\":{}}}}}",
            s.seg.node,
            s.seg.kind.name(),
            us(s.seg.start_ps),
            us(s.seg.duration_ps()),
            s.frame,
            s.seg.port
        ));
    }
    for e in &doc.events {
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\"s\":\"t\",\"args\":{{\"value\":{}}}}}",
            e.node,
            esc(&e.name),
            us(e.at_ps),
            e.value
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"scenario\":\"{}\",\"seed\":{},\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
        esc(&doc.scenario),
        doc.seed
    ));
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Render a trace document as folded stacks (`node;kind weight`), one
/// line per (node, segment-kind) pair with the summed segment duration
/// in picoseconds as the weight — ready for any flamegraph renderer.
///
/// Aggregation and ordering go through a `BTreeMap`, so the output is
/// byte-stable for a given document. Semicolons in node names are
/// replaced with `:` to keep the frame separator unambiguous.
pub fn folded_stacks(doc: &TraceDoc) -> String {
    let mut weights: BTreeMap<(String, &'static str), u128> = BTreeMap::new();
    for s in &doc.spans {
        let name = node_name(doc, s.seg.node).replace(';', ":");
        *weights.entry((name, s.seg.kind.name())).or_insert(0) += u128::from(s.seg.duration_ps());
    }
    let mut out = String::new();
    for ((node, kind), w) in &weights {
        out.push_str(&format!("{node};{kind} {w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::trace::{parse, TraceWriter};

    fn sample_doc() -> TraceDoc {
        let mut w = TraceWriter::new("timeline-unit", 7);
        w.node(0, "src");
        w.node(1, "sw;core"); // semicolon exercises folded escaping
        let mut p = Provenance::new(1_000);
        p.record_process(0, 0, 1_500);
        p.record_hop(0, 0, 100, 200, 300);
        w.provenance(11, &p);
        let mut q = Provenance::new(2_000);
        q.record_process(1, 2, 2_250);
        w.provenance(12, &q);
        w.event(2_500, 1, "gap", 3);
        parse(&w.to_jsonl()).expect("sample doc parses")
    }

    #[test]
    fn chrome_trace_leads_with_schema_and_is_balanced() {
        let doc = sample_doc();
        let out = chrome_trace(&doc);
        let first = out.lines().next().expect("non-empty");
        assert!(first.contains("\"schema\":\"tn-flight/v1\""), "{first}");
        assert!(first.contains("\"traceEvents\":["));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert!(out.ends_with("]}\n"));
        // One X event per span, one i event per point event, thread
        // metadata for both named nodes + the process name record.
        assert_eq!(out.matches("\"ph\":\"X\"").count(), doc.spans.len());
        assert_eq!(out.matches("\"ph\":\"i\"").count(), doc.events.len());
        assert_eq!(out.matches("\"thread_name\"").count(), 2);
        // Exact microsecond decimals: 1000 ps = 0.001000 us.
        assert!(out.contains("\"ts\":0.001000"), "{out}");
    }

    #[test]
    fn chrome_trace_names_unknown_nodes() {
        let mut w = TraceWriter::new("x", 1);
        let mut p = Provenance::new(0);
        p.record_process(9, 0, 10);
        w.provenance(1, &p);
        let out = chrome_trace(&parse(&w.to_jsonl()).unwrap());
        assert!(out.contains("\"name\":\"node9\""), "{out}");
    }

    #[test]
    fn folded_stacks_aggregate_and_stay_stable() {
        let doc = sample_doc();
        let a = folded_stacks(&doc);
        let b = folded_stacks(&doc);
        assert_eq!(a, b, "byte-stable across calls");
        // src processed 500 ps (1000..1500).
        assert!(a.contains("src;process 500\n"), "{a}");
        // Semicolon in a node name must not create a fake stack frame.
        assert!(a.contains("sw:core;process 250\n"), "{a}");
        // Every line is "frames weight".
        for line in a.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(!stack.is_empty());
            assert!(weight.parse::<u128>().is_ok(), "{line}");
        }
    }

    #[test]
    fn folded_stacks_sum_matches_span_total() {
        let doc = sample_doc();
        let folded = folded_stacks(&doc);
        let total: u128 = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .map(|(_, w)| w.parse::<u128>().unwrap())
            .sum();
        let spans: u128 = doc
            .spans
            .iter()
            .map(|s| u128::from(s.seg.duration_ps()))
            .sum();
        assert_eq!(total, spans);
    }
}
