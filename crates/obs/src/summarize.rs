//! Summarize a parsed trace: per-hop breakdown and hottest nodes/links.

use std::collections::BTreeMap;

use crate::provenance::SegmentKind;
use crate::trace::TraceDoc;

/// Aggregate over one segment kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegStat {
    /// Segments seen.
    pub count: u64,
    /// Total duration, picoseconds.
    pub total_ps: u128,
    /// Longest single segment, picoseconds.
    pub max_ps: u64,
}

/// Aggregated view of a `tn-trace/v1` document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-kind totals across all spans.
    pub by_kind: BTreeMap<SegmentKind, SegStat>,
    /// Per-node `Process` time (where software/devices spent time).
    pub node_busy_ps: BTreeMap<u32, u128>,
    /// Per-`(node, port)` link time: queue + serialize + propagate of
    /// frames leaving that port.
    pub link_busy_ps: BTreeMap<(u32, u16), u128>,
    /// Distinct frames with at least one span.
    pub frames: u64,
    /// Total spans aggregated.
    pub spans: u64,
}

impl TraceSummary {
    /// Grand total across all kinds, picoseconds.
    pub fn total_ps(&self) -> u128 {
        self.by_kind.values().map(|s| s.total_ps).sum()
    }

    /// Share of the grand total attributable to `kind` (0.0 when empty).
    pub fn share(&self, kind: SegmentKind) -> f64 {
        let total = self.total_ps();
        if total == 0 {
            return 0.0;
        }
        self.by_kind.get(&kind).map_or(0, |s| s.total_ps) as f64 / total as f64
    }

    /// The `k` nodes with the most `Process` time, busiest first (ties
    /// broken by node id for determinism).
    pub fn hottest_nodes(&self, k: usize) -> Vec<(u32, u128)> {
        let mut v: Vec<_> = self.node_busy_ps.iter().map(|(&n, &t)| (n, t)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The `k` egress ports with the most link time, busiest first.
    pub fn hottest_links(&self, k: usize) -> Vec<((u32, u16), u128)> {
        let mut v: Vec<_> = self.link_busy_ps.iter().map(|(&l, &t)| (l, t)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Render the per-hop breakdown table plus top-`k` hottest nodes and
    /// links, resolving node names through `doc`.
    pub fn render(&self, doc: &TraceDoc, k: usize) -> String {
        let name = |n: u32| -> String {
            doc.nodes
                .get(&n)
                .cloned()
                .unwrap_or_else(|| format!("node{n}"))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "per-hop latency breakdown ({} spans over {} frames)\n",
            self.spans, self.frames
        ));
        out.push_str("  kind        count    total            share\n");
        for kind in SegmentKind::ALL {
            let s = self.by_kind.get(&kind).copied().unwrap_or_default();
            out.push_str(&format!(
                "  {:<10} {:>6}    {:>12} ns    {:>5.1}%\n",
                kind.name(),
                s.count,
                s.total_ps / 1_000,
                self.share(kind) * 100.0
            ));
        }
        out.push_str(&format!(
            "  total                {:>12} ns\n",
            self.total_ps() / 1_000
        ));
        out.push_str(&format!("hottest nodes (process time, top {k})\n"));
        for (n, t) in self.hottest_nodes(k) {
            out.push_str(&format!("  {:<24} {:>12} ns\n", name(n), t / 1_000));
        }
        out.push_str(&format!(
            "hottest links (queue+serialize+propagate, top {k})\n"
        ));
        for ((n, p), t) in self.hottest_links(k) {
            out.push_str(&format!(
                "  {:<24} {:>12} ns\n",
                format!("{}:{}", name(n), p),
                t / 1_000
            ));
        }
        out
    }
}

/// Aggregate all spans of a parsed document.
pub fn summarize(doc: &TraceDoc) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut frames = std::collections::BTreeSet::new();
    for span in &doc.spans {
        frames.insert(span.frame);
        s.spans += 1;
        let dur = span.seg.duration_ps();
        let e = s.by_kind.entry(span.seg.kind).or_default();
        e.count += 1;
        e.total_ps += u128::from(dur);
        e.max_ps = e.max_ps.max(dur);
        match span.seg.kind {
            SegmentKind::Process => {
                *s.node_busy_ps.entry(span.seg.node).or_default() += u128::from(dur);
            }
            _ => {
                *s.link_busy_ps
                    .entry((span.seg.node, span.seg.port))
                    .or_default() += u128::from(dur);
            }
        }
    }
    s.frames = frames.len() as u64;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::trace::{parse, TraceWriter};

    fn doc_with_two_frames() -> TraceDoc {
        let mut w = TraceWriter::new("sum", 1);
        w.node(0, "src");
        w.node(1, "sw");
        let mut p = Provenance::new(0);
        p.record_process(0, 0, 100);
        p.record_hop(0, 0, 10, 20, 30);
        p.record_process(1, 0, 200);
        p.record_hop(1, 0, 5, 0, 45);
        w.provenance(1, &p);
        let mut q = Provenance::new(50);
        q.record_hop(0, 1, 0, 0, 400);
        w.provenance(2, &q);
        parse(&w.to_jsonl()).unwrap()
    }

    #[test]
    fn aggregates_by_kind_node_and_link() {
        let doc = doc_with_two_frames();
        let s = summarize(&doc);
        assert_eq!(s.frames, 2);
        assert_eq!(s.spans, 8);
        assert_eq!(s.by_kind[&SegmentKind::Process].count, 2);
        // Process: 100 at node 0, 40 at node 1 (gap 160→200).
        assert_eq!(s.node_busy_ps[&0], 100);
        assert_eq!(s.node_busy_ps[&1], 40);
        // Links: (0,0)=60, (1,0)=50, (0,1)=400.
        assert_eq!(s.link_busy_ps[&(0, 0)], 60);
        assert_eq!(s.link_busy_ps[&(1, 0)], 50);
        assert_eq!(s.link_busy_ps[&(0, 1)], 400);
        assert_eq!(s.hottest_links(1), vec![((0, 1), 400)]);
        assert_eq!(s.hottest_nodes(2), vec![(0, 100), (1, 40)]);
        let total: u128 = s.by_kind.values().map(|k| k.total_ps).sum();
        assert_eq!(s.total_ps(), total);
        let share_sum: f64 = SegmentKind::ALL.iter().map(|&k| s.share(k)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_survives_a_serialize_parse_round_trip() {
        let doc = doc_with_two_frames();
        let direct = summarize(&doc);
        // Serialize again from the parsed doc, re-parse, re-summarize.
        let mut w = TraceWriter::new(&doc.scenario, doc.seed);
        for (id, name) in &doc.nodes {
            w.node(*id, name);
        }
        for s in &doc.spans {
            w.span(s.frame, &s.seg);
        }
        let reparsed = parse(&w.to_jsonl()).unwrap();
        assert_eq!(summarize(&reparsed), direct);
        let rendered = direct.render(&reparsed, 3);
        assert!(rendered.contains("per-hop latency breakdown"));
        assert!(rendered.contains("src"));
        assert!(rendered.contains("hottest links"));
    }

    #[test]
    fn empty_doc_summarizes_to_zeroes() {
        let w = TraceWriter::new("empty", 0);
        let s = summarize(&parse(&w.to_jsonl()).unwrap());
        assert_eq!(s.total_ps(), 0);
        assert_eq!(s.share(SegmentKind::Queue), 0.0);
        assert!(s.hottest_nodes(5).is_empty());
    }
}
