//! tn-flight: a bounded ring-buffer flight recorder for kernel events.
//!
//! Aircraft-style black box: the kernel (and instrumented nodes) append
//! fixed-size [`FlightRecord`]s into a preallocated ring; when the ring
//! is full the oldest record is overwritten, so at any moment the
//! recorder holds the *last N* events leading up to now. The intended
//! consumers are crash forensics — the simulator dumps the ring on panic
//! and on divergence-check failure — and explicit
//! `Simulator::dump_flight()` calls.
//!
//! Recording is pure side-state over plain integers: it never draws
//! randomness, never schedules events, never allocates after the ring is
//! sized (one `Vec` reserved at enable time), and never touches
//! wall-clock, so an enabled recorder cannot move a run's trace digest.

/// What kind of kernel activity a [`FlightRecord`] captures.
///
/// The kernel has no cancel operation (timers are never revoked, only
/// ignored by their owners), so there is no `Cancel` kind; every other
/// hot-path state change is covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightKind {
    /// An event was pushed into the scheduler (`a` = insertion seq,
    /// `b` = simulated time of the push, ps; `at_ps` = when it fires).
    Schedule,
    /// A frame or timer was popped and dispatched to a node
    /// (`a` = frame id or timer token, `b` = port or `u64::MAX`).
    Dispatch,
    /// A frame was discarded: link loss, queue overflow, or an
    /// unconnected port (`a` = frame id, `b` = port).
    Drop,
    /// A frame build fell through the arena to a fresh heap allocation
    /// (`a` = frame id about to be assigned).
    FrameAlloc,
    /// A frame build reused a pooled arena buffer (`a` = frame id about
    /// to be assigned).
    FrameReuse,
    /// The timing wheel cascaded an upper-level slot down
    /// (`a` = cumulative cascade count, `b` = pending events).
    WheelCascade,
    /// The calendar queue rebuilt its bucket array
    /// (`a` = bucket count, `b` = bucket width, ps).
    CalendarRebuild,
    /// A feed receiver detected a sequence gap and asked for
    /// retransmission (`a`/`b` = application detail, e.g. first missing
    /// sequence and gap length).
    RecoveryGap,
}

impl FlightKind {
    /// Every kind, in declaration order.
    pub const ALL: [FlightKind; 8] = [
        FlightKind::Schedule,
        FlightKind::Dispatch,
        FlightKind::Drop,
        FlightKind::FrameAlloc,
        FlightKind::FrameReuse,
        FlightKind::WheelCascade,
        FlightKind::CalendarRebuild,
        FlightKind::RecoveryGap,
    ];

    /// Stable lowercase name for dumps and exports.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Schedule => "schedule",
            FlightKind::Dispatch => "dispatch",
            FlightKind::Drop => "drop",
            FlightKind::FrameAlloc => "frame-alloc",
            FlightKind::FrameReuse => "frame-reuse",
            FlightKind::WheelCascade => "wheel-cascade",
            FlightKind::CalendarRebuild => "calendar-rebuild",
            FlightKind::RecoveryGap => "recovery-gap",
        }
    }
}

/// One fixed-size flight record. The `a`/`b` payload words are
/// kind-specific (see [`FlightKind`]); unused words are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Simulated time the record refers to, picoseconds.
    pub at_ps: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Node the record is attributed to (`u32::MAX` when none).
    pub node: u32,
    /// Shard the recording kernel belonged to (0 for serial runs).
    /// `tn-flight/v1` additive field: merged multi-shard timelines stay
    /// unambiguous because every record names its recording shard.
    pub shard: u16,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// The bounded ring buffer. Capacity is fixed at enable time; a disabled
/// recorder ([`FlightRecorder::disabled`]) holds no storage and its
/// [`FlightRecorder::record`] is a single branch.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    /// Ring storage; grows by push until `cap`, then wraps in place.
    buf: Vec<FlightRecord>,
    /// Configured capacity (0 = disabled).
    cap: usize,
    /// Next write index; equals `buf.len()` until the first wrap.
    head: usize,
    /// Records ever offered (including overwritten ones).
    total: u64,
    /// Shard id stamped onto every record (0 = serial / unsharded).
    shard: u16,
}

impl FlightRecorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder keeping the last `capacity` records. The ring is
    /// reserved up front so recording never allocates.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total: 0,
            shard: 0,
        }
    }

    /// Attribute every subsequent record to `shard`. Sharded kernels set
    /// this on their per-shard rings so a merged timeline can tell the
    /// recording kernels apart; serial runs leave the default 0.
    pub fn set_shard(&mut self, shard: u16) {
        self.shard = shard;
    }

    /// Shard id currently stamped onto records.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// True when the recorder stores records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    /// Configured ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or the recorder is off).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records ever offered, including ones the ring has overwritten.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Append one record, overwriting the oldest when the ring is full.
    /// The recorder's shard id overrides whatever the caller set, so
    /// construction sites stay shard-agnostic.
    #[inline]
    pub fn record(&mut self, mut rec: FlightRecord) {
        if self.cap == 0 {
            return;
        }
        rec.shard = self.shard;
        if self.buf.len() < self.cap {
            // Still filling: push stays within the reserved capacity.
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
        }
        self.head += 1;
        if self.head == self.cap {
            self.head = 0;
        }
        self.total += 1;
    }

    /// Forget everything recorded so far; capacity is retained.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }

    /// Deterministically merge several rings into one of capacity
    /// `capacity`, keeping the overall newest records. Records are
    /// ordered by time; ties keep the order of `rings` (pass shards in
    /// ascending shard order), and each record keeps the shard id it was
    /// originally stamped with, so the merged timeline is unambiguous.
    pub fn merged(rings: &[&FlightRecorder], capacity: usize) -> FlightRecorder {
        let mut all: Vec<FlightRecord> = Vec::new();
        let mut total = 0u64;
        for ring in rings {
            total += ring.total();
            all.extend(ring.records().copied());
        }
        // Stable sort: same-time records keep per-ring order and the
        // caller-provided ring order, so the merge is deterministic.
        all.sort_by_key(|r| r.at_ps);
        let keep = all.len().saturating_sub(capacity);
        let buf: Vec<FlightRecord> = all.split_off(keep);
        let head = if buf.len() < capacity { buf.len() } else { 0 };
        FlightRecorder {
            buf,
            cap: capacity,
            head,
            total,
            shard: 0,
        }
    }

    /// The held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        let split = if self.buf.len() < self.cap {
            0 // not wrapped yet: buf is already oldest-first
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Human-readable dump of the ring, oldest first: one line per
    /// record plus a header noting how many records scrolled off.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: last {} of {} records (capacity {})\n",
            self.len(),
            self.total,
            self.cap
        ));
        for r in self.records() {
            let node = if r.node == u32::MAX {
                "-".to_string()
            } else {
                r.node.to_string()
            };
            let shard = if r.shard == 0 {
                String::new()
            } else {
                format!(" shard={}", r.shard)
            };
            out.push_str(&format!(
                "  {:>16}ps {:<16} node={:<5} a={} b={}{}\n",
                r.at_ps,
                r.kind.name(),
                node,
                r.a,
                r.b,
                shard
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ps: u64, kind: FlightKind) -> FlightRecord {
        FlightRecord {
            at_ps,
            kind,
            node: 1,
            shard: 0,
            a: at_ps,
            b: 0,
        }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(rec(1, FlightKind::Dispatch));
        assert_eq!(r.len(), 0);
        assert_eq!(r.total(), 0);
        assert!(r.is_empty());
        assert_eq!(r.records().count(), 0);
    }

    #[test]
    fn ring_holds_the_last_n_in_order() {
        let mut r = FlightRecorder::with_capacity(4);
        assert!(r.is_enabled());
        for i in 0..10u64 {
            r.record(rec(i, FlightKind::Schedule));
            assert!(r.len() <= r.capacity(), "ring exceeded capacity");
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        let seen: Vec<u64> = r.records().map(|x| x.at_ps).collect();
        assert_eq!(seen, vec![6, 7, 8, 9], "oldest-first tail of the stream");
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = FlightRecorder::with_capacity(8);
        for i in 0..3u64 {
            r.record(rec(i, FlightKind::Dispatch));
        }
        let seen: Vec<u64> = r.records().map(|x| x.at_ps).collect();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn recording_never_allocates_after_construction() {
        let mut r = FlightRecorder::with_capacity(16);
        let cap_before = r.buf.capacity();
        for i in 0..1_000u64 {
            r.record(rec(i, FlightKind::FrameReuse));
        }
        assert_eq!(r.buf.capacity(), cap_before, "ring storage must not grow");
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = FlightRecorder::with_capacity(2);
        r.record(rec(1, FlightKind::Drop));
        r.clear();
        assert_eq!(r.len(), 0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.capacity(), 2);
        r.record(rec(2, FlightKind::Drop));
        assert_eq!(r.records().next().map(|x| x.at_ps), Some(2));
    }

    #[test]
    fn render_lists_records_and_truncation() {
        let mut r = FlightRecorder::with_capacity(2);
        for i in 0..3u64 {
            r.record(FlightRecord {
                at_ps: i,
                kind: FlightKind::CalendarRebuild,
                node: u32::MAX,
                shard: 0,
                a: 64,
                b: 1024,
            });
        }
        let dump = r.render();
        assert!(dump.contains("last 2 of 3 records"), "{dump}");
        assert!(dump.contains("calendar-rebuild"), "{dump}");
        assert!(dump.contains("node=-"), "{dump}");
    }

    #[test]
    fn recorder_stamps_its_shard_onto_records() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_shard(3);
        r.record(rec(1, FlightKind::Dispatch));
        assert_eq!(r.records().next().map(|x| x.shard), Some(3));
        let dump = r.render();
        assert!(dump.contains("shard=3"), "{dump}");
        // Serial rings (shard 0) render exactly as before.
        let mut serial = FlightRecorder::with_capacity(4);
        serial.record(rec(1, FlightKind::Dispatch));
        assert!(!serial.render().contains("shard="), "{}", serial.render());
    }

    #[test]
    fn merged_rings_interleave_by_time_and_keep_shard_ids() {
        let mut a = FlightRecorder::with_capacity(4);
        a.set_shard(1);
        let mut b = FlightRecorder::with_capacity(4);
        b.set_shard(2);
        a.record(rec(10, FlightKind::Dispatch));
        a.record(rec(30, FlightKind::Dispatch));
        b.record(rec(20, FlightKind::Schedule));
        b.record(rec(30, FlightKind::Schedule));
        let m = FlightRecorder::merged(&[&a, &b], 8);
        let seen: Vec<(u64, u16)> = m.records().map(|x| (x.at_ps, x.shard)).collect();
        // Ties keep the caller-provided ring order (shard 1 before 2).
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 1), (30, 2)]);
        assert_eq!(m.total(), 4);
        // A smaller merged capacity keeps the newest records.
        let tail = FlightRecorder::merged(&[&a, &b], 2);
        let seen: Vec<u64> = tail.records().map(|x| x.at_ps).collect();
        assert_eq!(seen, vec![30, 30]);
        assert_eq!(tail.total(), 4);
    }

    #[test]
    fn kind_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = FlightKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FlightKind::ALL.len());
    }
}
