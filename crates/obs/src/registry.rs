//! The deterministic metrics registry and its shareable handle.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use tn_stats::Histogram;

/// `(scope, name, node)` — the identity of one metric. Scopes and names
/// are `&'static str` so hot-path recording never allocates.
pub type MetricKey = (&'static str, &'static str, Option<u32>);

/// Default histogram shape for [`MetricsRegistry::observe`]: 100 ns bins
/// over `[0, 100 µs)` — wide enough for per-hop latencies at every rate the
/// workspace models; the tails are tracked exactly via min/max/sum.
const DEFAULT_HIST_LO: u64 = 0;
const DEFAULT_HIST_BIN_PS: u64 = 100_000;
const DEFAULT_HIST_BINS: usize = 1_000;

/// A histogram plus the exact moments a fixed-bin histogram alone loses:
/// count, sum, min, max.
#[derive(Debug, Clone)]
pub struct Distribution {
    hist: Histogram,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Distribution {
    fn new(lo: u64, bin_width: u64, bins: usize) -> Distribution {
        Distribution {
            hist: Histogram::new(lo, bin_width, bins),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        self.hist.record(v);
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Approximate quantile (`q` in percent), resolving histogram
    /// under/overflow to the exact min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        use tn_stats::Percentile;
        match self.hist.percentile(q) {
            Percentile::Empty => 0,
            Percentile::Underflow => self.min(),
            Percentile::Value(v) => v,
            Percentile::Overflow => self.max,
        }
    }
}

/// One metric's current value.
#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Distribution(Distribution),
}

/// Deterministic metrics store: `BTreeMap`-keyed (stable iteration order),
/// fed only with simulated-time values, snapshotted on demand.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, Metric>,
    window_start_ps: u64,
    window_base: BTreeMap<MetricKey, u64>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, scope: &'static str, name: &'static str, node: Option<u32>) {
        self.add(scope, name, node, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&mut self, scope: &'static str, name: &'static str, node: Option<u32>, delta: u64) {
        match self
            .metrics
            .entry((scope, name, node))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += delta,
            other => debug_assert!(false, "metric kind mismatch for counter: {other:?}"),
        }
    }

    /// Set a gauge to `v`.
    pub fn set_gauge(
        &mut self,
        scope: &'static str,
        name: &'static str,
        node: Option<u32>,
        v: i64,
    ) {
        match self
            .metrics
            .entry((scope, name, node))
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(g) => *g = v,
            other => debug_assert!(false, "metric kind mismatch for gauge: {other:?}"),
        }
    }

    /// Record a sample into a distribution with the default histogram
    /// shape (100 ns bins over `[0, 100 µs)`).
    pub fn observe(&mut self, scope: &'static str, name: &'static str, node: Option<u32>, v: u64) {
        self.observe_with(
            scope,
            name,
            node,
            v,
            DEFAULT_HIST_LO,
            DEFAULT_HIST_BIN_PS,
            DEFAULT_HIST_BINS,
        );
    }

    /// Record a sample, creating the distribution with an explicit
    /// histogram shape if absent (the shape of an existing distribution is
    /// kept).
    #[allow(clippy::too_many_arguments)]
    pub fn observe_with(
        &mut self,
        scope: &'static str,
        name: &'static str,
        node: Option<u32>,
        v: u64,
        lo: u64,
        bin_width: u64,
        bins: usize,
    ) {
        match self
            .metrics
            .entry((scope, name, node))
            .or_insert_with(|| Metric::Distribution(Distribution::new(lo, bin_width, bins)))
        {
            Metric::Distribution(d) => d.observe(v),
            other => debug_assert!(false, "metric kind mismatch for distribution: {other:?}"),
        }
    }

    /// Current counter value (0 if absent or a different kind).
    pub fn counter(&self, scope: &str, name: &str, node: Option<u32>) -> u64 {
        match self.lookup(scope, name, node) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current gauge value (0 if absent or a different kind).
    pub fn gauge(&self, scope: &str, name: &str, node: Option<u32>) -> i64 {
        match self.lookup(scope, name, node) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0,
        }
    }

    /// Borrow a distribution, if present.
    pub fn distribution(
        &self,
        scope: &str,
        name: &str,
        node: Option<u32>,
    ) -> Option<&Distribution> {
        match self.lookup(scope, name, node) {
            Some(Metric::Distribution(d)) => Some(d),
            _ => None,
        }
    }

    fn lookup(&self, scope: &str, name: &str, node: Option<u32>) -> Option<&Metric> {
        // Keys store &'static str; compare by value so callers can query
        // with any string.
        self.metrics
            .iter()
            .find(|((s, n, nd), _)| *s == scope && *n == name && *nd == node)
            .map(|(_, m)| m)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Cumulative snapshot at simulated time `at_ps`.
    pub fn snapshot(&self, at_ps: u64) -> Snapshot {
        self.snapshot_inner(at_ps, self.window_start_ps, false)
    }

    /// Windowed snapshot: counters report the delta since the previous
    /// `window_snapshot` (or since the start of the run), then the window
    /// resets. Gauges and distributions report their current state.
    pub fn window_snapshot(&mut self, at_ps: u64) -> Snapshot {
        let snap = self.snapshot_inner(at_ps, self.window_start_ps, true);
        self.window_start_ps = at_ps;
        self.window_base = self
            .metrics
            .iter()
            .filter_map(|(&k, m)| match m {
                Metric::Counter(c) => Some((k, *c)),
                _ => None,
            })
            .collect();
        snap
    }

    fn snapshot_inner(&self, at_ps: u64, window_start_ps: u64, windowed: bool) -> Snapshot {
        let entries = self
            .metrics
            .iter()
            .map(|(&(scope, name, node), m)| SnapshotEntry {
                scope: scope.to_string(),
                name: name.to_string(),
                node,
                value: match m {
                    Metric::Counter(c) => {
                        let base = if windowed {
                            self.window_base
                                .get(&(scope, name, node))
                                .copied()
                                .unwrap_or(0)
                        } else {
                            0
                        };
                        SnapshotValue::Counter(c - base)
                    }
                    Metric::Gauge(g) => SnapshotValue::Gauge(*g),
                    Metric::Distribution(d) => SnapshotValue::Distribution {
                        count: d.count(),
                        sum: d.sum(),
                        min: d.min(),
                        max: d.max(),
                        p50: d.quantile(50.0),
                        p99: d.quantile(99.0),
                    },
                },
            })
            .collect();
        Snapshot {
            at_ps,
            window_start_ps,
            entries,
        }
    }
}

/// Point-in-time export of a registry, with owned keys (suitable for
/// serialization and for outliving the registry).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Simulated time the snapshot was taken.
    pub at_ps: u64,
    /// Start of the window the counters cover (0 for cumulative
    /// snapshots taken before any window rotation).
    pub window_start_ps: u64,
    /// All metrics, in key order.
    pub entries: Vec<SnapshotEntry>,
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Subsystem, e.g. `"kernel"`, `"hop"`, `"feed"`.
    pub scope: String,
    /// Metric name within the scope.
    pub name: String,
    /// Node the metric is attributed to, if per-node.
    pub node: Option<u32>,
    /// The value.
    pub value: SnapshotValue,
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Monotonic count (windowed snapshots report deltas).
    Counter(u64),
    /// Last-set level.
    Gauge(i64),
    /// Distribution moments and quantiles.
    Distribution {
        /// Samples recorded.
        count: u64,
        /// Exact sum of samples.
        sum: u128,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
        /// Median estimate.
        p50: u64,
        /// 99th-percentile estimate.
        p99: u64,
    },
}

/// Cheap, cloneable recording handle. Disabled by default: every
/// recording call on a disabled handle is a no-op, so instrumented code
/// records unconditionally and pays nothing when telemetry is off.
///
/// The registry sits behind an `Arc<Mutex<..>>` so sharded runs can share
/// one registry across per-shard kernel threads; every recorded operation
/// is commutative (counter adds, gauge sets, histogram folds), which is
/// what keeps a shared registry deterministic regardless of shard
/// interleaving. The mutex is uncontended in serial runs.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Metrics(disabled)"),
            Some(r) => match r.lock() {
                Ok(g) => write!(f, "Metrics({} metrics)", g.len()),
                Err(_) => write!(f, "Metrics(poisoned)"),
            },
        }
    }
}

impl Metrics {
    /// A no-op handle.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// A live handle backed by a fresh registry; clones share it.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
        }
    }

    /// True when recording goes somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increment a counter by 1.
    pub fn inc(&self, scope: &'static str, name: &'static str, node: Option<u32>) {
        if let Some(r) = &self.inner {
            if let Ok(mut g) = r.lock() {
                g.inc(scope, name, node);
            }
        }
    }

    /// Increment a counter by `delta`.
    pub fn add(&self, scope: &'static str, name: &'static str, node: Option<u32>, delta: u64) {
        if let Some(r) = &self.inner {
            if let Ok(mut g) = r.lock() {
                g.add(scope, name, node, delta);
            }
        }
    }

    /// Set a gauge.
    pub fn set_gauge(&self, scope: &'static str, name: &'static str, node: Option<u32>, v: i64) {
        if let Some(r) = &self.inner {
            if let Ok(mut g) = r.lock() {
                g.set_gauge(scope, name, node, v);
            }
        }
    }

    /// Record a distribution sample (default histogram shape).
    pub fn observe(&self, scope: &'static str, name: &'static str, node: Option<u32>, v: u64) {
        if let Some(r) = &self.inner {
            if let Ok(mut g) = r.lock() {
                g.observe(scope, name, node, v);
            }
        }
    }

    /// Cumulative snapshot, if enabled.
    pub fn snapshot(&self, at_ps: u64) -> Option<Snapshot> {
        self.inner
            .as_ref()
            .and_then(|r| r.lock().ok().map(|g| g.snapshot(at_ps)))
    }

    /// Windowed snapshot (counter deltas since the last window), if
    /// enabled.
    pub fn window_snapshot(&self, at_ps: u64) -> Option<Snapshot> {
        self.inner
            .as_ref()
            .and_then(|r| r.lock().ok().map(|mut g| g.window_snapshot(at_ps)))
    }

    /// Run `f` against the registry, if enabled.
    pub fn with_registry<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .and_then(|r| r.lock().ok().map(|g| f(&g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_distributions() {
        let mut r = MetricsRegistry::new();
        r.inc("kernel", "deliver", Some(3));
        r.add("kernel", "deliver", Some(3), 4);
        r.set_gauge("link", "backlog", None, -2);
        r.observe("hop", "queue", Some(3), 150_000);
        r.observe("hop", "queue", Some(3), 50_000);
        assert_eq!(r.counter("kernel", "deliver", Some(3)), 5);
        assert_eq!(r.gauge("link", "backlog", None), -2);
        let d = r.distribution("hop", "queue", Some(3)).unwrap();
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 200_000);
        assert_eq!(d.min(), 50_000);
        assert_eq!(d.max(), 150_000);
        assert_eq!(r.len(), 3);
        assert_eq!(r.counter("kernel", "missing", None), 0);
    }

    #[test]
    fn snapshots_are_key_ordered_and_deterministic() {
        let mut r = MetricsRegistry::new();
        r.inc("z", "last", None);
        r.inc("a", "first", None);
        r.inc("a", "first", Some(1));
        let s = r.snapshot(10);
        let keys: Vec<_> = s
            .entries
            .iter()
            .map(|e| (e.scope.clone(), e.name.clone(), e.node))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), "first".into(), None),
                ("a".into(), "first".into(), Some(1)),
                ("z".into(), "last".into(), None),
            ]
        );
        assert_eq!(r.snapshot(10), r.snapshot(10));
    }

    #[test]
    fn window_snapshots_report_deltas() {
        let mut r = MetricsRegistry::new();
        r.add("kernel", "deliver", None, 10);
        let w1 = r.window_snapshot(1_000);
        assert_eq!(w1.window_start_ps, 0);
        assert_eq!(w1.entries[0].value, SnapshotValue::Counter(10));
        r.add("kernel", "deliver", None, 3);
        let w2 = r.window_snapshot(2_000);
        assert_eq!(w2.window_start_ps, 1_000);
        assert_eq!(w2.at_ps, 2_000);
        assert_eq!(w2.entries[0].value, SnapshotValue::Counter(3));
        // Cumulative view is unaffected by windowing.
        assert_eq!(r.counter("kernel", "deliver", None), 13);
    }

    #[test]
    fn disabled_handle_is_a_cheap_noop() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.inc("kernel", "deliver", None);
        m.observe("hop", "queue", None, 1);
        assert!(m.snapshot(0).is_none());
        assert_eq!(format!("{m:?}"), "Metrics(disabled)");
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.inc("kernel", "deliver", None);
        m2.inc("kernel", "deliver", None);
        let count = m
            .with_registry(|r| r.counter("kernel", "deliver", None))
            .unwrap();
        assert_eq!(count, 2);
        assert!(format!("{m:?}").contains("1 metrics"));
    }

    #[test]
    fn distribution_quantiles_resolve_overflow_to_exact_max() {
        let mut r = MetricsRegistry::new();
        // Default shape tops out at 100 µs; record a 1 ms outlier.
        r.observe("hop", "queue", None, 1_000_000_000);
        r.observe("hop", "queue", None, 1_000);
        let d = r.distribution("hop", "queue", None).unwrap();
        assert_eq!(d.quantile(99.0), 1_000_000_000);
        assert!(d.quantile(50.0) <= 100_000);
        assert!(d.mean() > 0.0);
    }
}
