//! # tn-obs — deterministic telemetry
//!
//! The paper's central argument is that trading plants are *measured*
//! systems: operators decompose end-to-end latency hop by hop with optical
//! taps and hardware timestamps (§2). This crate is the simulator's
//! equivalent of that capture fabric:
//!
//! - [`Provenance`] — an optional per-frame record of contiguous
//!   `(node, port, kind, start, end)` segments accumulated by the kernel at
//!   every dispatch and link traversal, so a delivered frame decomposes
//!   into processing vs. queueing vs. serialization vs. propagation time.
//! - [`MetricsRegistry`] / [`Metrics`] — counters, gauges, and histograms
//!   keyed by `(scope, name, node)` in `BTreeMap`s (deterministic
//!   iteration), snapshotted on simulated-time windows.
//! - [`TraceWriter`] / [`parse`](trace::parse) / [`TraceSummary`] — the
//!   versioned `tn-trace/v1` JSONL span/event export and its summarizer.
//! - [`FlightRecorder`] — tn-flight: a bounded ring of the last N kernel
//!   events (fixed-size [`FlightRecord`]s), dumped on panic, divergence
//!   failure, or demand.
//! - [`KernelProfiler`] / [`KernelProfile`] — deterministic self-profiler:
//!   per-node and per-kind dispatch counts, a bounded queue-depth time
//!   series, and scheduler/arena statistics, reported through
//!   `DesignReport`.
//! - [`timeline`] — `tn-flight/v1` Chrome trace-event (Perfetto) export
//!   and folded-stacks rendering of provenance documents.
//!
//! Everything here is pure side-state over plain integers (`u64`
//! picoseconds, `u32` node ids, `u16` ports): recording never draws
//! randomness, never schedules events, and never touches wall-clock time,
//! so enabling full telemetry leaves run digests bit-for-bit identical —
//! an invariant `tn-audit divergence` pins against golden digests.

mod config;
mod flight;
mod profile;
mod provenance;
mod registry;
mod summarize;
pub mod timeline;
pub mod trace;

pub use config::{ObsConfig, DEFAULT_FLIGHT_CAPACITY};
pub use flight::{FlightKind, FlightRecord, FlightRecorder};
pub use profile::{
    KernelProfile, KernelProfiler, NodeProfile, PROFILE_WHEEL_LEVELS, QUEUE_SERIES_CAP,
};
pub use provenance::{HopSegment, Provenance, SegmentKind};
pub use registry::{
    Distribution, Metrics, MetricsRegistry, Snapshot, SnapshotEntry, SnapshotValue,
};
pub use summarize::{summarize, SegStat, TraceSummary};
pub use timeline::{chrome_trace, folded_stacks, FLIGHT_SCHEMA};
pub use trace::{parse, EventRecord, MetricRecord, SpanRecord, TraceDoc, TraceWriter, SCHEMA};
