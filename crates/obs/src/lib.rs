//! # tn-obs — deterministic telemetry
//!
//! The paper's central argument is that trading plants are *measured*
//! systems: operators decompose end-to-end latency hop by hop with optical
//! taps and hardware timestamps (§2). This crate is the simulator's
//! equivalent of that capture fabric:
//!
//! - [`Provenance`] — an optional per-frame record of contiguous
//!   `(node, port, kind, start, end)` segments accumulated by the kernel at
//!   every dispatch and link traversal, so a delivered frame decomposes
//!   into processing vs. queueing vs. serialization vs. propagation time.
//! - [`MetricsRegistry`] / [`Metrics`] — counters, gauges, and histograms
//!   keyed by `(scope, name, node)` in `BTreeMap`s (deterministic
//!   iteration), snapshotted on simulated-time windows.
//! - [`TraceWriter`] / [`parse`](trace::parse) / [`TraceSummary`] — the
//!   versioned `tn-trace/v1` JSONL span/event export and its summarizer.
//!
//! Everything here is pure side-state over plain integers (`u64`
//! picoseconds, `u32` node ids, `u16` ports): recording never draws
//! randomness, never schedules events, and never touches wall-clock time,
//! so enabling full telemetry leaves run digests bit-for-bit identical —
//! an invariant `tn-audit divergence` pins against golden digests.

mod config;
mod provenance;
mod registry;
mod summarize;
pub mod trace;

pub use config::ObsConfig;
pub use provenance::{HopSegment, Provenance, SegmentKind};
pub use registry::{
    Distribution, Metrics, MetricsRegistry, Snapshot, SnapshotEntry, SnapshotValue,
};
pub use summarize::{summarize, SegStat, TraceSummary};
pub use trace::{parse, EventRecord, MetricRecord, SpanRecord, TraceDoc, TraceWriter, SCHEMA};
