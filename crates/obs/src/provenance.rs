//! Per-hop latency provenance carried with a frame.
//!
//! A [`Provenance`] is the simulated equivalent of correlating one frame
//! across every timestamped tap in the plant: a contiguous sequence of
//! [`HopSegment`]s covering `[origin, frontier)` with no gaps, so the sum
//! of segment durations always equals the end-to-end elapsed time — the
//! property the workspace proptests pin down to the picosecond.

/// What a frame was doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentKind {
    /// Held by a node between arrival (or birth) and the next transmit —
    /// application/device processing time.
    Process,
    /// Waiting behind earlier frames in a link's egress queue.
    Queue,
    /// Being clocked onto the wire at the link rate.
    Serialize,
    /// In flight at propagation speed.
    Propagate,
}

impl SegmentKind {
    /// All kinds, in canonical order.
    pub const ALL: [SegmentKind; 4] = [
        SegmentKind::Process,
        SegmentKind::Queue,
        SegmentKind::Serialize,
        SegmentKind::Propagate,
    ];

    /// Stable lowercase name used in metrics keys and `tn-trace/v1`.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Process => "process",
            SegmentKind::Queue => "queue",
            SegmentKind::Serialize => "serialize",
            SegmentKind::Propagate => "propagate",
        }
    }

    /// Inverse of [`SegmentKind::name`].
    pub fn parse(s: &str) -> Option<SegmentKind> {
        SegmentKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One contiguous slice of a frame's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSegment {
    /// Node attributed with the time (for link segments: the transmitting
    /// node).
    pub node: u32,
    /// Port on `node` (for `Process`: the port the next transmit leaves
    /// by).
    pub port: u16,
    /// What the frame was doing.
    pub kind: SegmentKind,
    /// Segment start, absolute picoseconds.
    pub start_ps: u64,
    /// Segment end, absolute picoseconds (`end_ps >= start_ps`).
    pub end_ps: u64,
}

impl HopSegment {
    /// Duration in picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.end_ps - self.start_ps
    }
}

/// The accumulated journey of one frame.
///
/// Segments are appended only at the current frontier (zero-duration
/// segments are elided), so the record is contiguous by construction and
/// `sum_ps() == total_ps()` always holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    origin_ps: u64,
    segments: Vec<HopSegment>,
}

impl Provenance {
    /// Empty provenance starting at `origin_ps` (typically the frame's
    /// birth time).
    pub fn new(origin_ps: u64) -> Provenance {
        Provenance {
            origin_ps,
            // audit:allow(hotpath-alloc): provenance capture is opt-in diagnostics; per-hop allocation is the feature's price when enabled
            segments: Vec::new(),
        }
    }

    /// Journey start, absolute picoseconds.
    pub fn origin_ps(&self) -> u64 {
        self.origin_ps
    }

    /// Recorded segments, in journey order.
    pub fn segments(&self) -> &[HopSegment] {
        &self.segments
    }

    /// End of the last segment (the origin when empty).
    pub fn frontier_ps(&self) -> u64 {
        self.segments.last().map_or(self.origin_ps, |s| s.end_ps)
    }

    /// Elapsed time covered: `frontier - origin`.
    pub fn total_ps(&self) -> u64 {
        self.frontier_ps() - self.origin_ps
    }

    /// Sum of segment durations. Equal to [`Provenance::total_ps`] by the
    /// contiguity invariant.
    pub fn sum_ps(&self) -> u64 {
        self.segments.iter().map(HopSegment::duration_ps).sum()
    }

    /// True when segments tile `[origin, frontier)` with no gaps or
    /// overlaps. Always true for kernel-built records; exposed so parsers
    /// of externally supplied traces can validate.
    pub fn is_contiguous(&self) -> bool {
        let mut at = self.origin_ps;
        for s in &self.segments {
            if s.start_ps != at || s.end_ps < s.start_ps {
                return false;
            }
            at = s.end_ps;
        }
        true
    }

    fn push(&mut self, node: u32, port: u16, kind: SegmentKind, end_ps: u64) {
        let start_ps = self.frontier_ps();
        debug_assert!(end_ps >= start_ps, "provenance must move forward");
        if end_ps > start_ps {
            self.segments.push(HopSegment {
                node,
                port,
                kind,
                start_ps,
                end_ps,
            });
        }
    }

    /// Close the gap between the frontier and `until_ps` with a `Process`
    /// segment at `node` — the time the frame sat inside the node before
    /// it transmitted out of `port`. No-op when there is no gap.
    pub fn record_process(&mut self, node: u32, port: u16, until_ps: u64) {
        self.push(node, port, SegmentKind::Process, until_ps);
    }

    /// Record one link traversal out of `(node, port)`: queueing, then
    /// serialization, then propagation, starting at the current frontier.
    /// Zero-duration phases are elided.
    pub fn record_hop(
        &mut self,
        node: u32,
        port: u16,
        queue_ps: u64,
        serialize_ps: u64,
        propagate_ps: u64,
    ) {
        let f = self.frontier_ps();
        self.push(node, port, SegmentKind::Queue, f + queue_ps);
        let f = self.frontier_ps();
        self.push(node, port, SegmentKind::Serialize, f + serialize_ps);
        let f = self.frontier_ps();
        self.push(node, port, SegmentKind::Propagate, f + propagate_ps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_names() {
        for k in SegmentKind::ALL {
            assert_eq!(SegmentKind::parse(k.name()), Some(k));
        }
        assert_eq!(SegmentKind::parse("wire"), None);
    }

    #[test]
    fn segments_tile_the_journey() {
        let mut p = Provenance::new(1_000);
        p.record_process(0, 0, 1_500); // 500 ps of processing
        p.record_hop(0, 0, 100, 200, 300);
        assert_eq!(p.segments().len(), 4);
        assert_eq!(p.frontier_ps(), 2_100);
        assert_eq!(p.total_ps(), 1_100);
        assert_eq!(p.sum_ps(), p.total_ps());
        assert!(p.is_contiguous());
    }

    #[test]
    fn zero_phases_are_elided_without_breaking_contiguity() {
        let mut p = Provenance::new(0);
        p.record_process(1, 2, 0); // no gap: elided
        p.record_hop(1, 2, 0, 0, 250);
        assert_eq!(p.segments().len(), 1);
        assert_eq!(p.segments()[0].kind, SegmentKind::Propagate);
        assert_eq!(p.segments()[0].duration_ps(), 250);
        assert!(p.is_contiguous());
        assert_eq!(p.sum_ps(), p.total_ps());
    }

    #[test]
    fn contiguity_detects_gaps() {
        let mut p = Provenance::new(0);
        p.record_hop(0, 0, 0, 0, 10);
        assert!(p.is_contiguous());
        // Hand-build a gapped record through the public parse path instead:
        let broken = Provenance {
            origin_ps: 0,
            segments: vec![HopSegment {
                node: 0,
                port: 0,
                kind: SegmentKind::Queue,
                start_ps: 5,
                end_ps: 9,
            }],
        };
        assert!(!broken.is_contiguous());
        assert_ne!(broken.sum_ps(), broken.total_ps());
    }
}
