//! Observability configuration.

/// What telemetry the simulator should collect.
///
/// The default is everything off: telemetry is strictly opt-in, and — by
/// the determinism invariant this crate maintains — turning any of it on
/// must not change a run's trace digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Accumulate per-hop [`crate::Provenance`] segments on every frame.
    pub provenance: bool,
    /// Maintain a [`crate::MetricsRegistry`] fed by kernel, link, switch,
    /// and feed-path hooks.
    pub registry: bool,
    /// Emit a `tn-trace/v1` JSONL document at the end of the run (drivers
    /// decide where it goes; the kernel itself never does I/O).
    pub trace: bool,
    /// Keep a bounded ring of the last kernel events in a
    /// [`crate::FlightRecorder`], dumped on panic or on demand.
    pub flight: bool,
    /// Ring capacity (records) when `flight` is on. Ignored when off;
    /// memory use is `capacity * size_of::<FlightRecord>()`, fixed at
    /// enable time.
    pub flight_capacity: u32,
    /// Maintain the deterministic [`crate::KernelProfiler`] (per-node /
    /// per-kind dispatch counts, queue-depth series, scheduler and arena
    /// statistics in the resulting `KernelProfile`).
    pub profile: bool,
}

/// Ring capacity used by the presets when the flight recorder is on.
pub const DEFAULT_FLIGHT_CAPACITY: u32 = 1024;

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// No telemetry (the default).
    pub const fn off() -> ObsConfig {
        ObsConfig {
            provenance: false,
            registry: false,
            trace: false,
            flight: false,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            profile: false,
        }
    }

    /// Everything on: provenance, registry, trace export, flight
    /// recorder, and kernel profiler.
    pub const fn full() -> ObsConfig {
        ObsConfig {
            provenance: true,
            registry: true,
            trace: true,
            flight: true,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            profile: true,
        }
    }

    /// True if any collection is enabled.
    pub const fn any(&self) -> bool {
        self.provenance || self.registry || self.trace || self.flight || self.profile
    }

    /// [`ObsConfig::full`] when `on`, [`ObsConfig::off`] otherwise — the
    /// boolean axis sweep specs use (`obs_full = 0 | 1`).
    pub const fn from_full_flag(on: bool) -> ObsConfig {
        if on {
            ObsConfig::full()
        } else {
            ObsConfig::off()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        assert_eq!(ObsConfig::default(), ObsConfig::off());
        assert!(!ObsConfig::off().any());
        assert!(ObsConfig::full().any());
        assert!(ObsConfig::full().provenance);
        assert!(ObsConfig::full().registry);
        assert!(ObsConfig::full().trace);
        assert!(ObsConfig::full().flight);
        assert!(ObsConfig::full().profile);
        // Capacity is preset even while the recorder is off, so flipping
        // `flight` alone yields a usable ring.
        assert_eq!(ObsConfig::off().flight_capacity, DEFAULT_FLIGHT_CAPACITY);
        assert_eq!(ObsConfig::full().flight_capacity, DEFAULT_FLIGHT_CAPACITY);
    }

    #[test]
    fn flight_and_profile_alone_count_as_any() {
        let mut c = ObsConfig::off();
        c.flight = true;
        assert!(c.any());
        let mut c = ObsConfig::off();
        c.profile = true;
        assert!(c.any());
    }

    #[test]
    fn full_flag_maps_to_presets() {
        assert_eq!(ObsConfig::from_full_flag(true), ObsConfig::full());
        assert_eq!(ObsConfig::from_full_flag(false), ObsConfig::off());
    }
}
