//! Observability configuration.

/// What telemetry the simulator should collect.
///
/// The default is everything off: telemetry is strictly opt-in, and — by
/// the determinism invariant this crate maintains — turning any of it on
/// must not change a run's trace digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Accumulate per-hop [`crate::Provenance`] segments on every frame.
    pub provenance: bool,
    /// Maintain a [`crate::MetricsRegistry`] fed by kernel, link, switch,
    /// and feed-path hooks.
    pub registry: bool,
    /// Emit a `tn-trace/v1` JSONL document at the end of the run (drivers
    /// decide where it goes; the kernel itself never does I/O).
    pub trace: bool,
}

impl ObsConfig {
    /// No telemetry (the default).
    pub const fn off() -> ObsConfig {
        ObsConfig {
            provenance: false,
            registry: false,
            trace: false,
        }
    }

    /// Everything on: provenance, registry, and trace export.
    pub const fn full() -> ObsConfig {
        ObsConfig {
            provenance: true,
            registry: true,
            trace: true,
        }
    }

    /// True if any collection is enabled.
    pub const fn any(&self) -> bool {
        self.provenance || self.registry || self.trace
    }

    /// [`ObsConfig::full`] when `on`, [`ObsConfig::off`] otherwise — the
    /// boolean axis sweep specs use (`obs_full = 0 | 1`).
    pub const fn from_full_flag(on: bool) -> ObsConfig {
        if on {
            ObsConfig::full()
        } else {
            ObsConfig::off()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        assert_eq!(ObsConfig::default(), ObsConfig::off());
        assert!(!ObsConfig::off().any());
        assert!(ObsConfig::full().any());
        assert!(ObsConfig::full().provenance);
        assert!(ObsConfig::full().registry);
        assert!(ObsConfig::full().trace);
    }

    #[test]
    fn full_flag_maps_to_presets() {
        assert_eq!(ObsConfig::from_full_flag(true), ObsConfig::full());
        assert_eq!(ObsConfig::from_full_flag(false), ObsConfig::off());
    }
}
