//! `tn-obs` — CLI over the telemetry formats.
//!
//! ```text
//! tn-obs summarize [--folded | --timeline] [--top N] [FILE]
//! ```
//!
//! Reads a `tn-trace/v1` JSONL document from `FILE` (or stdin when the
//! argument is absent or `-`) and renders it as:
//!
//! * the default human-readable latency summary,
//! * `--folded` — flamegraph-ready folded stacks (`node;kind weight`),
//! * `--timeline` — `tn-flight/v1` Chrome trace-event JSON for Perfetto.
//!
//! All three renderings are deterministic functions of the document, so
//! repeated invocations over the same file are byte-identical — CI pins
//! this for `--folded`.

use std::io::Read;

use tn_obs::{chrome_trace, folded_stacks, summarize, trace};

const USAGE: &str = "usage: tn-obs summarize [--folded | --timeline] [--top N] [FILE]
  FILE        tn-trace/v1 JSONL document ('-' or absent = stdin)
  --folded    emit folded stacks (node;kind weight) for flamegraphs
  --timeline  emit tn-flight/v1 Chrome trace-event JSON (Perfetto)
  --top N     rows per table in the default summary (default 5)";

enum Mode {
    Summary,
    Folded,
    Timeline,
}

fn fail(msg: &str) -> ! {
    eprintln!("tn-obs: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") => {}
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return;
        }
        Some(other) => fail(&format!("unknown command {other:?}")),
        None => fail("missing command"),
    }

    let mut mode = Mode::Summary;
    let mut top = 5usize;
    let mut file: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--folded" => mode = Mode::Folded,
            "--timeline" => mode = Mode::Timeline,
            "--top" => {
                let n = rest.next().unwrap_or_else(|| fail("--top needs a value"));
                top = n
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--top: bad count {n:?}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag:?}")),
            path => {
                if file.replace(path.to_string()).is_some() {
                    fail("more than one input file");
                }
            }
        }
    }

    let input = match file.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                fail(&format!("reading stdin: {e}"));
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => fail(&format!("reading {path}: {e}")),
        },
    };

    let doc = match trace::parse(&input) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("parse error: {e}")),
    };

    match mode {
        Mode::Summary => print!("{}", summarize(&doc).render(&doc, top)),
        Mode::Folded => print!("{}", folded_stacks(&doc)),
        Mode::Timeline => print!("{}", chrome_trace(&doc)),
    }
}
