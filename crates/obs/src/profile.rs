//! Deterministic kernel self-profiler.
//!
//! [`KernelProfiler`] is the hot-path half: a set of plain integer
//! counters the simulator bumps while dispatching (per-node and
//! per-event-kind counts, a bounded queue-depth time series). It is
//! deterministic by construction — it reads only simulated time and
//! counts, never wall-clock — so an enabled profiler cannot move a
//! run's trace digest.
//!
//! [`KernelProfile`] is the cold half: a plain-data snapshot combining
//! the profiler counters with scheduler statistics (calendar rebuilds,
//! wheel cascades, per-level occupancy) and arena reuse counters that
//! the simulator fills in at snapshot time. It lives here, in `tn-obs`,
//! as pure integers so report and CLI layers can consume it without a
//! dependency on the simulator crate.

/// Wheel levels mirrored from the simulator's timing wheel, so the
/// occupancy snapshot can be a fixed-size array.
pub const PROFILE_WHEEL_LEVELS: usize = 9;

/// How many queue-depth samples a profile retains. When the series
/// fills up it is decimated in place (every other sample dropped, the
/// sampling stride doubled), so memory stays bounded for arbitrarily
/// long runs while coverage stays spread over the whole run.
pub const QUEUE_SERIES_CAP: usize = 256;

/// Per-node dispatch counters with simulated-time attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    /// Node id this row belongs to.
    pub node: u32,
    /// Shard whose kernel dispatched to this node (0 for serial runs).
    /// Additive field: merged multi-shard profiles stay unambiguous.
    pub shard: u16,
    /// Frames dispatched to the node.
    pub frames: u64,
    /// Timers dispatched to the node.
    pub timers: u64,
    /// Frames dropped while addressed to (or emitted by) the node.
    pub drops: u64,
    /// Simulated time of the first dispatch, ps (`u64::MAX` if none).
    pub first_at_ps: u64,
    /// Simulated time of the last dispatch, ps (0 if none).
    pub last_at_ps: u64,
}

impl NodeProfile {
    fn new(node: u32, shard: u16) -> NodeProfile {
        NodeProfile {
            node,
            shard,
            frames: 0,
            timers: 0,
            drops: 0,
            first_at_ps: u64::MAX,
            last_at_ps: 0,
        }
    }

    fn has_activity(&self) -> bool {
        self.dispatches() > 0 || self.drops > 0
    }

    /// Total dispatches (frames + timers).
    pub fn dispatches(&self) -> u64 {
        self.frames + self.timers
    }

    #[inline]
    fn touch(&mut self, at_ps: u64) {
        if self.first_at_ps == u64::MAX {
            self.first_at_ps = at_ps;
        }
        self.last_at_ps = at_ps;
    }
}

/// Hot-path counter set. All recording methods are branch-then-index:
/// a disabled profiler costs one predictable branch per call and an
/// enabled one a handful of integer stores — no allocation, no
/// wall-clock, no randomness.
#[derive(Debug, Clone, Default)]
pub struct KernelProfiler {
    enabled: bool,
    /// Dense per-node rows indexed by node id; grown only from the cold
    /// `ensure_node` path (node registration), never while dispatching.
    nodes: Vec<NodeProfile>,
    frames: u64,
    timers: u64,
    drops: u64,
    schedules: u64,
    /// `(at_ps, queue_depth)` samples, decimated in place when full.
    series: Vec<(u64, u64)>,
    /// Record every `stride`-th schedule into `series`.
    stride: u64,
    /// Pushes to skip before the next sample.
    until_sample: u64,
    max_queue_depth: u64,
    /// Shard id stamped onto per-node rows (0 = serial / unsharded).
    shard: u16,
}

impl KernelProfiler {
    /// A profiler that records nothing (the default).
    pub fn disabled() -> KernelProfiler {
        KernelProfiler::default()
    }

    /// An enabled profiler; the queue-depth series is reserved up front
    /// so recording never allocates.
    pub fn enabled() -> KernelProfiler {
        KernelProfiler {
            enabled: true,
            nodes: Vec::new(),
            frames: 0,
            timers: 0,
            drops: 0,
            schedules: 0,
            series: Vec::with_capacity(QUEUE_SERIES_CAP),
            stride: 1,
            until_sample: 0,
            max_queue_depth: 0,
            shard: 0,
        }
    }

    /// Attribute per-node rows created from now on to `shard`. Sharded
    /// kernels set this before registering their nodes; serial runs
    /// leave the default 0.
    pub fn set_shard(&mut self, shard: u16) {
        self.shard = shard;
    }

    /// True when the profiler is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Make room for per-node counters up to `node`. Cold path: called
    /// when a node is registered, so the dispatch-time methods below can
    /// index without bounds growth.
    pub fn ensure_node(&mut self, node: u32) {
        if !self.enabled {
            return;
        }
        let want = node as usize + 1;
        if self.nodes.len() < want {
            let mut id = self.nodes.len() as u32;
            let shard = self.shard;
            self.nodes.resize_with(want, || {
                let row = NodeProfile::new(id, shard);
                id += 1;
                row
            });
        }
    }

    /// A frame was dispatched to `node` at `at_ps`.
    #[inline]
    pub fn record_frame(&mut self, at_ps: u64, node: u32) {
        if !self.enabled {
            return;
        }
        self.frames += 1;
        if let Some(row) = self.nodes.get_mut(node as usize) {
            row.frames += 1;
            row.touch(at_ps);
        }
    }

    /// A timer was dispatched to `node` at `at_ps`.
    #[inline]
    pub fn record_timer(&mut self, at_ps: u64, node: u32) {
        if !self.enabled {
            return;
        }
        self.timers += 1;
        if let Some(row) = self.nodes.get_mut(node as usize) {
            row.timers += 1;
            row.touch(at_ps);
        }
    }

    /// A frame addressed to (or emitted toward) `node` was dropped.
    #[inline]
    pub fn record_drop(&mut self, node: u32) {
        if !self.enabled {
            return;
        }
        self.drops += 1;
        if let Some(row) = self.nodes.get_mut(node as usize) {
            row.drops += 1;
        }
    }

    /// An event was pushed into the scheduler; `depth` is the queue
    /// length after the push. Samples the depth time series.
    #[inline]
    pub fn record_schedule(&mut self, at_ps: u64, depth: usize) {
        if !self.enabled {
            return;
        }
        self.schedules += 1;
        let depth = depth as u64;
        if depth > self.max_queue_depth {
            self.max_queue_depth = depth;
        }
        if self.until_sample > 0 {
            self.until_sample -= 1;
            return;
        }
        if self.series.len() == QUEUE_SERIES_CAP {
            // Decimate in place: keep every other sample, double the
            // stride. No allocation, bounded forever.
            for i in 0..QUEUE_SERIES_CAP / 2 {
                self.series[i] = self.series[2 * i];
            }
            self.series.truncate(QUEUE_SERIES_CAP / 2);
            self.stride *= 2;
        }
        self.series.push((at_ps, depth));
        self.until_sample = self.stride - 1;
    }

    /// Freeze the counters into a plain-data [`KernelProfile`]. The
    /// scheduler and arena sections are left zeroed for the simulator
    /// to fill in; returns `None` when the profiler is disabled.
    pub fn snapshot(&self, at_ps: u64) -> Option<KernelProfile> {
        if !self.enabled {
            return None;
        }
        Some(KernelProfile {
            at_ps,
            scheduler: String::new(),
            frames: self.frames,
            timers: self.timers,
            drops: self.drops,
            schedules: self.schedules,
            max_queue_depth: self.max_queue_depth,
            queue_depth: self.series.clone(),
            queue_stride: self.stride,
            per_node: self
                .nodes
                .iter()
                .filter(|n| n.dispatches() > 0 || n.drops > 0)
                .copied()
                .collect(),
            sched_rebuilds: 0,
            sched_cascades: 0,
            sched_bucket_count: 0,
            sched_bucket_width_ps: 0,
            wheel_occupancy: [0; PROFILE_WHEEL_LEVELS],
            arena_allocated: 0,
            arena_reused: 0,
            arena_recycled: 0,
        })
    }

    /// Fold another profiler's counters into this one. Used when a
    /// sharded run reassembles per-shard profilers into one unified
    /// profile: totals are summed, per-node rows merged elementwise
    /// (first/last dispatch times widened, shard attribution taken from
    /// the profiler that actually dispatched to the node), queue-depth
    /// series merged in time order and re-decimated to the bounded cap.
    /// Deterministic: absorb shards in ascending shard order.
    pub fn merge_from(&mut self, other: &KernelProfiler) {
        if !self.enabled || !other.enabled {
            return;
        }
        self.frames += other.frames;
        self.timers += other.timers;
        self.drops += other.drops;
        self.schedules += other.schedules;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.nodes.len() < other.nodes.len() {
            let mut id = self.nodes.len() as u32;
            let shard = self.shard;
            self.nodes.resize_with(other.nodes.len(), || {
                let row = NodeProfile::new(id, shard);
                id += 1;
                row
            });
        }
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            mine.frames += theirs.frames;
            mine.timers += theirs.timers;
            mine.drops += theirs.drops;
            mine.first_at_ps = mine.first_at_ps.min(theirs.first_at_ps);
            mine.last_at_ps = mine.last_at_ps.max(theirs.last_at_ps);
            if theirs.has_activity() {
                mine.shard = theirs.shard;
            }
        }
        // Merge the two time-ordered series, then decimate back under the
        // cap; the merged stride is the coarser of the two, doubled per
        // decimation pass.
        let mut merged = Vec::with_capacity(self.series.len() + other.series.len());
        let (mut i, mut j) = (0, 0);
        while i < self.series.len() && j < other.series.len() {
            if self.series[i].0 <= other.series[j].0 {
                merged.push(self.series[i]);
                i += 1;
            } else {
                merged.push(other.series[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.series[i..]);
        merged.extend_from_slice(&other.series[j..]);
        let mut stride = self.stride.max(other.stride);
        while merged.len() > QUEUE_SERIES_CAP {
            let mut k = 0;
            merged.retain(|_| {
                let keep = k % 2 == 0;
                k += 1;
                keep
            });
            stride *= 2;
        }
        self.series.clear();
        self.series.extend_from_slice(&merged);
        self.stride = stride;
        self.until_sample = 0;
    }
}

/// Plain-data snapshot of kernel behavior over a run: dispatch counters
/// from [`KernelProfiler`] plus scheduler and arena statistics filled in
/// by the simulator at snapshot time. Everything is integers (+ one
/// scheduler-name string), so it serializes and renders without touching
/// simulator types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Simulated time the snapshot was taken, ps.
    pub at_ps: u64,
    /// Active scheduler name (e.g. `binary-heap`).
    pub scheduler: String,
    /// Frames dispatched.
    pub frames: u64,
    /// Timers dispatched.
    pub timers: u64,
    /// Frames dropped (loss, overflow, unrouted).
    pub drops: u64,
    /// Events pushed into the scheduler.
    pub schedules: u64,
    /// Largest queue depth ever observed after a push.
    pub max_queue_depth: u64,
    /// Bounded `(at_ps, depth)` time series of queue depth.
    pub queue_depth: Vec<(u64, u64)>,
    /// Sampling stride of `queue_depth` (every n-th push sampled).
    pub queue_stride: u64,
    /// Per-node rows (only nodes with activity), ascending node id.
    pub per_node: Vec<NodeProfile>,
    /// Calendar-queue bucket-array rebuilds (0 for other schedulers).
    pub sched_rebuilds: u64,
    /// Timing-wheel cascades (0 for other schedulers).
    pub sched_cascades: u64,
    /// Calendar-queue bucket count at snapshot time.
    pub sched_bucket_count: u64,
    /// Calendar-queue bucket width at snapshot time, ps.
    pub sched_bucket_width_ps: u64,
    /// Timing-wheel occupied slots per level at snapshot time.
    pub wheel_occupancy: [u64; PROFILE_WHEEL_LEVELS],
    /// Frame buffers allocated fresh from the heap.
    pub arena_allocated: u64,
    /// Frame buffers reused from the arena free list.
    pub arena_reused: u64,
    /// Frame buffers returned to the arena.
    pub arena_recycled: u64,
}

impl KernelProfile {
    /// Total dispatches (frames + timers).
    pub fn dispatches(&self) -> u64 {
        self.frames + self.timers
    }

    /// Fraction of frame builds served from the arena free list,
    /// in `[0, 1]`. `None` when no frame was ever built.
    pub fn arena_reuse_ratio(&self) -> Option<f64> {
        let total = self.arena_allocated + self.arena_reused;
        if total == 0 {
            None
        } else {
            Some(self.arena_reused as f64 / total as f64)
        }
    }

    /// Busiest nodes by total dispatches, descending; ties break on
    /// ascending node id so the order is deterministic.
    pub fn busiest_nodes(&self, top: usize) -> Vec<NodeProfile> {
        let mut rows = self.per_node.clone();
        rows.sort_by(|a, b| {
            b.dispatches()
                .cmp(&a.dispatches())
                .then(a.node.cmp(&b.node))
        });
        rows.truncate(top);
        rows
    }

    /// Multi-line human-readable rendering, each line prefixed with
    /// `indent`. Used by `DesignReport::summary()` and the experiment
    /// binaries; byte-stable for fixed input.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{indent}kernel profile @ {} ps ({})\n",
            self.at_ps, self.scheduler
        ));
        out.push_str(&format!(
            "{indent}  dispatched : {} frames, {} timers, {} drops ({} scheduled)\n",
            self.frames, self.timers, self.drops, self.schedules
        ));
        out.push_str(&format!(
            "{indent}  queue depth: max {} ({} samples, stride {})\n",
            self.max_queue_depth,
            self.queue_depth.len(),
            self.queue_stride
        ));
        match self.arena_reuse_ratio() {
            Some(ratio) => out.push_str(&format!(
                "{indent}  arena      : {} alloc, {} reuse, {} recycled ({:.1}% reuse)\n",
                self.arena_allocated,
                self.arena_reused,
                self.arena_recycled,
                ratio * 100.0
            )),
            None => out.push_str(&format!("{indent}  arena      : no frames built\n")),
        }
        if self.sched_rebuilds > 0 || self.sched_bucket_count > 0 {
            out.push_str(&format!(
                "{indent}  calendar   : {} rebuilds, {} buckets x {} ps\n",
                self.sched_rebuilds, self.sched_bucket_count, self.sched_bucket_width_ps
            ));
        }
        if self.sched_cascades > 0 || self.wheel_occupancy.iter().any(|&o| o > 0) {
            let occ: Vec<String> = self.wheel_occupancy.iter().map(|o| o.to_string()).collect();
            out.push_str(&format!(
                "{indent}  wheel      : {} cascades, occupancy [{}]\n",
                self.sched_cascades,
                occ.join(" ")
            ));
        }
        for row in self.busiest_nodes(5) {
            out.push_str(&format!(
                "{indent}  node {:<5}: {} frames, {} timers, {} drops, active {}..{} ps\n",
                row.node,
                row.frames,
                row.timers,
                row.drops,
                if row.first_at_ps == u64::MAX {
                    0
                } else {
                    row.first_at_ps
                },
                row.last_at_ps
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = KernelProfiler::disabled();
        p.ensure_node(3);
        p.record_frame(10, 3);
        p.record_timer(10, 3);
        p.record_drop(3);
        p.record_schedule(10, 5);
        assert!(p.snapshot(10).is_none());
    }

    #[test]
    fn counters_attribute_per_node_and_kind() {
        let mut p = KernelProfiler::enabled();
        for n in 0..4 {
            p.ensure_node(n);
        }
        p.record_frame(100, 1);
        p.record_frame(200, 1);
        p.record_timer(300, 2);
        p.record_drop(1);
        let prof = p.snapshot(1_000).expect("enabled");
        assert_eq!(prof.frames, 2);
        assert_eq!(prof.timers, 1);
        assert_eq!(prof.drops, 1);
        assert_eq!(prof.dispatches(), 3);
        // Only active nodes appear.
        assert_eq!(prof.per_node.len(), 2);
        let n1 = prof.per_node.iter().find(|r| r.node == 1).expect("node 1");
        assert_eq!(n1.frames, 2);
        assert_eq!(n1.drops, 1);
        assert_eq!(n1.first_at_ps, 100);
        assert_eq!(n1.last_at_ps, 200);
        let busiest = prof.busiest_nodes(1);
        assert_eq!(busiest[0].node, 1);
    }

    #[test]
    fn late_registered_nodes_keep_existing_counts() {
        let mut p = KernelProfiler::enabled();
        p.ensure_node(0);
        p.record_frame(10, 0);
        p.ensure_node(5);
        p.record_frame(20, 5);
        let prof = p.snapshot(100).expect("enabled");
        assert_eq!(prof.per_node.len(), 2);
        assert_eq!(prof.per_node[0].node, 0);
        assert_eq!(prof.per_node[1].node, 5);
    }

    #[test]
    fn queue_series_is_bounded_and_decimates() {
        let mut p = KernelProfiler::enabled();
        for i in 0..(QUEUE_SERIES_CAP as u64 * 10) {
            p.record_schedule(i, i as usize % 50);
        }
        let prof = p.snapshot(0).expect("enabled");
        assert!(prof.queue_depth.len() <= QUEUE_SERIES_CAP);
        assert!(prof.queue_stride >= 2, "stride doubled at least once");
        assert_eq!(prof.max_queue_depth, 49);
        assert_eq!(prof.schedules, QUEUE_SERIES_CAP as u64 * 10);
        // Samples stay in time order after decimation.
        for w in prof.queue_depth.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn series_never_grows_beyond_reserved_capacity() {
        let mut p = KernelProfiler::enabled();
        let cap_before = p.series.capacity();
        for i in 0..100_000u64 {
            p.record_schedule(i, 3);
        }
        assert_eq!(
            p.series.capacity(),
            cap_before,
            "series must not reallocate"
        );
    }

    #[test]
    fn merge_from_merges_counters_rows_and_series() {
        let mut a = KernelProfiler::enabled();
        a.set_shard(1);
        a.ensure_node(2);
        a.record_frame(100, 1);
        a.record_schedule(100, 4);
        let mut b = KernelProfiler::enabled();
        b.set_shard(2);
        b.ensure_node(2);
        b.record_timer(50, 2);
        b.record_drop(2);
        b.record_schedule(50, 9);
        let mut merged = KernelProfiler::enabled();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let prof = merged.snapshot(1_000).expect("enabled");
        assert_eq!(prof.frames, 1);
        assert_eq!(prof.timers, 1);
        assert_eq!(prof.drops, 1);
        assert_eq!(prof.schedules, 2);
        assert_eq!(prof.max_queue_depth, 9);
        // Series arrives in time order regardless of absorb order.
        assert_eq!(prof.queue_depth, vec![(50, 9), (100, 4)]);
        let n1 = prof.per_node.iter().find(|r| r.node == 1).expect("node 1");
        assert_eq!((n1.shard, n1.frames, n1.first_at_ps), (1, 1, 100));
        let n2 = prof.per_node.iter().find(|r| r.node == 2).expect("node 2");
        assert_eq!((n2.shard, n2.timers, n2.drops), (2, 1, 1));
    }

    #[test]
    fn merge_from_keeps_the_series_bounded() {
        let mut a = KernelProfiler::enabled();
        let mut b = KernelProfiler::enabled();
        for i in 0..QUEUE_SERIES_CAP as u64 {
            a.record_schedule(2 * i, 1);
            b.record_schedule(2 * i + 1, 2);
        }
        a.merge_from(&b);
        let prof = a.snapshot(0).expect("enabled");
        assert!(prof.queue_depth.len() <= QUEUE_SERIES_CAP);
        assert!(prof.queue_stride >= 2);
        for w in prof.queue_depth.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn reuse_ratio_handles_empty_and_full() {
        let mut prof = KernelProfiler::enabled().snapshot(0).expect("enabled");
        assert_eq!(prof.arena_reuse_ratio(), None);
        prof.arena_allocated = 25;
        prof.arena_reused = 75;
        assert_eq!(prof.arena_reuse_ratio(), Some(0.75));
    }

    #[test]
    fn render_mentions_scheduler_sections_only_when_active() {
        let mut prof = KernelProfiler::enabled().snapshot(42).expect("enabled");
        prof.scheduler = "timing-wheel".to_string();
        prof.sched_cascades = 7;
        prof.wheel_occupancy[0] = 3;
        let text = prof.render("  ");
        assert!(
            text.contains("kernel profile @ 42 ps (timing-wheel)"),
            "{text}"
        );
        assert!(text.contains("7 cascades"), "{text}");
        assert!(!text.contains("calendar"), "{text}");
    }
}
