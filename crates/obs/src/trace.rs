//! `tn-trace/v1` — versioned JSONL span/event export.
//!
//! One JSON object per line. The first line is always a `meta` record
//! carrying the schema tag; subsequent lines are `node` (id → name),
//! `span` (one provenance segment), `event` (point occurrence), and
//! `metric` (registry snapshot entry) records. The format is append-only
//! within a version: consumers must ignore unknown fields, and fields are
//! only ever added.
//!
//! Both the writer and the parser are hand-rolled over the small JSON
//! subset the schema uses (flat objects; string / unsigned / signed /
//! null values) — the workspace has no serde, and a strict tiny parser
//! doubles as a schema check.

use std::collections::BTreeMap;

use crate::provenance::{HopSegment, Provenance, SegmentKind};
use crate::registry::{Snapshot, SnapshotValue};

/// Schema identifier carried by the leading `meta` record.
pub const SCHEMA: &str = "tn-trace/v1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Builds a `tn-trace/v1` document line by line.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    lines: Vec<String>,
}

impl TraceWriter {
    /// Start a document for `scenario` run with `seed`; writes the `meta`
    /// record.
    pub fn new(scenario: &str, seed: u64) -> TraceWriter {
        TraceWriter {
            lines: vec![format!(
                "{{\"schema\":\"{SCHEMA}\",\"type\":\"meta\",\"scenario\":\"{}\",\"seed\":{seed}}}",
                json_escape(scenario)
            )],
        }
    }

    /// Record a node id → diagnostic name binding.
    pub fn node(&mut self, id: u32, name: &str) {
        self.lines.push(format!(
            "{{\"type\":\"node\",\"id\":{id},\"name\":\"{}\"}}",
            json_escape(name)
        ));
    }

    /// Record one provenance segment of frame `frame`.
    pub fn span(&mut self, frame: u64, seg: &HopSegment) {
        self.lines.push(format!(
            "{{\"type\":\"span\",\"frame\":{frame},\"node\":{},\"port\":{},\"kind\":\"{}\",\"start_ps\":{},\"end_ps\":{}}}",
            seg.node,
            seg.port,
            seg.kind.name(),
            seg.start_ps,
            seg.end_ps
        ));
    }

    /// Record every segment of a frame's provenance.
    pub fn provenance(&mut self, frame: u64, p: &Provenance) {
        for seg in p.segments() {
            self.span(frame, seg);
        }
    }

    /// Record a point event at `at_ps` on `node`.
    pub fn event(&mut self, at_ps: u64, node: u32, name: &str, value: u64) {
        self.lines.push(format!(
            "{{\"type\":\"event\",\"at_ps\":{at_ps},\"node\":{node},\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        ));
    }

    /// Record every entry of a registry snapshot as `metric` records.
    pub fn snapshot(&mut self, snap: &Snapshot) {
        for e in &snap.entries {
            let head = format!(
                "{{\"type\":\"metric\",\"scope\":\"{}\",\"name\":\"{}\",\"node\":{}",
                json_escape(&e.scope),
                json_escape(&e.name),
                opt_u32(e.node)
            );
            let tail = match &e.value {
                SnapshotValue::Counter(c) => format!(",\"kind\":\"counter\",\"value\":{c}}}"),
                SnapshotValue::Gauge(g) => format!(",\"kind\":\"gauge\",\"value\":{g}}}"),
                SnapshotValue::Distribution {
                    count,
                    sum,
                    min,
                    max,
                    p50,
                    p99,
                } => format!(
                    ",\"kind\":\"distribution\",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max},\"p50\":{p50},\"p99\":{p99}}}"
                ),
            };
            self.lines.push(head + &tail);
        }
    }

    /// Lines written so far (including the `meta` line).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The document as newline-terminated JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// One `span` record: a provenance segment attributed to a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Frame the segment belongs to.
    pub frame: u64,
    /// The segment.
    pub seg: HopSegment,
}

/// One `event` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated time, picoseconds.
    pub at_ps: u64,
    /// Node the event occurred on.
    pub node: u32,
    /// Event name.
    pub name: String,
    /// Event value.
    pub value: u64,
}

/// One `metric` record (counter / gauge / distribution).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Metric scope.
    pub scope: String,
    /// Metric name.
    pub name: String,
    /// Node attribution, if per-node.
    pub node: Option<u32>,
    /// The value.
    pub value: SnapshotValue,
}

/// A parsed `tn-trace/v1` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDoc {
    /// Scenario name from the `meta` record.
    pub scenario: String,
    /// Seed from the `meta` record.
    pub seed: u64,
    /// Node id → diagnostic name.
    pub nodes: BTreeMap<u32, String>,
    /// All spans, in document order.
    pub spans: Vec<SpanRecord>,
    /// All events, in document order.
    pub events: Vec<EventRecord>,
    /// All metrics, in document order.
    pub metrics: Vec<MetricRecord>,
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The document is empty or the first line is not a `tn-trace/v1`
    /// meta record.
    BadHeader(String),
    /// A line is not one of the known record shapes.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        why: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(why) => write!(f, "bad tn-trace header: {why}"),
            ParseError::BadRecord { line, why } => write!(f, "line {line}: {why}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(i128),
    Null,
}

/// Parse one flat JSON object (the only shape tn-trace/v1 emits).
fn parse_object(line: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = BTreeMap::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        let val = match chars.peek() {
            Some('"') => Val::Str(parse_string(&mut chars)?),
            Some('n') => {
                for expect in "null".chars() {
                    if chars.next() != Some(expect) {
                        return Err("expected 'null'".into());
                    }
                }
                Val::Null
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '-' || c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Val::Num(num.parse::<i128>().map_err(|e| e.to_string())?)
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        out.insert(key, val);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(out)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn get_u64(obj: &BTreeMap<String, Val>, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Val::Num(n)) if *n >= 0 && *n <= i128::from(u64::MAX) => Ok(*n as u64),
        other => Err(format!("field {key:?}: expected u64, found {other:?}")),
    }
}

fn get_u128(obj: &BTreeMap<String, Val>, key: &str) -> Result<u128, String> {
    match obj.get(key) {
        Some(Val::Num(n)) if *n >= 0 => Ok(*n as u128),
        other => Err(format!("field {key:?}: expected u128, found {other:?}")),
    }
}

fn get_i64(obj: &BTreeMap<String, Val>, key: &str) -> Result<i64, String> {
    match obj.get(key) {
        Some(Val::Num(n)) => i64::try_from(*n).map_err(|e| e.to_string()),
        other => Err(format!("field {key:?}: expected i64, found {other:?}")),
    }
}

fn get_str<'a>(obj: &'a BTreeMap<String, Val>, key: &str) -> Result<&'a str, String> {
    match obj.get(key) {
        Some(Val::Str(s)) => Ok(s),
        other => Err(format!("field {key:?}: expected string, found {other:?}")),
    }
}

/// Parse a `tn-trace/v1` JSONL document. Strict on the known record
/// shapes; unknown record *types* and unknown fields are ignored, as the
/// versioning contract requires — but every line must be a well-formed
/// record. Malformed, truncated, or blank lines fail with a line-numbered
/// [`ParseError::BadRecord`] instead of being skipped, so a corrupted or
/// cut-off capture cannot silently parse as a shorter document.
pub fn parse(input: &str) -> Result<TraceDoc, ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty document".into()))?;
    if header.trim().is_empty() {
        return Err(ParseError::BadHeader("blank first line".into()));
    }
    let obj = parse_object(header).map_err(ParseError::BadHeader)?;
    if get_str(&obj, "schema").map_err(ParseError::BadHeader)? != SCHEMA {
        return Err(ParseError::BadHeader(format!("schema is not {SCHEMA:?}")));
    }
    let mut doc = TraceDoc {
        scenario: get_str(&obj, "scenario")
            .map_err(ParseError::BadHeader)?
            .to_string(),
        seed: get_u64(&obj, "seed").map_err(ParseError::BadHeader)?,
        ..TraceDoc::default()
    };
    for (idx, line) in lines {
        let lineno = idx + 1;
        let bad = |why: String| ParseError::BadRecord { line: lineno, why };
        if line.trim().is_empty() {
            return Err(bad(
                "blank line (tn-trace/v1 is one record per line)".to_string()
            ));
        }
        let obj = parse_object(line).map_err(bad)?;
        match get_str(&obj, "type").map_err(bad)? {
            "node" => {
                doc.nodes.insert(
                    get_u64(&obj, "id").map_err(bad)? as u32,
                    get_str(&obj, "name").map_err(bad)?.to_string(),
                );
            }
            "span" => {
                let kind_name = get_str(&obj, "kind").map_err(bad)?;
                let kind = SegmentKind::parse(kind_name)
                    .ok_or_else(|| bad(format!("unknown span kind {kind_name:?}")))?;
                doc.spans.push(SpanRecord {
                    frame: get_u64(&obj, "frame").map_err(bad)?,
                    seg: HopSegment {
                        node: get_u64(&obj, "node").map_err(bad)? as u32,
                        port: get_u64(&obj, "port").map_err(bad)? as u16,
                        kind,
                        start_ps: get_u64(&obj, "start_ps").map_err(bad)?,
                        end_ps: get_u64(&obj, "end_ps").map_err(bad)?,
                    },
                });
            }
            "event" => {
                doc.events.push(EventRecord {
                    at_ps: get_u64(&obj, "at_ps").map_err(bad)?,
                    node: get_u64(&obj, "node").map_err(bad)? as u32,
                    name: get_str(&obj, "name").map_err(bad)?.to_string(),
                    value: get_u64(&obj, "value").map_err(bad)?,
                });
            }
            "metric" => {
                let node = match obj.get("node") {
                    Some(Val::Null) | None => None,
                    Some(Val::Num(n)) if *n >= 0 => Some(*n as u32),
                    other => return Err(bad(format!("bad node field {other:?}"))),
                };
                let value = match get_str(&obj, "kind").map_err(bad)? {
                    "counter" => SnapshotValue::Counter(get_u64(&obj, "value").map_err(bad)?),
                    "gauge" => SnapshotValue::Gauge(get_i64(&obj, "value").map_err(bad)?),
                    "distribution" => SnapshotValue::Distribution {
                        count: get_u64(&obj, "count").map_err(bad)?,
                        sum: get_u128(&obj, "sum").map_err(bad)?,
                        min: get_u64(&obj, "min").map_err(bad)?,
                        max: get_u64(&obj, "max").map_err(bad)?,
                        p50: get_u64(&obj, "p50").map_err(bad)?,
                        p99: get_u64(&obj, "p99").map_err(bad)?,
                    },
                    other => return Err(bad(format!("unknown metric kind {other:?}"))),
                };
                doc.metrics.push(MetricRecord {
                    scope: get_str(&obj, "scope").map_err(bad)?.to_string(),
                    name: get_str(&obj, "name").map_err(bad)?.to_string(),
                    node,
                    value,
                });
            }
            // Forward compatibility: skip record types this version does
            // not know.
            _ => {}
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_writer() -> TraceWriter {
        let mut w = TraceWriter::new("unit \"quoted\"", 42);
        w.node(0, "src");
        w.node(1, "sink\n");
        let mut p = Provenance::new(100);
        p.record_process(0, 0, 350);
        p.record_hop(0, 0, 10, 20, 30);
        w.provenance(7, &p);
        w.event(500, 1, "gap", 3);
        let mut r = MetricsRegistry::new();
        r.inc("kernel", "deliver", Some(1));
        r.set_gauge("link", "backlog", None, -4);
        r.observe("hop", "queue", Some(0), 10);
        w.snapshot(&r.snapshot(600));
        w
    }

    #[test]
    fn writer_emits_schema_header_first() {
        let w = sample_writer();
        assert!(w.lines()[0].contains("\"schema\":\"tn-trace/v1\""));
        assert!(w.to_jsonl().ends_with('\n'));
    }

    #[test]
    fn document_round_trips() {
        let w = sample_writer();
        let doc = parse(&w.to_jsonl()).unwrap();
        assert_eq!(doc.scenario, "unit \"quoted\"");
        assert_eq!(doc.seed, 42);
        assert_eq!(doc.nodes.len(), 2);
        assert_eq!(doc.nodes[&1], "sink\n");
        assert_eq!(doc.spans.len(), 4);
        assert_eq!(doc.spans[0].frame, 7);
        assert_eq!(doc.spans[0].seg.kind, SegmentKind::Process);
        assert_eq!(doc.spans[0].seg.start_ps, 100);
        assert_eq!(doc.events.len(), 1);
        assert_eq!(doc.metrics.len(), 3);
        // Re-serializing the parsed document yields an identical parse.
        let mut w2 = TraceWriter::new(&doc.scenario, doc.seed);
        for (id, name) in &doc.nodes {
            w2.node(*id, name);
        }
        for s in &doc.spans {
            w2.span(s.frame, &s.seg);
        }
        for e in &doc.events {
            w2.event(e.at_ps, e.node, &e.name, e.value);
        }
        let doc2 = parse(&w2.to_jsonl()).unwrap();
        assert_eq!(doc.spans, doc2.spans);
        assert_eq!(doc.events, doc2.events);
        assert_eq!(doc.nodes, doc2.nodes);
    }

    #[test]
    fn parser_rejects_wrong_schema_and_bad_records() {
        assert!(matches!(parse(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse("{\"schema\":\"tn-trace/v2\",\"type\":\"meta\",\"scenario\":\"x\",\"seed\":1}"),
            Err(ParseError::BadHeader(_))
        ));
        let doc = "{\"schema\":\"tn-trace/v1\",\"type\":\"meta\",\"scenario\":\"x\",\"seed\":1}\n\
                   {\"type\":\"span\",\"frame\":1,\"node\":0,\"port\":0,\"kind\":\"warp\",\"start_ps\":0,\"end_ps\":1}\n";
        let err = parse(doc).unwrap_err();
        assert!(matches!(err, ParseError::BadRecord { line: 2, .. }));
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn unknown_record_types_are_ignored() {
        let doc = "{\"schema\":\"tn-trace/v1\",\"type\":\"meta\",\"scenario\":\"x\",\"seed\":1}\n\
                   {\"type\":\"future-thing\",\"field\":123}\n";
        let parsed = parse(doc).unwrap();
        assert!(parsed.spans.is_empty());
        assert_eq!(parsed.seed, 1);
    }

    const HEADER: &str =
        "{\"schema\":\"tn-trace/v1\",\"type\":\"meta\",\"scenario\":\"x\",\"seed\":1}";

    #[test]
    fn blank_interior_lines_error_with_line_number() {
        let doc = format!("{HEADER}\n\n{{\"type\":\"event\",\"at_ps\":1,\"node\":0,\"name\":\"g\",\"value\":1}}\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().starts_with("line 2:"), "{err}");

        // Whitespace-only lines count as blank, wherever they sit.
        let doc = format!("{HEADER}\n{{\"type\":\"node\",\"id\":0,\"name\":\"a\"}}\n   \t\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn blank_first_line_is_a_header_error() {
        let err = parse("\n").unwrap_err();
        assert!(matches!(err, ParseError::BadHeader(_)), "{err}");
    }

    #[test]
    fn truncated_record_errors_with_line_number() {
        // A capture cut off mid-object (no closing brace).
        let doc = format!("{HEADER}\n{{\"type\":\"span\",\"frame\":1,\"node\":0");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 2, .. }),
            "{err}"
        );

        // Cut off inside a string literal.
        let doc = format!("{HEADER}\n{{\"type\":\"event\",\"name\":\"ga");
        let err = parse(&doc).unwrap_err();
        match &err {
            ParseError::BadRecord { line: 2, why } => {
                assert!(why.contains("unterminated string"), "{why}")
            }
            other => panic!("expected BadRecord line 2, got {other:?}"),
        }
    }

    #[test]
    fn malformed_values_error_instead_of_skipping() {
        // Garbage where a number belongs.
        let doc = format!("{HEADER}\n{{\"type\":\"event\",\"at_ps\":12x4,\"node\":0,\"name\":\"g\",\"value\":1}}\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 2, .. }),
            "{err}"
        );

        // Trailing characters after the object.
        let doc = format!("{HEADER}\n{{\"type\":\"node\",\"id\":0,\"name\":\"a\"}}garbage\n");
        let err = parse(&doc).unwrap_err();
        match &err {
            ParseError::BadRecord { line: 2, why } => {
                assert!(why.contains("trailing characters"), "{why}")
            }
            other => panic!("expected BadRecord line 2, got {other:?}"),
        }

        // Not an object at all.
        let doc = format!("{HEADER}\n[1,2,3]\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 2, .. }),
            "{err}"
        );

        // A known record type with a missing required field still errors.
        let doc = format!("{HEADER}\n{{\"type\":\"event\",\"at_ps\":1}}\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn error_line_numbers_survive_earlier_valid_records() {
        let doc = format!(
            "{HEADER}\n{{\"type\":\"node\",\"id\":0,\"name\":\"a\"}}\n{{\"type\":\"node\",\"id\":1,\"name\":\"b\"}}\n{{\"type\":\"node\"\n"
        );
        let err = parse(&doc).unwrap_err();
        assert!(
            matches!(err, ParseError::BadRecord { line: 4, .. }),
            "{err}"
        );
    }
}
