//! E9 — protocol header overhead (§3 Table-1 commentary + §5
//! "Protocols").
//!
//! Three measurements:
//! 1. Header share of feed bytes per Table 1 profile ("40 bytes of
//!    network headers ... represent 25%-40% of the data sent").
//! 2. Order-entry overhead: tiny order messages under a 54-byte
//!    Eth+IP+TCP stack, and the 40 ns it costs to serialize those headers
//!    at 10 Gbps.
//! 3. What the §5 custom transport buys: the same traffic re-framed with
//!    the 8-byte `l1t` header.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_header_overhead
//! ```

use tn_market::ExchangeProfile;
use tn_sim::SimTime;
use tn_wire::pitch::Side;
use tn_wire::stack::{TCP_OVERHEAD, UDP_OVERHEAD};
use tn_wire::{boe, l1t, Symbol};

fn main() {
    println!("— feed header share (Table 1 traffic) —");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "feed", "frames", "total B", "header B", "share", "l1t share"
    );
    for p in ExchangeProfile::table1() {
        let lens = p.sample_frame_lengths(77, 300_000);
        let total: u64 = lens.iter().sum();
        let stack_hdr = (UDP_OVERHEAD + p.extra_header) as u64;
        let headers = stack_hdr * lens.len() as u64;
        // Reframe: replace the network+extra headers with the 8-byte l1t
        // header; payloads unchanged.
        let l1t_total: u64 = lens
            .iter()
            .map(|&l| l - stack_hdr + l1t::HEADER_LEN as u64)
            .sum();
        let l1t_headers = l1t::HEADER_LEN as u64 * lens.len() as u64;
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>9.1}% {:>9.1}%",
            p.name,
            lens.len(),
            total,
            headers,
            100.0 * headers as f64 / total as f64,
            100.0 * l1t_headers as f64 / l1t_total as f64,
        );
    }
    println!("(paper: network + protocol headers are 25%-40% of feed bytes)\n");

    println!("— order entry —");
    let new_order = boe::Message::NewOrder {
        cl_ord_id: 1,
        side: Side::Buy,
        qty: 100,
        symbol: Symbol::new("SPY").unwrap(),
        price: 450_0000,
    };
    let cancel = boe::Message::CancelOrder { cl_ord_id: 1 };
    for (name, msg, pitch_equiv) in [("new order", &new_order, 26usize), ("cancel", &cancel, 14)] {
        let body = msg.wire_len();
        let framed = TCP_OVERHEAD + body;
        println!(
            "{:<10}: {:>3} B message (PITCH equivalent {} B) under {} B of Eth+IP+TCP \
             -> {} B on the wire ({:.0}% headers)",
            name,
            body,
            pitch_equiv,
            TCP_OVERHEAD,
            framed,
            100.0 * TCP_OVERHEAD as f64 / framed as f64
        );
    }
    let hdr_time = SimTime::serialization(TCP_OVERHEAD - 4, 10_000_000_000);
    println!(
        "serializing ~50 B of Eth+IP+TCP headers at 10 Gbps costs {} — §5's \"40 \
         nanoseconds\" that strategies pay to ignore those fields",
        hdr_time
    );
    assert_eq!(hdr_time, SimTime::from_ns(40));

    println!();
    println!("— custom transport (§5) —");
    let savings_udp = UDP_OVERHEAD - l1t::HEADER_LEN;
    let savings_tcp = TCP_OVERHEAD - l1t::HEADER_LEN;
    println!(
        "l1t header is {} B: saves {savings_udp} B/packet vs UDP framing and \
         {savings_tcp} B/packet vs TCP framing,",
        l1t::HEADER_LEN
    );
    println!(
        "i.e. {} of wire time per packet back at 10 Gbps — most of a commodity \
         switch hop.",
        SimTime::serialization(savings_tcp, 10_000_000_000)
    );
}
