//! E2 — regenerate **Figure 2(a)**: US options + equities market-data
//! events per day, 2020–2024.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin fig2a
//! ```

use tn_bench::{ascii_chart, eng};
use tn_market::GrowthModel;

fn main() {
    let series = GrowthModel::default().series(2024);
    println!("Figure 2(a): market data event count by day (US options + equities)\n");
    let values: Vec<f64> = series.iter().map(|p| p.events as f64).collect();
    println!("{}", ascii_chart(&values, 100, 12));
    println!(
        "2020{:>24}2021{:>20}2022{:>20}2023{:>20}2024",
        "", "", "", ""
    );
    println!();

    // Yearly means, plus the growth anchors §3 quotes.
    println!(
        "{:<8} {:>14} {:>18}",
        "year", "events/day", "avg events/sec"
    );
    for year in 0..5 {
        let span: Vec<&_> = series
            .iter()
            .filter(|p| (p.year.floor() as i64) == 2020 + year)
            .collect();
        let mean = span.iter().map(|p| p.events as f64).sum::<f64>() / span.len() as f64;
        println!(
            "{:<8} {:>14} {:>18}",
            2020 + year,
            eng(mean),
            eng(mean / 86_400.0)
        );
    }
    let first: f64 = series[..60].iter().map(|p| p.events as f64).sum::<f64>() / 60.0;
    let last: f64 = series[series.len() - 60..]
        .iter()
        .map(|p| p.events as f64)
        .sum::<f64>()
        / 60.0;
    println!();
    println!(
        "growth over 5 years: {:.1}x = +{:.0}%  (paper: 'increased 500% over the last 5 years';\n\
         'tens of billions of events per day ... more than 500k events per second')",
        last / first,
        100.0 * (last - first) / first
    );
    let avg_rate = last / 86_400.0;
    println!("2024 average rate: {} events/sec", eng(avg_rate));
    assert!(
        avg_rate > 500_000.0,
        "paper anchor: >500k events/sec average"
    );
}
