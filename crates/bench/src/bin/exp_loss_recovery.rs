//! E19 — gap recovery under feed loss: the edge papers over the fabric.
//!
//! The paper's reliability premise: multicast feeds drop (fades, flaps,
//! oversubscribed replication), and receivers recover via sequence-gap
//! detection + retransmission requests rather than a reliable transport.
//! This experiment sweeps loss models over the same 16k-message stream
//! and reports what the recovery loop gave back and what it cost.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_loss_recovery [-- --json]
//! ```

use tn_bench::faultsim::{run_loss_recovery, LossRecoveryConfig, LossRecoveryRun};
use tn_core::LatencyStats;
use tn_fault::FaultSpec;

fn sweep() -> Vec<(&'static str, LossRecoveryRun)> {
    let cases: Vec<(&'static str, FaultSpec)> = vec![
        ("clean", FaultSpec::new(11)),
        ("iid 0.1%", FaultSpec::new(11).with_iid_loss(0.001)),
        ("iid 1%", FaultSpec::new(11).with_iid_loss(0.01)),
        ("iid 5%", FaultSpec::new(11).with_iid_loss(0.05)),
        // Same 5% mean loss, but clustered: P(good→bad)=1.6%,
        // P(bad→good)=30%, bad state drops everything.
        (
            "burst ~5%",
            FaultSpec::new(11).with_burst_loss(0.016, 0.3, 0.0, 1.0),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, fault)| (name, run_loss_recovery(&LossRecoveryConfig::new(1, fault))))
        .collect()
}

fn json(runs: &[(&str, LossRecoveryRun)]) -> String {
    let mut out =
        String::from("{\"schema\":\"tn-exp/v1\",\"experiment\":\"loss_recovery\",\"runs\":[");
    for (i, (name, r)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let fill = LatencyStats::from_samples(&r.fill_latency_ps);
        out.push_str(&format!(
            "{{\"fault\":\"{name}\",\"published\":{},\"delivered\":{},\"gaps\":{},\
             \"requests\":{},\"recovered\":{},\"abandoned\":{},\"refused\":{},\
             \"fill_median_ps\":{},\"fill_p99_ps\":{},\"digest\":\"{:016x}\",\"events\":{}}}",
            r.published_messages,
            r.delivered_messages,
            r.gaps_seen,
            r.retrans_requests,
            r.recovered_messages,
            r.abandoned,
            r.refused,
            fill.median.as_ps(),
            fill.p99.as_ps(),
            r.digest,
            r.events,
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let runs = sweep();
    if tn_bench::json_flag() {
        println!("{}", json(&runs));
        return;
    }

    println!("Gap recovery over a lossy feed (4,000 packets / 16,000 messages, 20 ms):\n");
    println!(
        "{:<12} {:>10} {:>10} {:>7} {:>9} {:>10} {:>10} {:>11} {:>11}",
        "fault",
        "published",
        "delivered",
        "gaps",
        "requests",
        "recovered",
        "abandoned",
        "fill med",
        "fill p99"
    );
    for (name, r) in &runs {
        let fill = LatencyStats::from_samples(&r.fill_latency_ps);
        println!(
            "{:<12} {:>10} {:>10} {:>7} {:>9} {:>10} {:>10} {:>11} {:>11}",
            name,
            r.published_messages,
            r.delivered_messages,
            r.gaps_seen,
            r.retrans_requests,
            r.recovered_messages,
            r.abandoned,
            fill.median.to_string(),
            fill.p99.to_string(),
        );
    }
    println!();

    let clean = &runs[0].1;
    let heavy = &runs[3].1;
    println!(
        "clean feed: {} of {} delivered, zero requests — the recovery path is free when unused.",
        clean.delivered_messages, clean.published_messages
    );
    println!(
        "at 5% i.i.d. loss the loop recovers {} messages across {} gaps \
         ({:.1}% delivery without it, {:.1}% with).",
        heavy.recovered_messages,
        heavy.gaps_seen,
        100.0 * (heavy.published_messages - heavy.recovered_messages) as f64
            / heavy.published_messages as f64,
        100.0 * heavy.delivery_rate(),
    );
    println!(
        "burstiness at equal mean loss concentrates gaps: {} gap events vs {} i.i.d. \
         — fewer, longer, cheaper to repair per record.",
        runs[4].1.gaps_seen, heavy.gaps_seen
    );

    assert_eq!(clean.delivered_messages, clean.published_messages);
    assert_eq!(clean.gaps_seen, 0);
    for (name, r) in &runs {
        assert_eq!(
            r.delivered_messages, r.published_messages,
            "{name}: recovery must close every gap at these loss rates"
        );
        assert_eq!(r.abandoned, 0, "{name}");
    }
    assert!(runs[4].1.gaps_seen < heavy.gaps_seen);
}
