//! E15 — placement optimization (§4.1's caveat, §5 "Cluster Management").
//!
//! §4.1: optimizing server placement "could only optimize placement for a
//! few strategies and the majority would not benefit." This experiment
//! quantifies that: as the strategy fleet grows against a fixed rack
//! budget, the co-located fraction collapses, while the *traffic-
//! weighted* hop count still improves because the heavy hitters land
//! next to their feeds.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_placement
//! ```

use tn_topo::placement::{colocated_fraction, grouped, mean_path_hops, optimize, skewed_demands};

fn main() {
    let normalizers = 4;
    let gateways = 4;
    let slots = 16;

    println!(
        "leaf-spine, {normalizers} normalizers, {gateways} gateways, {slots} hosts/rack, \
         Zipf-weighted strategy traffic\n"
    );
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "strategies", "racks", "grouped hops", "optimized", "saved", "co-located"
    );
    for strategies in [8usize, 16, 32, 64, 128, 256, 512] {
        let racks = (normalizers + gateways + strategies).div_ceil(slots).max(2);
        let demands = skewed_demands(strategies, normalizers, gateways);
        let grp = grouped(normalizers, strategies, gateways, slots);
        let opt = optimize(&demands, normalizers, gateways, racks, slots);
        let grp_hops = mean_path_hops(&demands, &grp);
        let opt_hops = mean_path_hops(&demands, &opt);
        println!(
            "{:>10} {:>8} {:>14.2} {:>14.2} {:>11.0}% {:>11.0}%",
            strategies,
            racks,
            grp_hops,
            opt_hops,
            100.0 * (grp_hops - opt_hops) / grp_hops,
            100.0 * colocated_fraction(&demands, &opt),
        );
    }
    println!();
    println!("grouped placement pays 6 hops (3+3) on every path. The optimizer co-locates");
    println!("strategies with their primary feed while rack slots last; as the fleet");
    println!("grows, the co-located *fraction* collapses (§4.1: 'the majority would not");
    println!("benefit') even though the traffic-weighted savings persist — the Zipf head");
    println!("carries the weight. A placement-aware cluster manager (§5) banks exactly");
    println!("this: optimize for the heavy few, accept fabric latency for the tail.");
}
