//! E20 — A/B feed arbitration through an outage: failover for free.
//!
//! §2's cross-connects carry every feed twice. When the primary path
//! takes a hard 10 ms outage (a flapped port, a microwave fade), the
//! arbiter keeps the stream whole out of the B copy — no requests, no
//! resync, just a win-share swing. This experiment runs the pair through
//! a scheduled outage and a burst-degraded primary and reports who won
//! each packet and what throughput looked like inside the window.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_ab_failover [-- --json]
//! ```

use tn_bench::faultsim::{run_ab_failover, AbFailoverConfig, AbFailoverRun};
use tn_fault::FaultSpec;
use tn_sim::SimTime;

fn sweep() -> Vec<(&'static str, AbFailoverRun)> {
    let outage = AbFailoverConfig::new(2);

    // Same workload, but A degrades to 30% burst loss instead of dying.
    let mut degraded = AbFailoverConfig::new(2);
    degraded.a_fault = FaultSpec::new(2 ^ 0xA).with_burst_loss(0.1, 0.2, 0.0, 0.9);

    // Both sides lossy and uncorrelated: the pair still beats either
    // alone, but some records now die on both copies.
    let mut both = AbFailoverConfig::new(2);
    both.a_fault = FaultSpec::new(2 ^ 0xA).with_iid_loss(0.10);
    both.b_fault = Some(FaultSpec::new(2 ^ 0xB).with_iid_loss(0.10));

    vec![
        ("A outage 10-20ms", run_ab_failover(&outage)),
        ("A burst-degraded", run_ab_failover(&degraded)),
        ("A+B 10% iid", run_ab_failover(&both)),
    ]
}

fn json(runs: &[(&str, AbFailoverRun)]) -> String {
    let mut out =
        String::from("{\"schema\":\"tn-exp/v1\",\"experiment\":\"ab_failover\",\"runs\":[");
    for (i, (name, r)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"fault\":\"{name}\",\"published\":{},\"delivered\":{},\"gap_events\":{},\
             \"gap_messages\":{},\"duplicates\":{},\"a_won\":{},\"b_won\":{},\
             \"window_throughput\":{:.1},\"clean_throughput\":{:.1},\
             \"digest\":\"{:016x}\",\"events\":{}}}",
            r.published_messages,
            r.delivered_messages,
            r.gap_events,
            r.gap_messages,
            r.duplicates,
            r.side_a.1,
            r.side_b.1,
            r.window_throughput,
            r.clean_throughput,
            r.digest,
            r.events,
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let runs = sweep();
    if tn_bench::json_flag() {
        println!("{}", json(&runs));
        return;
    }

    println!(
        "A/B arbitration, B {} behind A (6,000 packets / 24,000 messages, 30 ms):\n",
        SimTime::from_us(2)
    );
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>6} {:>13} {:>13}",
        "primary fault",
        "published",
        "delivered",
        "A won",
        "B won",
        "dups",
        "gaps",
        "window msg/s",
        "clean msg/s"
    );
    for (name, r) in &runs {
        println!(
            "{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>6} {:>13} {:>13}",
            name,
            r.published_messages,
            r.delivered_messages,
            r.side_a.1,
            r.side_b.1,
            r.duplicates,
            r.gap_messages,
            tn_bench::eng(r.window_throughput),
            tn_bench::eng(r.clean_throughput),
        );
    }
    println!();

    let outage = &runs[0].1;
    let both = &runs[2].1;
    println!(
        "through the outage the stream never blinks: {} of {} delivered, {} records lost, \
         window throughput {} msg/s (vs {} clean).",
        outage.delivered_messages,
        outage.published_messages,
        outage.gap_messages,
        tn_bench::eng(outage.window_throughput),
        tn_bench::eng(outage.clean_throughput),
    );
    println!(
        "only correlated loss hurts: with both sides at 10% i.i.d., {} records die on both \
         copies (~1% of the stream) — the pair turns p into p^2.",
        both.gap_messages
    );

    assert_eq!(outage.delivered_messages, outage.published_messages);
    assert_eq!(outage.gap_messages, 0);
    assert!(outage.side_b.1 > 0, "B must win inside the outage");
    assert!(outage.side_a.1 > outage.side_b.1, "A wins outside it");
    assert!(
        runs[1].1.gap_messages == 0,
        "B covers a degraded-but-alive A"
    );
    assert!(
        both.gap_messages > 0,
        "correlated loss is the only real gap source"
    );
    assert!(both.gap_messages < both.published_messages / 50);
}
