//! E17 — §5 "Protocols": a custom transport on the L1 fabric, end to end.
//!
//! "It seems fruitful to consider designing custom transport protocols
//! for use in trading systems. One could also imagine designing custom
//! transport protocols with the constraints of L1Ses in mind."
//!
//! Runs Design 3 twice — internal feed framed as Eth+IP+UDP versus the
//! 8-byte `l1t` header — and accounts for the wire time the custom
//! framing returns.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_custom_transport
//! ```

use tn_core::design::{LayerOneSwitches, TradingNetworkDesign};
use tn_core::ScenarioConfig;
use tn_sim::SimTime;
use tn_wire::l1t;
use tn_wire::stack::UDP_OVERHEAD;

fn main() {
    let sc = ScenarioConfig::builder(21)
        .background_rate(20_000.0)
        .duration(SimTime::from_ms(60))
        .build()
        .expect("valid scenario");

    let udp = LayerOneSwitches::default().run(&sc);
    let custom = LayerOneSwitches {
        custom_transport: true,
        ..Default::default()
    }
    .run(&sc);

    if tn_bench::json_flag() {
        println!("[{},{}]", udp.to_json(), custom.to_json());
        return;
    }

    println!("Design 3 internal feed, UDP framing vs the §5 custom transport:\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "framing", "orders", "react min", "react med", "hdr B/pkt"
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "Eth+IPv4+UDP",
        udp.orders_sent,
        udp.reaction.min.to_string(),
        udp.reaction.median.to_string(),
        UDP_OVERHEAD
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "l1t (custom)",
        custom.orders_sent,
        custom.reaction.min.to_string(),
        custom.reaction.median.to_string(),
        l1t::HEADER_LEN
    );
    println!();
    let saved_bytes = (UDP_OVERHEAD - l1t::HEADER_LEN) as u64;
    let per_pkt = SimTime::serialization(saved_bytes as usize, 10_000_000_000);
    println!(
        "savings: {saved_bytes} header bytes/packet = {per_pkt} of 10G wire time per hop; \
         behaviour is\nbit-identical otherwise ({} orders either way). The custom header \
         also exposes the\npartition at a fixed offset — exactly what an FPGA filter \
         stage wants (§5).",
        custom.orders_sent
    );
    assert_eq!(udp.orders_sent, custom.orders_sent);
    assert!(custom.reaction.min <= udp.reaction.min);
}
