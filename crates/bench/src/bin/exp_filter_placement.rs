//! E8 — where should market-data filtering run? (§3 "Implications for
//! trading systems")
//!
//! Sweeps consumer count and wanted-fraction through the placement cost
//! model: in-process filtering vs a dedicated core vs a shared
//! middlebox. Prints the §3 crossover: "when several systems employ the
//! same partitioning scheme, middleboxes can be more efficient in terms
//! of the number of cores used."
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_filter_placement
//! ```

use tn_sim::SimTime;
use tn_trading::filter::{FilterPlacement, FilterWorkload};

fn main() {
    let base = FilterWorkload {
        event_rate: 1_500_000.0, // the Fig 2(b) busiest-second rate
        wanted_fraction: 0.05,
        discard_cost: SimTime::from_ns(100),
        process_cost: SimTime::from_us(2),
        consumers: 1,
    };
    println!(
        "workload: {} events/s, {:.0}% wanted, discard {} / process {} per event\n",
        base.event_rate,
        base.wanted_fraction * 100.0,
        base.discard_cost,
        base.process_cost
    );

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "consumers", "in-process", "dedicated", "middlebox", "best"
    );
    let mut crossover = None;
    for consumers in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let w = FilterWorkload { consumers, ..base };
        let ip = w.cost(FilterPlacement::InProcess);
        let dc = w.cost(FilterPlacement::DedicatedCore);
        let mb = w.cost(FilterPlacement::Middlebox);
        let (best, _) = w.best();
        let fmt = |c: tn_trading::filter::PlacementCost| {
            if c.feasible {
                format!("{:.2}", c.cores)
            } else {
                format!("{:.2}!", c.cores)
            }
        };
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>14}",
            consumers,
            fmt(ip),
            fmt(dc),
            fmt(mb),
            format!("{best:?}")
        );
        if crossover.is_none() && best == FilterPlacement::Middlebox {
            crossover = Some(consumers);
        }
    }
    println!();
    match crossover {
        Some(n) => println!(
            "crossover: the shared middlebox wins from {n} consumers up — amortizing one\n\
             full-feed filtering pass across the fleet (cores marked '!' are infeasible:\n\
             a single core cannot keep up with the stream assigned to it)."
        ),
        None => println!("no crossover in range"),
    }

    // §3's feasibility cliff: at the 100 us peak (100 ns/event), a
    // software core has no headroom at all.
    println!();
    let peak = FilterWorkload {
        event_rate: 10_660_000.0, // 1066 events / 100 us
        ..base
    };
    let ip = peak.cost(FilterPlacement::InProcess);
    println!(
        "at the Fig 2(c) peak rate ({:.2}M events/s): in-process utilization {:.2} — \n\
         infeasible in software; 'little time to perform any operations beyond copying\n\
         data into memory' (§3). Hardware filtering (FPGA-L1S, §5) is the escape hatch.",
        peak.event_rate / 1e6,
        ip.peak_core_utilization
    );
}
