//! BENCH — sharded-kernel wall-clock: serial vs conservative-lookahead
//! partitions on a single CPU.
//!
//! Two scenarios:
//!
//! - **quickstart** — the design-1 topology (`ScenarioConfig::small`)
//!   run serially and through `ShardSpec::Auto(4)`. Small scheduler,
//!   heavy cross-shard chatter: the partition overhead shows honestly.
//! - **multi-metro-100k** — a synthetic 8-metro region with 100 000
//!   timer-driven strategy agents (12 500 per metro, each on its own
//!   evaluation period, orders flowing to the metro exchange, a trickle
//!   of cross-metro forwards over ~300 µs circuits). The serial kernel
//!   carries a ≥100 000-entry scheduler; the auto partition gives each
//!   shard a ~12 500-entry one. On one CPU any speedup comes from those
//!   smaller, cache-resident scheduler structures — not parallelism —
//!   so the numbers stay honest on `nproc = 1` containers.
//!
//! Every sharded run's trace digest is asserted equal to the serial
//! digest before any timing is reported. Results land in
//! `BENCH_shard.json` (schema `tn-bench/v1`) at the repo root.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin bench_shard [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the metro scenario (4 metros × 500 agents) and runs
//! one rep instead of three, for CI.

use std::time::Instant;

use tn_bench::row;
use tn_core::{ScenarioConfig, ShardSpec, TradingNetworkDesign, TraditionalSwitches};
use tn_sim::{
    Context, Frame, IdealLink, Node, PortId, ShardPlan, ShardedSimulator, SimTime, Simulator,
    TimerToken,
};

const EVAL: TimerToken = TimerToken(1);

/// A strategy agent: re-evaluates on its own periodic timer and sends an
/// order to the metro exchange every `order_every`-th evaluation.
struct Agent {
    period: SimTime,
    order_every: u32,
    evals: u32,
}

impl Node for Agent {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, EVAL);
        self.evals += 1;
        if self.evals.is_multiple_of(self.order_every) {
            let order = ctx.frame().zeroed(64).tag(u64::from(self.evals)).build();
            ctx.send(PortId(0), order);
        }
        ctx.set_timer(self.period, EVAL);
    }
}

/// A metro exchange: absorbs orders, forwarding every `forward_every`-th
/// one over the inter-metro circuit (port 0) — the cross-shard traffic.
struct MetroExchange {
    forward_every: u64,
    orders: u64,
}

impl Node for MetroExchange {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.orders += 1;
        if self.orders.is_multiple_of(self.forward_every) {
            ctx.send(PortId(0), frame);
        } else {
            ctx.recycle(frame);
        }
    }
}

struct MetroScale {
    metros: usize,
    agents_per_metro: usize,
    duration: SimTime,
}

impl MetroScale {
    fn full() -> MetroScale {
        MetroScale {
            metros: 8,
            agents_per_metro: 12_500, // 100_000 agents total
            duration: SimTime::from_ms(3),
        }
    }

    fn smoke() -> MetroScale {
        MetroScale {
            metros: 4,
            agents_per_metro: 500,
            duration: SimTime::from_us(500),
        }
    }

    fn agents(&self) -> usize {
        self.metros * self.agents_per_metro
    }
}

/// Build the multi-metro region: per metro one exchange and
/// `agents_per_metro` agents (staggered evaluation phases so the queue
/// stays deep but timestamps stay distinct), exchanges ringed with slow
/// circuits. Returns the simulator; every id is derived from position,
/// so two builds are identical.
fn build_metro(scale: &MetroScale) -> Simulator {
    let mut sim = Simulator::new(0x6d65_7472);
    let mut exchanges = Vec::with_capacity(scale.metros);
    for m in 0..scale.metros {
        let ex = sim.add_node(
            format!("exch{m}"),
            MetroExchange {
                forward_every: 100,
                orders: 0,
            },
        );
        exchanges.push(ex);
        for a in 0..scale.agents_per_metro {
            let agent = sim.add_node(
                format!("agent{m}.{a}"),
                Agent {
                    // Four period classes; staggered start below keeps
                    // same-instant firings rare.
                    period: SimTime::from_ns(80_000 + 7_000 * (a % 4) as u64),
                    order_every: 10,
                    evals: 0,
                },
            );
            // Orders ride a sub-microsecond intra-metro hop; exchange
            // ports 1.. are one-per-agent.
            sim.install_link(
                agent,
                PortId(0),
                ex,
                PortId((a + 1) as u16),
                Box::new(IdealLink::new(SimTime::from_ns(500))),
            );
            let phase = SimTime::from_ns((m * scale.agents_per_metro + a) as u64 % 80_000);
            sim.schedule_timer(phase, agent, EVAL);
        }
    }
    // Inter-metro ring: ~300 µs circuits — the conservative lookahead.
    for m in 0..scale.metros {
        let next = exchanges[(m + 1) % scale.metros];
        sim.install_link(
            exchanges[m],
            PortId(0),
            next,
            PortId(0),
            Box::new(IdealLink::new(SimTime::from_us(300))),
        );
    }
    sim
}

/// One timed run: `(digest, events, wall_ns)`.
struct Timed {
    digest: u64,
    events: u64,
    wall_ns: u128,
}

fn time_metro(scale: &MetroScale, shards: Option<u16>, reps: u32) -> Timed {
    let mut best = u128::MAX;
    let mut sig: Option<(u64, u64)> = None;
    for _ in 0..reps {
        let sim = build_metro(scale);
        // audit:allow(det-wallclock): measuring the harness itself; timings are reported, never fed back into the schedule
        let t0 = Instant::now();
        let (digest, events) = match shards {
            None => {
                let mut sim = sim;
                sim.run_until(scale.duration);
                (sim.trace.digest(), sim.trace.recorded())
            }
            Some(k) => {
                let plan = ShardPlan::auto(&sim, k);
                let mut sharded =
                    ShardedSimulator::split(sim, &plan).expect("auto plans always validate");
                sharded.run_until(scale.duration);
                let merged = sharded.finish();
                (merged.trace.digest(), merged.trace.recorded())
            }
        };
        best = best.min(t0.elapsed().as_nanos());
        if let Some(prev) = sig {
            assert_eq!(prev, (digest, events), "metro runs must be deterministic");
        }
        sig = Some((digest, events));
    }
    let (digest, events) = sig.expect("at least one rep");
    Timed {
        digest,
        events,
        wall_ns: best,
    }
}

fn time_quickstart(shards: Option<u16>, reps: u32) -> Timed {
    let mut best = u128::MAX;
    let mut sig: Option<(u64, u64)> = None;
    for _ in 0..reps {
        let mut sc = ScenarioConfig::small(42);
        sc.duration = SimTime::from_ms(8);
        sc.warmup = SimTime::from_ms(1);
        if let Some(k) = shards {
            sc.shards = ShardSpec::Auto(k);
        }
        // audit:allow(det-wallclock): measuring the harness itself; timings are reported, never fed back into the schedule
        let t0 = Instant::now();
        let report = TraditionalSwitches::default().run(&sc);
        best = best.min(t0.elapsed().as_nanos());
        if let Some(prev) = sig {
            assert_eq!(
                prev,
                (report.trace_digest, report.events_recorded),
                "quickstart runs must be deterministic"
            );
        }
        sig = Some((report.trace_digest, report.events_recorded));
    }
    let (digest, events) = sig.expect("at least one rep");
    Timed {
        digest,
        events,
        wall_ns: best,
    }
}

struct BenchRow {
    scenario: String,
    scale: String,
    shards: u16,
    events: u64,
    digest: u64,
    serial_ns: u128,
    sharded_ns: u128,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.sharded_ns.max(1) as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: u32 = if smoke { 1 } else { 3 };
    let scale = if smoke {
        MetroScale::smoke()
    } else {
        MetroScale::full()
    };
    let mut rows: Vec<BenchRow> = Vec::new();

    // Scenario 1: the design-1 quickstart through Auto(4).
    let serial = time_quickstart(None, reps);
    let sharded = time_quickstart(Some(4), reps);
    assert_eq!(
        (serial.digest, serial.events),
        (sharded.digest, sharded.events),
        "sharded quickstart diverged from serial"
    );
    rows.push(BenchRow {
        scenario: "quickstart".into(),
        scale: "design1-small".into(),
        shards: 4,
        events: serial.events,
        digest: serial.digest,
        serial_ns: serial.wall_ns,
        sharded_ns: sharded.wall_ns,
    });

    // Scenario 2: the multi-metro agent swarm, one shard per metro.
    let serial = time_metro(&scale, None, reps);
    for k in [scale.metros as u16 / 2, scale.metros as u16] {
        let sharded = time_metro(&scale, Some(k), reps);
        assert_eq!(
            (serial.digest, serial.events),
            (sharded.digest, sharded.events),
            "sharded metro run (k={k}) diverged from serial"
        );
        rows.push(BenchRow {
            scenario: format!("multi-metro-{}k", scale.agents() / 1000),
            scale: format!("{}x{}agents", scale.metros, scale.agents_per_metro),
            shards: k,
            events: serial.events,
            digest: serial.digest,
            serial_ns: serial.wall_ns,
            sharded_ns: sharded.wall_ns,
        });
    }

    println!(
        "{}",
        row(
            "scenario",
            &[
                "shards".into(),
                "events".into(),
                "serial ms".into(),
                "sharded ms".into(),
                "speedup".into(),
            ],
        )
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &r.scenario,
                &[
                    r.shards.to_string(),
                    r.events.to_string(),
                    format!("{:.2}", r.serial_ns as f64 / 1e6),
                    format!("{:.2}", r.sharded_ns as f64 / 1e6),
                    format!("{:.2}x", r.speedup()),
                ],
            )
        );
    }
    println!("\nall sharded digests equal serial (asserted before timing was reported)");

    let max = rows.iter().map(BenchRow::speedup).fold(f64::MIN, f64::max);
    let geo = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"scenario\":\"{}\",\"scale\":\"{}\",\"shards\":{},\"events\":{},\
                 \"digest\":\"0x{:016x}\",\"serial_ns\":{},\"sharded_ns\":{},\"speedup\":{:.4}}}",
                r.scenario,
                r.scale,
                r.shards,
                r.events,
                r.digest,
                r.serial_ns,
                r.sharded_ns,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\"schema\":\"tn-bench/v1\",\"harness\":\"bench_shard\",\"smoke\":{smoke},\"reps\":{reps},\
         \"runs\":[{}],\
         \"summary\":{{\"max_speedup\":{max:.4},\"geomean_speedup\":{geo:.4}}}}}\n",
        runs.join(",")
    );
    if smoke {
        println!("smoke mode: skipping BENCH_shard.json (numbers not representative)");
        return;
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(out, &json).expect("write BENCH_shard.json");
    println!("wrote {out}");
}
