//! E6 — the three §4 designs head to head on the same scenario.
//!
//! Expected shape: L1 circuit switching removes ~two orders of magnitude
//! of per-hop network latency versus commodity switches (6 ns vs 500 ns
//! per hop; +50 ns per merge), and the cloud's equalization constant puts
//! it milliseconds behind both.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_design_comparison
//! ```

use tn_core::design::{CloudDesign, LayerOneSwitches, TradingNetworkDesign, TraditionalSwitches};
use tn_core::ScenarioConfig;
use tn_sim::SimTime;

fn main() {
    let sc = ScenarioConfig::builder(9)
        .background_rate(10_000.0)
        .tick_interval(SimTime::from_us(20)) // near-per-event: clean paths
        .duration(SimTime::from_ms(60))
        .build()
        .expect("valid scenario");

    let designs: Vec<Box<dyn TradingNetworkDesign>> = vec![
        Box::new(TraditionalSwitches::default()),
        Box::new(CloudDesign::default()),
        Box::new(LayerOneSwitches::default()),
    ];
    let reports: Vec<_> = designs.iter().map(|d| d.run(&sc)).collect();

    if tn_bench::json_flag() {
        let docs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", docs.join(","));
        return;
    }

    println!(
        "{:<32} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "design", "react min", "react median", "react p99", "net time", "net %"
    );
    for r in &reports {
        println!(
            "{:<32} {:>12} {:>12} {:>12} {:>12} {:>7.1}%",
            r.design,
            r.reaction.min.to_string(),
            r.reaction.median.to_string(),
            r.reaction.p99.to_string(),
            r.network_time().to_string(),
            r.network_share * 100.0
        );
    }
    println!();

    let d1 = &reports[0];
    let d2 = &reports[1];
    let d3 = &reports[2];
    // The minimum reaction is the uncongested path: same software and
    // serialization in every design, so the min-reaction *difference* is
    // the pure switching difference (12 commodity hops vs 4 L1 stages).
    let switching_gap = d1.reaction.min.saturating_sub(d3.reaction.min);
    println!(
        "switching time removed by the L1 fabric    : {} on the uncongested path",
        switching_gap
    );
    println!(
        "  analytic: 12 x 500 ns - (6+6+50+50) ns   = {} (four L1 stages, two merged)",
        SimTime::from_ns(12 * 500 - 112)
    );
    println!(
        "per-hop advantage (500 ns vs 6 ns fan-out)  : {:.0}x  (paper: 'two orders of magnitude')",
        500.0 / 6.0
    );
    println!(
        "cloud penalty over commodity                : {:.0}x on median reaction",
        d2.reaction.median.as_ps() as f64 / d1.reaction.median.as_ps() as f64
    );
    assert!(d3.reaction.median < d1.reaction.median);
    assert!(d2.reaction.median > d1.reaction.median * 10);
    assert!(
        switching_gap > SimTime::from_us(4) && switching_gap < SimTime::from_us(8),
        "switching gap should be near the analytic 5.9us: {switching_gap}"
    );
}
