//! E11 — §3's hardware trends: switch latency creeping up while host
//! latency falls, so the network's share of system latency grows.
//!
//! For each (switch generation, host generation) era, computes the §4.1
//! round trip (12 switch hops + 3 software hops) and the network share.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_latency_trends
//! ```

use tn_switch::{host_generations, switch_generations};

fn main() {
    let switches = switch_generations();
    let hosts = host_generations();

    println!("commodity switch generations (§3 'Latency Trends' / 'Multicast Trends'):");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "year", "latency", "bandwidth", "mcast groups"
    );
    for g in &switches {
        println!(
            "{:>6} {:>12} {:>11} Tb {:>14}",
            g.year,
            g.latency.to_string(),
            g.bandwidth_bps / 1_000_000_000_000,
            g.mcast_groups
        );
    }
    let (f, l) = (switches.first().unwrap(), switches.last().unwrap());
    println!(
        "latency +{:.0}% (paper: ~20% higher, ~500 ns today); bandwidth {:.0}x; groups +{:.0}% \
         (paper: 80%)\n",
        100.0 * (l.latency.as_ps() as f64 / f.latency.as_ps() as f64 - 1.0),
        l.bandwidth_bps as f64 / f.bandwidth_bps as f64,
        100.0 * (l.mcast_groups as f64 / f.mcast_groups as f64 - 1.0),
    );

    println!("host (one software hop) generations:");
    for g in &hosts {
        println!("{:>6} {:>12}", g.year, g.latency.to_string());
    }
    println!(
        "(paper: 'latency for a hop through a software host ... is now below 1 microsecond')\n"
    );

    println!("the §4.1 round trip (12 switch hops + 3 software hops) by era:");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>10}",
        "era", "network", "software", "total", "net share"
    );
    for (sw, host) in switches
        .iter()
        .zip([0, 0, 1, 1, 2, 2].iter().map(|&i| &hosts[i]))
    {
        let network = sw.latency * 12;
        let software = host.latency * 3;
        let total = network + software;
        println!(
            "{:>12} {:>14} {:>14} {:>14} {:>9.0}%",
            format!("{}/{}", sw.year, host.year),
            network.to_string(),
            software.to_string(),
            total.to_string(),
            100.0 * network.as_ps() as f64 / total.as_ps() as f64,
        );
    }
    println!();
    println!("network share climbs monotonically — 'network latency is a large and");
    println!("increasing share of total system latency' (§3).");
}
