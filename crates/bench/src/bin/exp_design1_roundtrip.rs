//! E5 — §4.1's round-trip arithmetic on Design 1, measured.
//!
//! The paper: "a round trip (exchange, normalizer, strategy, gateway, and
//! back to the exchange) would involve 12 switch hops and 3 software
//! hops. Assuming each switch hop incurs 500 nanoseconds of latency, half
//! of the overall time through the system is spent in the network!"
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_design1_roundtrip
//! ```

use tn_core::design::{TradingNetworkDesign, TraditionalSwitches};
use tn_core::ScenarioConfig;
use tn_sim::SimTime;

fn main() {
    // The paper's assumptions: every software function ~2 us, light load
    // so queueing does not blur the path.
    let sc = ScenarioConfig::builder(5)
        .normalizer_service(SimTime::from_us(2))
        .decision_service(SimTime::from_us(2))
        .gateway_service(SimTime::from_us(2))
        .background_rate(10_000.0)
        .tick_interval(SimTime::from_us(20))
        .duration(SimTime::from_ms(60))
        .build()
        .expect("valid scenario");

    if tn_bench::json_flag() {
        println!("{}", TraditionalSwitches::default().run(&sc).to_json());
        return;
    }

    // The analytic model first.
    let switch_hop = SimTime::from_ns(500);
    let hops = 12u64;
    let network_analytic = switch_hop * hops;
    let software_analytic = sc.software_path();
    println!("§4.1 analytic model:");
    println!("  4 legs x 3 switch hops       = {hops} switch hops");
    println!("  {hops} x {switch_hop} = {network_analytic} network");
    println!("  3 software hops x 2us        = {software_analytic} software");
    println!(
        "  network share                = {:.0}%  (the paper's 'half')",
        100.0 * network_analytic.as_ps() as f64
            / (network_analytic + software_analytic).as_ps() as f64
    );
    println!();

    // Then the measured system.
    let report = TraditionalSwitches::default().run(&sc);
    println!("measured on the simulated fabric:");
    println!("{}", report.summary());
    println!();
    println!(
        "  median reaction {} = {} software + {} network/serialization/exchange",
        report.reaction.median,
        report.software_path,
        report.network_time()
    );
    println!(
        "  measured network share = {:.0}%  (paper: ~50%; serialization and the \n\
         exchange-side hop push the measured share above the pure-switch analytic)",
        report.network_share * 100.0
    );
    assert!(report.reaction.count > 0);
    assert!((0.3..=0.8).contains(&report.network_share));
}
