//! E4 — regenerate **Figure 2(c)**: the busiest second of Figure 2(b) at
//! 100-microsecond resolution.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin fig2c
//! ```

use tn_bench::{ascii_chart, eng};
use tn_market::workload::{SESSION_CLOSE_SEC, SESSION_OPEN_SEC};
use tn_market::{IntradayModel, MicroburstModel};
use tn_stats::Summary;

fn main() {
    // Take the busiest second straight out of the Fig 2(b) model so the
    // two figures are consistent, then distribute it over 100 us windows.
    let counts = IntradayModel::default().per_second_counts(2);
    let (busiest_sec, busiest_count) = counts
        [SESSION_OPEN_SEC as usize..SESSION_CLOSE_SEC as usize]
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, &c)| (SESSION_OPEN_SEC as usize + i, c))
        .expect("session has seconds");

    let model = MicroburstModel {
        total_events: busiest_count,
        ..MicroburstModel::default()
    };
    let windows = model.window_counts(4);

    println!(
        "Figure 2(c): events in the busiest second ({}:{:02}:{:02}, {} events), 100 us windows\n",
        busiest_sec / 3600,
        (busiest_sec % 3600) / 60,
        busiest_sec % 60,
        eng(busiest_count as f64)
    );
    let series: Vec<f64> = windows.iter().map(|&c| c as f64).collect();
    println!("{}", ascii_chart(&series, 100, 14));
    println!(
        "0ms{:>22}200ms{:>18}400ms{:>18}600ms{:>18}800ms",
        "", "", "", ""
    );
    println!();

    let mut s = Summary::new();
    s.extend(windows.iter().copied());
    println!(
        "median 100 us window  : {:>5} events   (paper: 129)",
        s.median()
    );
    println!(
        "busiest 100 us window : {:>5} events   (paper: 1066)",
        s.max()
    );
    println!();
    // §3: "processing at 100 nanoseconds per event — i.e., a software
    // system would have little time to perform any operations beyond
    // copying data into memory."
    let budget_ns = 100_000.0 / s.max() as f64;
    println!("per-event budget in the peak window: {budget_ns:.0} ns   (paper: ~100 ns)");
    assert!((90..=170).contains(&s.median()), "median near 129");
    assert!((650..=1700).contains(&s.max()), "max near 1066");
}
