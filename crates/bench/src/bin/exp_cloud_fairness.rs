//! E22 — the cloud fairness frontier (§4.2, made quantitative).
//!
//! The paper's cloud verdict is qualitative: a provider fabric can be
//! *fair* (delay-equalized delivery, sequenced order entry) but only by
//! *paying latency*. This experiment prices that trade. A tn-lab sweep
//! runs the same publish-to-S-subscribers scenario over three fabrics —
//! a layer-1 switch (port-skew-limited), a leaf-spine tree, and a cloud
//! overlay of relay VMs with per-subscriber delay equalizers — across
//! jitter σ × hold window × fan-out × subscriber count, and reports each
//! cell's delivery spread (p50/p99/max across subscribers, per event)
//! against the median latency the mechanisms added.
//!
//! The frontier the table pins (and `main` asserts): cloud spread can be
//! driven *below* the L1 switch's port skew — but every cell that gets
//! there paid added median latency at least its hold window, while every
//! zero-hold cell under jitter leaks the tail straight into its spread.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_cloud_fairness \
//!     [-- --threads 4] [-- --json] [-- --smoke]
//! ```

use tn_cloud::{run_fairness, DesignKind, FairnessScenario};
use tn_lab::{run_batch, Axis, AxisValues, RunExecutor, RunOutcome, RunPlan, SweepSpec};
use tn_sim::SimTime;

/// Equalizer residual pacing error: the precision floor of the cloud's
/// release clocks. Tighter than L1 port skew so the mechanisms *can* win
/// the spread contest when the hold covers the jitter tail.
const RESIDUAL: SimTime = SimTime::from_ns(20);

/// The frontier axes as a declarative tn-lab sweep. The L1 and
/// leaf-spine designs ignore the cloud knobs but run in every cell, so
/// each cloud point carries its own in-cell comparison baselines.
fn spec(smoke: bool) -> SweepSpec {
    let (jitter, hold, fanout, subs) = if smoke {
        (vec![0.0, 2000.0], vec![0.0, 5.0], vec![4.0], vec![8.0])
    } else {
        (
            vec![0.0, 1000.0, 2000.0, 4000.0],
            vec![0.0, 2.0, 5.0, 10.0],
            vec![2.0, 4.0, 8.0],
            vec![4.0, 8.0, 16.0],
        )
    };
    SweepSpec {
        name: "cloud-fairness".into(),
        base: "small".into(),
        designs: vec!["l1".into(), "leaf-spine".into(), "cloud".into()],
        overrides: vec![],
        axes: vec![
            Axis {
                param: "jitter_ns".into(),
                values: AxisValues::List(jitter),
            },
            Axis {
                param: "hold_us".into(),
                values: AxisValues::List(hold),
            },
            Axis {
                param: "fanout".into(),
                values: AxisValues::List(fanout),
            },
            Axis {
                param: "subscribers".into(),
                values: AxisValues::List(subs),
            },
        ],
        seeds: vec![7],
    }
}

/// Lab executor resolving one cell through the tn-cloud harness.
struct FairnessExecutor;

fn plan_design(plan: &RunPlan) -> Result<DesignKind, String> {
    let param = |name: &str| {
        plan.params
            .iter()
            .find(|(p, _)| p == name)
            .map(|&(_, v)| v)
            .ok_or(format!("missing param `{name}`"))
    };
    Ok(match plan.design.as_str() {
        "l1" => DesignKind::L1Switch,
        "leaf-spine" => DesignKind::LeafSpine,
        "cloud" => DesignKind::Cloud {
            fanout: param("fanout")? as u16,
            jitter: SimTime::from_ns(param("jitter_ns")? as u64),
            hold: SimTime::from_us(param("hold_us")? as u64),
            residual: RESIDUAL,
        },
        other => return Err(format!("unknown design `{other}`")),
    })
}

impl RunExecutor for FairnessExecutor {
    fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String> {
        let subs = plan
            .params
            .iter()
            .find(|(p, _)| p == "subscribers")
            .map(|&(_, v)| v as usize)
            .ok_or("missing param `subscribers`")?;
        let mut sc = FairnessScenario::small(plan.seed);
        sc.subscribers = subs;
        let r = run_fairness(&sc, &plan_design(plan)?);
        Ok(RunOutcome {
            digest: r.digest,
            events: r.events,
            samples_ps: vec![r.median_delivery_ps],
            metrics: vec![
                ("spread_p50_ps".into(), r.spread_p50_ps as f64),
                ("spread_p99_ps".into(), r.spread_p99_ps as f64),
                ("spread_max_ps".into(), r.spread_max_ps as f64),
                ("added_median_ps".into(), r.added_median_ps as f64),
                ("hold_ps".into(), r.hold_ps as f64),
                ("late".into(), r.late as f64),
                ("complete_events".into(), r.complete_events as f64),
            ],
        })
    }
}

/// One resolved row: the plan's cell coordinates plus its outcome.
struct Row<'a> {
    design: &'a str,
    jitter_ns: u64,
    hold_us: u64,
    fanout: u64,
    subscribers: u64,
    out: &'a RunOutcome,
}

fn metric(out: &RunOutcome, name: &str) -> f64 {
    out.metrics
        .iter()
        .find(|(m, _)| m == name)
        .map_or(0.0, |&(_, v)| v)
}

fn rows<'a>(manifest: &'a [RunPlan], outcomes: &'a [RunOutcome]) -> Vec<Row<'a>> {
    manifest
        .iter()
        .zip(outcomes)
        .map(|(plan, out)| {
            let p = |name: &str| {
                plan.params
                    .iter()
                    .find(|(q, _)| q == name)
                    .map_or(0.0, |&(_, v)| v) as u64
            };
            Row {
                design: &plan.design,
                jitter_ns: p("jitter_ns"),
                hold_us: p("hold_us"),
                fanout: p("fanout"),
                subscribers: p("subscribers"),
                out,
            }
        })
        .collect()
}

fn json(rows: &[Row<'_>]) -> String {
    let mut out =
        String::from("{\"schema\":\"tn-exp/v1\",\"experiment\":\"cloud_fairness\",\"runs\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"design\":\"{}\",\"jitter_ns\":{},\"hold_us\":{},\"fanout\":{},\
             \"subscribers\":{},\"spread_p50_ps\":{},\"spread_p99_ps\":{},\
             \"spread_max_ps\":{},\"added_median_ps\":{},\"late\":{}}}",
            r.design,
            r.jitter_ns,
            r.hold_us,
            r.fanout,
            r.subscribers,
            metric(r.out, "spread_p50_ps") as u64,
            metric(r.out, "spread_p99_ps") as u64,
            metric(r.out, "spread_max_ps") as u64,
            metric(r.out, "added_median_ps") as u64,
            metric(r.out, "late") as u64,
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|t| t.parse::<usize>().ok())
        .unwrap_or(1);

    let spec = spec(smoke);
    let manifest = spec.expand().expect("static spec expands");
    let outcomes = run_batch(&manifest, threads, &FairnessExecutor).expect("sweep runs");
    let rows = rows(&manifest, &outcomes);

    // The in-cell L1 spread each cloud point competes against.
    let l1_spread = |r: &Row<'_>| {
        rows.iter()
            .find(|c| {
                c.design == "l1"
                    && c.subscribers == r.subscribers
                    && c.jitter_ns == r.jitter_ns
                    && c.hold_us == r.hold_us
                    && c.fanout == r.fanout
            })
            .map(|c| metric(c.out, "spread_p99_ps"))
            .expect("every cell ran all three designs")
    };

    // The frontier claims. (1) Fairness is purchasable: some cloud cell
    // beats the L1 port skew. (2) It is never free: every such cell paid
    // added median latency >= its hold window. (3) Skimping leaks: under
    // jitter with no hold, the tail lands in the spread.
    let mut beat_l1 = 0u64;
    let mut leaks = 0u64;
    for r in rows.iter().filter(|r| r.design == "cloud") {
        let spread_p99 = metric(r.out, "spread_p99_ps");
        let added = metric(r.out, "added_median_ps");
        let hold = metric(r.out, "hold_ps");
        if spread_p99 < l1_spread(r) {
            beat_l1 += 1;
            assert!(
                added >= hold,
                "cell (jitter={} hold={} k={} S={}) beat L1 spread without paying \
                 its hold: added {added} ps < hold {hold} ps",
                r.jitter_ns,
                r.hold_us,
                r.fanout,
                r.subscribers,
            );
        }
        if r.jitter_ns > 0 && r.hold_us == 0 && spread_p99 > l1_spread(r) {
            leaks += 1;
        }
    }
    assert!(beat_l1 > 0, "no cloud cell ever beat the L1 spread");
    assert!(leaks > 0, "zero-hold cells under jitter must leak spread");

    if tn_bench::json_flag() {
        println!("{}", json(&rows));
        return;
    }

    println!("cloud fairness frontier: spread vs added median latency");
    println!(
        "(lab-backed: spec `{}`, {} cells x 3 designs, {threads} thread(s))\n",
        spec.name,
        manifest.len() / 3,
    );
    println!(
        "{:>11} {:>9} {:>8} {:>3} {:>3} {:>12} {:>12} {:>13} {:>5}",
        "design", "jitter", "hold", "k", "S", "spread p50", "spread p99", "added median", "late"
    );
    for r in &rows {
        println!(
            "{:>11} {:>6} ns {:>5} us {:>3} {:>3} {:>9} ns {:>9} ns {:>10} ns {:>5}",
            r.design,
            r.jitter_ns,
            r.hold_us,
            r.fanout,
            r.subscribers,
            metric(r.out, "spread_p50_ps") as u64 / 1_000,
            metric(r.out, "spread_p99_ps") as u64 / 1_000,
            metric(r.out, "added_median_ps") as u64 / 1_000,
            metric(r.out, "late") as u64,
        );
    }
    println!();
    println!("{beat_l1} cloud cell(s) drove spread below the L1 port skew; every one paid");
    println!("added median latency >= its hold window, and {leaks} zero-hold cell(s) under");
    println!("jitter leaked the tail into their spread — fairness is bought, not free.");
}
