//! E1 — regenerate **Table 1**: frame lengths from market data feeds.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin table1
//! ```
//!
//! Samples a mid-day hour of traffic from each exchange profile and
//! prints min/avg/median/max frame lengths next to the paper's numbers.

use tn_market::ExchangeProfile;
use tn_stats::Summary;

fn main() {
    // A mid-day hour at a few thousand packets/second.
    let samples_per_feed = 1_000_000;
    let paper = [
        ("Exchange A", (73u64, 92u64, 89u64, 1514u64)),
        ("Exchange B", (64, 113, 76, 1067)),
        ("Exchange C", (81, 151, 101, 1442)),
    ];

    println!("Table 1: Frame lengths from market data feeds");
    println!(
        "{:<12} {:>6} {:>7} {:>8} {:>6}   (paper: min/avg/median/max)",
        "Feed", "min", "avg", "median", "max"
    );
    for (profile, (name, (p_min, p_avg, p_med, p_max))) in
        ExchangeProfile::table1().into_iter().zip(paper)
    {
        let mut s = Summary::new();
        s.extend(profile.sample_frame_lengths(0x7AB1u64, samples_per_feed));
        println!(
            "{:<12} {:>6} {:>7.0} {:>8} {:>6}   ({p_min}/{p_avg}/{p_med}/{p_max})",
            name,
            s.min(),
            s.mean(),
            s.median(),
            s.max(),
        );
    }
    println!();
    println!(
        "Header accounting: every frame carries 42 B of Eth+IP+UDP headers plus the\n\
         profile's 0-15 B protocol-specific header — 25-40% of all bytes sent (§3)."
    );
}
