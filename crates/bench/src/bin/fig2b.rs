//! E3 — regenerate **Figure 2(b)**: options BBO events for a single
//! stock on a single day, counted in 1-second windows.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin fig2b
//! ```

use tn_bench::{ascii_chart, eng};
use tn_market::workload::{SESSION_CLOSE_SEC, SESSION_OPEN_SEC};
use tn_market::IntradayModel;
use tn_stats::Summary;

fn main() {
    let counts = IntradayModel::default().per_second_counts(2);
    println!("Figure 2(b): options events for a single stock, 1-second windows\n");
    // Plot 9:00 - 16:30 like the paper's x-axis.
    let from = 32_400usize;
    let to = 59_400usize;
    let window: Vec<f64> = counts[from..to].iter().map(|&c| c as f64).collect();
    println!("{}", ascii_chart(&window, 108, 14));
    println!(
        "9:00{:>20}10:30{:>20}12:00{:>20}13:30{:>20}15:00{:>8}16:30",
        "", "", "", "", ""
    );
    println!();

    let mut s = Summary::new();
    s.extend(
        counts[SESSION_OPEN_SEC as usize..SESSION_CLOSE_SEC as usize]
            .iter()
            .copied(),
    );
    let median = s.median();
    let max = s.max();
    println!("session seconds : {}", s.count());
    println!(
        "median second   : {} events   (paper: >300k)",
        eng(median as f64)
    );
    println!(
        "busiest second  : {} events   (paper: 1.5M)",
        eng(max as f64)
    );
    println!("day total       : {} events", eng(s.sum() as f64));
    println!();
    // §3: "to be able to process a single second's events as quickly as
    // they arrive, a trading system would need to be able to process each
    // event in around 650 nanoseconds".
    let budget_ns = 1e9 / max as f64;
    println!("per-event budget during the busiest second: {budget_ns:.0} ns   (paper: ~650 ns)");
    assert!(median > 300_000, "paper anchor: median > 300k");
    assert!(
        (1_150_000..=1_600_000).contains(&max),
        "paper anchor: busiest ~1.5M"
    );
}
