//! BENCH — lab batch-runner wall-clock: serial vs parallel on the smoke
//! grid.
//!
//! Runs the `tn-lab` smoke sweep (3×3×2 cells of the trimmed quickstart
//! scenario) with 1 worker and with 4 workers, asserts the rendered
//! `tn-lab/v1` documents are byte-identical (the determinism contract the
//! divergence registry also pins), and records the wall-clock speedup in
//! `BENCH_lab.json` (schema `tn-bench/v1`) at the repo root.
//!
//! Wall-clock numbers live *here*, in the bench harness — never in the
//! lab report itself, which must stay a pure function of the spec.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin bench_lab [-- --smoke]
//! ```
//!
//! `--smoke` runs one rep instead of three, for CI.

use std::time::Instant;
use tn_bench::row;
use tn_lab::{run_batch, LabReport, ScenarioExecutor, SweepSpec};
use tn_sim::{fnv1a_fold, EMPTY_DIGEST};

/// One (threads) measurement over the smoke grid.
struct Measurement {
    threads: usize,
    wall_ns: u128,
    json: String,
    events: u64,
}

fn run_grid(threads: usize) -> (String, u64) {
    let spec = SweepSpec::smoke();
    let manifest = spec.expand().expect("smoke spec expands");
    let outcomes = run_batch(&manifest, threads, &ScenarioExecutor::new()).expect("grid runs");
    let events = outcomes.iter().map(|o| o.events).sum();
    let report = LabReport::build(&spec.name, &spec.base, &manifest, &outcomes);
    (report.to_json(), events)
}

fn measure(threads: usize, reps: u32) -> Measurement {
    let mut best = u128::MAX;
    let mut out: Option<(String, u64)> = None;
    for _ in 0..reps {
        // audit:allow(det-wallclock): measuring the harness itself; timings are reported, never fed back into the schedule
        let t0 = Instant::now();
        let result = run_grid(threads);
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        if let Some(prev) = &out {
            assert_eq!(prev.0, result.0, "grid run must be deterministic");
        }
        out = Some(result);
    }
    let (json, events) = out.expect("at least one rep");
    Measurement {
        threads,
        wall_ns: best,
        json,
        events,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: u32 = if smoke { 1 } else { 3 };

    let serial = measure(1, reps);
    let parallel = measure(4, reps);
    assert_eq!(
        serial.json, parallel.json,
        "1-thread and 4-thread tn-lab/v1 output must be byte-identical"
    );
    let doc_digest = fnv1a_fold(EMPTY_DIGEST, serial.json.as_bytes());
    let speedup = serial.wall_ns as f64 / parallel.wall_ns.max(1) as f64;

    println!(
        "{}",
        row(
            "grid",
            &["events".into(), "wall ms".into(), "speedup".into()],
        )
    );
    for m in [&serial, &parallel] {
        println!(
            "{}",
            row(
                &format!("smoke/{}thread", m.threads),
                &[
                    m.events.to_string(),
                    format!("{:.2}", m.wall_ns as f64 / 1e6),
                    format!("{:.2}x", serial.wall_ns as f64 / m.wall_ns.max(1) as f64),
                ],
            )
        );
    }
    println!("\noutput byte-identical across thread counts (doc digest {doc_digest:016x})");

    let json = format!(
        "{{\"schema\":\"tn-bench/v1\",\"harness\":\"bench_lab\",\"smoke\":{smoke},\"reps\":{reps},\
         \"runs\":[{{\"scenario\":\"lab-smoke-grid\",\"scale\":\"18run\",\"events\":{events},\
         \"digest\":\"0x{doc_digest:016x}\",\"serial_ns\":{serial_ns},\"parallel_ns\":{parallel_ns},\
         \"parallel_threads\":4,\"speedup\":{speedup:.4}}}],\
         \"summary\":{{\"max_speedup\":{speedup:.4},\"geomean_speedup\":{speedup:.4}}}}}\n",
        events = serial.events,
        serial_ns = serial.wall_ns,
        parallel_ns = parallel.wall_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lab.json");
    std::fs::write(out, &json).expect("write BENCH_lab.json");
    println!("wrote {out}");
}
