//! BENCH — kernel wall-clock benchmark: binary heap vs calendar queue
//! vs timing wheel.
//!
//! Runs three representative workloads (the quickstart design, the
//! loss-recovery fault scenario, the latency-decomposition telemetry
//! chain) plus a scheduler-bound timer-churn stress at three scales each,
//! under all three event schedulers. Every pairing is first checked for
//! bit-identical trace digests — a benchmark that changed the simulation
//! would be measuring a different program — then timed best-of-N.
//!
//! Schedulers are a per-scenario choice (`ScenarioConfig::scheduler`),
//! so the headline `speedup` per row is what that choice buys: the best
//! of the three schedulers against the reference heap (1.0 when the
//! heap is already the right pick). Per-scheduler ratios are reported
//! alongside.
//!
//! Results land in `BENCH_kernel.json` (schema `tn-bench/v1`) at the repo
//! root and as a table on stdout.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin bench_kernel [-- --smoke]
//! ```
//!
//! `--smoke` runs the smallest scale only, once, for CI.

use std::time::Instant;
use tn_bench::faultsim::{run_loss_recovery, LossRecoveryConfig};
use tn_bench::obssim::{run_decomposition, DecompositionConfig};
use tn_bench::row;
use tn_core::{ScenarioConfig, TradingNetworkDesign, TraditionalSwitches};
use tn_fault::FaultSpec;
use tn_netdev::EtherLink;
use tn_sim::{
    Context, Frame, KernelProfile, Node, PortId, SchedulerKind, SimTime, Simulator, TimerToken,
};

/// One (scenario, scale) measurement across all three schedulers.
struct Measurement {
    scenario: &'static str,
    scale: String,
    events: u64,
    digest: u64,
    heap_ns: u128,
    calendar_ns: u128,
    wheel_ns: u128,
    /// Calendar bucket-array rebuilds (from the calendar profiled pass).
    calendar_rebuilds: u64,
    /// Wheel cascade operations (from the wheel profiled pass).
    wheel_cascades: u64,
    /// Arena reuse ratio — scheduler-independent, taken from the heap
    /// profiled pass; `None` when the workload never built a frame.
    arena_reuse_ratio: Option<f64>,
}

impl Measurement {
    fn speedup_calendar(&self) -> f64 {
        self.heap_ns as f64 / self.calendar_ns.max(1) as f64
    }

    fn speedup_wheel(&self) -> f64 {
        self.heap_ns as f64 / self.wheel_ns.max(1) as f64
    }

    /// What per-scenario scheduler choice buys on this row: the best of
    /// the three schedulers vs the reference heap (1.0 when the heap is
    /// already the right pick).
    fn speedup(&self) -> f64 {
        self.speedup_calendar().max(self.speedup_wheel()).max(1.0)
    }
}

/// Signature a workload reduces to, for the cross-scheduler equality gate.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
struct Sig {
    digest: u64,
    events: u64,
}

/// Time `work` best-of-`reps` and return (best wall ns, signature).
fn time_best(reps: u32, mut work: impl FnMut() -> Sig) -> (u128, Sig) {
    let mut best = u128::MAX;
    let mut sig = None;
    for _ in 0..reps {
        // audit:allow(det-wallclock): measuring the harness itself; timings are reported, never fed back into the schedule
        let t0 = Instant::now();
        let s = work();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        if let Some(prev) = sig {
            assert_eq!(prev, s, "benchmark workload must be deterministic");
        }
        sig = Some(s);
    }
    (best, sig.expect("at least one rep"))
}

/// Run one workload under both schedulers, assert identical signatures,
/// and record wall times. A second, untimed pass per scheduler runs with
/// the kernel profiler on — structural counters (calendar rebuilds,
/// wheel cascades, arena reuse) land in the row without perturbing the
/// timed runs, and each pass re-checks that profiling never moves the
/// digest.
fn measure(
    scenario: &'static str,
    scale: String,
    reps: u32,
    run: impl Fn(SchedulerKind, bool) -> (Sig, Option<KernelProfile>),
) -> Measurement {
    let (heap_ns, heap_sig) = time_best(reps, || run(SchedulerKind::BinaryHeap, false).0);
    let (calendar_ns, cal_sig) = time_best(reps, || run(SchedulerKind::CalendarQueue, false).0);
    let (wheel_ns, wheel_sig) = time_best(reps, || run(SchedulerKind::TimingWheel, false).0);
    assert_eq!(
        heap_sig, cal_sig,
        "{scenario}/{scale}: calendar queue diverged — benchmark void"
    );
    assert_eq!(
        heap_sig, wheel_sig,
        "{scenario}/{scale}: timing wheel diverged — benchmark void"
    );
    let profiled = |kind: SchedulerKind| -> KernelProfile {
        let (sig, profile) = run(kind, true);
        assert_eq!(
            heap_sig, sig,
            "{scenario}/{scale}: profiler moved the digest — benchmark void"
        );
        profile.expect("profiled pass must produce a kernel profile")
    };
    let heap_prof = profiled(SchedulerKind::BinaryHeap);
    let cal_prof = profiled(SchedulerKind::CalendarQueue);
    let wheel_prof = profiled(SchedulerKind::TimingWheel);
    Measurement {
        scenario,
        scale,
        events: heap_sig.events,
        digest: heap_sig.digest,
        heap_ns,
        calendar_ns,
        wheel_ns,
        calendar_rebuilds: cal_prof.sched_rebuilds,
        wheel_cascades: wheel_prof.sched_cascades,
        arena_reuse_ratio: heap_prof.arena_reuse_ratio(),
    }
}

/// The quickstart design (TraditionalSwitches, seed 42) at a given
/// measured duration; the largest step uses the paper-scale topology.
fn quickstart_sig(sc: &ScenarioConfig) -> (Sig, Option<KernelProfile>) {
    let report = TraditionalSwitches::default().run(sc);
    (
        Sig {
            digest: report.trace_digest,
            events: report.events_recorded,
        },
        report.profile,
    )
}

/// Timer-churn stress: `timers` self-re-arming timers with staggered
/// periods on one node, plus a trickle of frames over a real link so the
/// trace digest is non-trivial. Queue operations dominate here, so this
/// is the workload where scheduler asymptotics actually show.
struct Churn {
    base_ns: u64,
}

impl Node for Churn {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _: PortId, frame: Frame) {
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        // Token-dependent stagger keeps thousands of distinct deadlines
        // live in the queue instead of one synchronized cohort.
        let stagger = (timer.0.wrapping_mul(7919)) % 977;
        ctx.set_timer(SimTime::from_ns(self.base_ns + stagger), timer);
        if timer.0.is_multiple_of(16) {
            let frame = ctx.frame().zeroed(64).build();
            ctx.send(PortId(0), frame);
        }
    }
}

/// Absorbs the churn trickle and recycles the payloads.
struct Sink;

impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _: PortId, frame: Frame) {
        ctx.recycle(frame);
    }
}

fn churn_sig(kind: SchedulerKind, timers: u64, profile: bool) -> (Sig, Option<KernelProfile>) {
    let mut sim = Simulator::with_scheduler(99, kind);
    if profile {
        sim.set_profile(true);
    }
    let churn = sim.add_node("churn", Churn { base_ns: 1_000 });
    let sink = sim.add_node("sink", Sink);
    let link = EtherLink::ten_gig(SimTime::from_ns(50));
    sim.install_link(churn, PortId(0), sink, PortId(0), Box::new(link.clone()));
    sim.install_link(sink, PortId(0), churn, PortId(0), Box::new(link));
    for i in 0..timers {
        sim.schedule_timer(SimTime::from_ns(i % 1_000), churn, TimerToken(i));
    }
    sim.run_until(SimTime::from_us(400));
    let profile = sim.profile();
    (
        Sig {
            digest: sim.trace.digest(),
            events: sim.trace.recorded(),
        },
        profile,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: u32 = if smoke { 1 } else { 3 };
    let mut runs: Vec<Measurement> = Vec::new();

    // 1. Quickstart design at three measured durations; the top step is
    //    the paper-scale topology.
    let mut quickstart_scales: Vec<(String, ScenarioConfig)> =
        vec![("small-8ms".into(), small_with_duration(SimTime::from_ms(8)))];
    if !smoke {
        quickstart_scales.push((
            "small-40ms".into(),
            small_with_duration(SimTime::from_ms(40)),
        ));
        let mut paper = ScenarioConfig::paper_scale(42);
        paper.duration = SimTime::from_ms(6);
        paper.warmup = SimTime::from_ms(1);
        quickstart_scales.push(("paper-6ms".into(), paper));
    }
    for (scale, sc) in quickstart_scales {
        runs.push(measure("quickstart", scale, reps, |kind, profile| {
            let mut sc = sc.clone();
            sc.scheduler = kind;
            sc.obs.profile = profile;
            quickstart_sig(&sc)
        }));
    }

    // 2. Loss-recovery fault scenario at growing packet counts.
    let packet_scales: &[u64] = if smoke {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    for &packets in packet_scales {
        runs.push(measure(
            "faultsim-loss-recovery",
            format!("{packets}pkt"),
            reps,
            |kind, profile| {
                let mut cfg = LossRecoveryConfig::new(1, FaultSpec::new(11).with_iid_loss(0.01));
                cfg.packets = packets;
                cfg.scheduler = kind;
                cfg.obs.profile = profile;
                let run = run_loss_recovery(&cfg);
                (
                    Sig {
                        digest: run.digest,
                        events: run.events,
                    },
                    run.profile,
                )
            },
        ));
    }

    // 3. Telemetry decomposition chain at growing burst counts.
    let burst_scales: &[u64] = if smoke { &[64] } else { &[64, 256, 1_024] };
    for &bursts in burst_scales {
        runs.push(measure(
            "obssim-decomposition",
            format!("{bursts}burst"),
            reps,
            |kind, profile| {
                let mut cfg = DecompositionConfig::new(42);
                cfg.bursts = bursts;
                cfg.scheduler = kind;
                // The timed workload stays what it always was — full
                // application telemetry, no kernel profiler; the profiled
                // pass flips only the profiler on.
                let mut obs = tn_sim::ObsConfig::full();
                obs.flight = false;
                obs.profile = profile;
                let run = run_decomposition(&cfg, obs);
                (
                    Sig {
                        digest: run.digest,
                        events: run.events,
                    },
                    run.profile,
                )
            },
        ));
    }

    // 4. Scheduler-bound timer churn at growing live-timer counts.
    let timer_scales: &[u64] = if smoke {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    for &timers in timer_scales {
        runs.push(measure(
            "timer-churn",
            format!("{timers}timer"),
            reps,
            |kind, profile| churn_sig(kind, timers, profile),
        ));
    }

    println!(
        "{}",
        row(
            "scenario/scale",
            &[
                "events".into(),
                "heap ms".into(),
                "calendar ms".into(),
                "wheel ms".into(),
                "best".into(),
                "reuse".into(),
                "rebuilds".into(),
                "cascades".into(),
            ],
        )
    );
    for m in &runs {
        println!(
            "{}",
            row(
                &format!("{}/{}", m.scenario, m.scale),
                &[
                    m.events.to_string(),
                    format!("{:.2}", m.heap_ns as f64 / 1e6),
                    format!("{:.2}", m.calendar_ns as f64 / 1e6),
                    format!("{:.2}", m.wheel_ns as f64 / 1e6),
                    format!("{:.2}x", m.speedup()),
                    match m.arena_reuse_ratio {
                        Some(r) => format!("{:.0}%", r * 100.0),
                        None => "-".into(),
                    },
                    m.calendar_rebuilds.to_string(),
                    m.wheel_cascades.to_string(),
                ],
            )
        );
    }

    let json = render_bench_json(&runs, smoke, reps);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(out, &json).expect("write BENCH_kernel.json");
    println!("\nwrote {out}");
}

fn small_with_duration(duration: SimTime) -> ScenarioConfig {
    let mut sc = ScenarioConfig::small(42);
    sc.duration = duration;
    sc
}

fn render_bench_json(runs: &[Measurement], smoke: bool, reps: u32) -> String {
    let mut out = String::from("{\"schema\":\"tn-bench/v1\",\"harness\":\"bench_kernel\",");
    out.push_str(&format!("\"smoke\":{smoke},\"reps\":{reps},\"runs\":["));
    for (i, m) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let reuse = match m.arena_reuse_ratio {
            Some(r) => format!("{r:.4}"),
            None => "null".into(),
        };
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"scale\":\"{}\",\"events\":{},\"digest\":\"0x{:016x}\",\
             \"binary_heap_ns\":{},\"calendar_queue_ns\":{},\"timing_wheel_ns\":{},\
             \"speedup_calendar\":{:.4},\"speedup_wheel\":{:.4},\"speedup\":{:.4},\
             \"calendar_rebuilds\":{},\"wheel_cascades\":{},\"arena_reuse_ratio\":{}}}",
            m.scenario,
            m.scale,
            m.events,
            m.digest,
            m.heap_ns,
            m.calendar_ns,
            m.wheel_ns,
            m.speedup_calendar(),
            m.speedup_wheel(),
            m.speedup(),
            m.calendar_rebuilds,
            m.wheel_cascades,
            reuse
        ));
    }
    let max = runs.iter().map(Measurement::speedup).fold(0.0, f64::max);
    let geomean = |f: &dyn Fn(&Measurement) -> f64| {
        if runs.is_empty() {
            1.0
        } else {
            (runs.iter().map(|m| f(m).ln()).sum::<f64>() / runs.len() as f64).exp()
        }
    };
    let best = geomean(&Measurement::speedup);
    let cal = geomean(&Measurement::speedup_calendar);
    let wheel = geomean(&Measurement::speedup_wheel);
    out.push_str(&format!(
        "],\"summary\":{{\"max_speedup\":{max:.4},\"geomean_speedup\":{best:.4},\
         \"geomean_calendar\":{cal:.4},\"geomean_wheel\":{wheel:.4}}}}}\n"
    ));
    out
}
