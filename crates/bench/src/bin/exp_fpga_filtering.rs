//! E14 — §5 "Hardware": merging safely by filtering in the fabric.
//!
//! "Applied naively, merging would lead to queueing or packet loss. But
//! when combined with other ideas, such as header compression or data
//! filtering, it should be possible to safely merge feeds while avoiding
//! these issues."
//!
//! Repeats the E10 merge overload through an FPGA-augmented L1 switch
//! whose ingress filters drop the groups the consumer never subscribed
//! to *before* the mux. The consumer wants 1/N of each feed, so the
//! filtered aggregate fits the circuit that the naive merge overran.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_fpga_filtering
//! ```

use std::collections::HashSet;

use tn_fault::{FaultConnect, LinkSpec};
use tn_sim::{Context, Frame, Node, PortId, SimTime, Simulator};
use tn_stats::Summary;
use tn_switch::l1s::{L1Config, L1Switch};
use tn_switch::{FpgaConfig, FpgaL1Switch};
use tn_wire::{eth, ipv4, stack};

struct Rx {
    latencies_ns: Vec<u64>,
}

impl Node for Rx {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
        self.latencies_ns.push((ctx.now() - f.born).as_ns());
    }
}

const SOURCES: usize = 4;
const GROUPS_PER_SOURCE: u32 = 4;
const FRAMES_PER_BURST: usize = 400;
const FRAME_LEN: usize = 600;

fn feed_frame(group: u32) -> Vec<u8> {
    stack::build_udp(
        eth::MacAddr::host(1),
        None,
        ipv4::Addr::host(1),
        ipv4::Addr::multicast_group(group),
        30_001,
        30_001,
        &vec![0u8; FRAME_LEN - stack::UDP_OVERHEAD],
    )
}

/// Inject the correlated burst: each source emits its groups round-robin
/// at its own line rate.
fn burst(sim: &mut Simulator, switch: tn_sim::NodeId) {
    let spacing = SimTime::serialization(FRAME_LEN, 10_000_000_000);
    for s in 0..SOURCES {
        for i in 0..FRAMES_PER_BURST {
            let group = (s as u32) * GROUPS_PER_SOURCE + (i as u32 % GROUPS_PER_SOURCE);
            let bytes = feed_frame(group);
            let mut f = sim.frame().copy_from(&bytes).build();
            f.born = spacing * i as u64;
            let at = f.born;
            sim.inject_frame(at, switch, PortId(s as u16), f);
        }
    }
}

fn run_naive() -> (u64, u64, u64, u64) {
    let mut sim = Simulator::new(4);
    let mut sw = L1Switch::new(L1Config::default());
    let out = PortId(100);
    for s in 0..SOURCES {
        sw.provision_merge(PortId(s as u16), out);
    }
    let sw = sim.add_node("merge", sw);
    let rx = sim.add_node(
        "rx",
        Rx {
            latencies_ns: vec![],
        },
    );
    sim.connect_spec(
        sw,
        out,
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO).with_queue_bytes(65_536),
    );
    burst(&mut sim, sw);
    sim.run();
    summarize(&sim, rx)
}

fn run_filtered() -> (u64, u64, u64, u64) {
    let mut sim = Simulator::new(4);
    let mut sw = FpgaL1Switch::new(FpgaConfig::default());
    let out = PortId(100);
    // The consumer subscribes to one group per source (1/4 of each feed).
    let mut wanted = HashSet::new();
    for s in 0..SOURCES as u32 {
        let g = ipv4::Addr::multicast_group(s * GROUPS_PER_SOURCE);
        wanted.insert(g);
        sw.add_group_member(g, out);
    }
    for s in 0..SOURCES {
        sw.set_ingress_filter(PortId(s as u16), wanted.clone());
    }
    let sw = sim.add_node("fpga", sw);
    let rx = sim.add_node(
        "rx",
        Rx {
            latencies_ns: vec![],
        },
    );
    sim.connect_spec(
        sw,
        out,
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO).with_queue_bytes(65_536),
    );
    burst(&mut sim, sw);
    sim.run();
    summarize(&sim, rx)
}

fn summarize(sim: &Simulator, rx: tn_sim::NodeId) -> (u64, u64, u64, u64) {
    let lat = &sim.node::<Rx>(rx).unwrap().latencies_ns;
    let mut s = Summary::new();
    s.extend(lat.iter().copied());
    (
        s.count() as u64,
        sim.stats().frames_dropped,
        s.median(),
        s.max(),
    )
}

fn main() {
    println!(
        "{SOURCES} feeds x {FRAMES_PER_BURST} frames, consumer wants 1 of \
         {GROUPS_PER_SOURCE} groups per feed, one 10G circuit out\n"
    );
    let wanted_total = (SOURCES * FRAMES_PER_BURST) as u64 / u64::from(GROUPS_PER_SOURCE);
    let (d1, drop1, med1, max1) = run_naive();
    let (d2, drop2, med2, max2) = run_filtered();
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>12}",
        "merge", "delivered", "dropped", "median", "max"
    );
    println!(
        "{:<26} {:>10} {:>10} {:>9} ns {:>9} ns   (delivers everything, incl. 3/4 junk)",
        "naive L1S (56 ns)", d1, drop1, med1, max1
    );
    println!(
        "{:<26} {:>10} {:>10} {:>9} ns {:>9} ns   (wanted: {wanted_total})",
        "FPGA-L1S filter (100 ns)", d2, drop2, med2, max2
    );
    println!();
    println!("the naive merge offers 4x the circuit rate: it loses frames and its queue");
    println!("holds ~52 us. Filtering in the fabric drops the 75% the consumer never");
    println!("wanted *before* the mux, so the merged stream fits — zero loss, flat");
    println!("latency — §5's 'safely merge feeds while avoiding these issues'.");
    assert!(drop1 > 0, "naive merge must overload");
    assert_eq!(drop2, 0, "filtered merge must not drop");
    assert_eq!(d2, wanted_total);
    assert!(med2 < med1 / 10);
}
