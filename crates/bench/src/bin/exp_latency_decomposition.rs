//! E21 — per-hop latency decomposition (§2).
//!
//! "Firms decompose end-to-end latency hop by hop": the measurement
//! practice behind every design argument in the paper. This experiment
//! runs the shared decomposition chain (bursty source → fast hop →
//! optical tap → slow 1G hop → sink) with full telemetry and shows where
//! each delivered frame's time went — processing, queueing,
//! serialization, propagation — reconciled to the picosecond against the
//! kernel's own clock.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_latency_decomposition
//! cargo run --release -p tn-bench --bin exp_latency_decomposition -- --json
//! ```
//!
//! `--json` emits the run as `tn-trace/v1` JSONL (meta, node bindings,
//! one span per provenance segment, arrival events, metric snapshot).

use tn_bench::obssim::{run_decomposition, trace_jsonl, DecompositionConfig};
use tn_sim::ObsConfig;

fn main() {
    let cfg = DecompositionConfig::new(42);
    let run = run_decomposition(&cfg, ObsConfig::full());
    let jsonl = trace_jsonl(&cfg, &run);

    if tn_bench::json_flag() {
        print!("{jsonl}");
        return;
    }

    println!(
        "latency decomposition: {} bursts x {} frames of {} B every {}\n",
        cfg.bursts, cfg.burst_frames, cfg.payload, cfg.interval
    );
    let doc = tn_obs::parse(&jsonl).expect("self-emitted trace parses");
    let summary = tn_obs::summarize(&doc);
    print!("{}", summary.render(&doc, 3));

    println!();
    println!(
        "frames: sent={} delivered={} digest={:016x} events={}",
        run.sent_frames,
        run.deliveries.len(),
        run.digest,
        run.events
    );
    println!(
        "reconciliation: max |provenance total - measured latency| = {} ps over {} frames",
        run.max_residual_ps,
        run.deliveries.len()
    );
    assert_eq!(run.max_residual_ps, 0, "provenance must reconcile exactly");

    // Full telemetry includes the kernel self-profiler: the same run,
    // annotated with what the *kernel* did to deliver it.
    if let Some(p) = &run.profile {
        println!();
        print!("{}", p.render(""));
    }

    println!();
    println!("the slow 1 Gb/s hop dominates: bursts of four frames queue behind each");
    println!("other's serialization, so queue time rises with position in the burst —");
    println!("the \u{a7}2 tap-and-timestamp picture, reproduced from pure simulation.");
}
