//! E18 — the §4 scale target: "a network of roughly 1,000 servers
//! running normalizers, gateways and strategies... a few dozen each for
//! normalizers and gateways and the rest for strategies. We will assume
//! that the average latency of each function is less than 2
//! microseconds."
//!
//! Builds Design 1 at that scale (24 normalizers + 930 strategies + 24
//! gateways = 978 servers, each with two NICs, on an auto-sized
//! leaf-spine with 4 spines) and runs a burst of market activity.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_paper_scale
//! ```

use tn_core::design::{TradingNetworkDesign, TraditionalSwitches};
use tn_core::ScenarioConfig;
use tn_sim::SimTime;

fn main() {
    // audit:allow(det-wallclock): measuring the harness itself; timings are reported, never fed back into the schedule
    let t0 = std::time::Instant::now();
    let sc = ScenarioConfig::paper_scale(3)
        .to_builder()
        .duration(SimTime::from_ms(20))
        // Keep the order rate within the matching engine's service
        // capacity so acks drain within the window (the default threshold
        // floods the single simulated exchange — fine for stress, noisy
        // for latency).
        .momentum_threshold(600)
        .build()
        .expect("valid scenario");
    let servers = sc.normalizers + sc.strategies + sc.gateways;

    let report = TraditionalSwitches::default().run(&sc);
    let wall = t0.elapsed();

    if tn_bench::json_flag() {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "{} servers ({} normalizers, {} strategies, {} gateways), {} feed units,\n\
         {} internal partitions, {} events/s background:\n",
        servers,
        sc.normalizers,
        sc.strategies,
        sc.gateways,
        sc.feed_units,
        sc.internal_partitions,
        sc.background_rate
    );
    println!("{}", report.summary());
    println!();
    println!(
        "simulated {} of trading across ~{} simulation nodes in {:.1?} of wall time",
        sc.duration,
        servers + 130,
        wall
    );
    // The §4 assumption holds: every software function under 2 us average
    // (configured), and the fabric delivers with zero loss at this scale.
    assert!(report.frames_dropped == 0, "no loss at the paper's scale");
    assert!(report.orders_sent > 100, "{}", report.summary());
    assert!(report.feed_latency.median < SimTime::from_us(50));
}
