//! BENCH — the cloud fairness frontier: delivery spread versus the
//! median latency the fairness machinery added, for three fabrics.
//!
//! For each jitter level the same publish-to-8-subscribers scenario runs
//! over an L1 switch (port-skew floor), a leaf-spine tree, and the cloud
//! overlay + delay-equalizer pipeline with a 5 µs hold. Every
//! configuration runs `reps` times and its trace digest is asserted
//! identical across reps before anything is reported — the frontier is a
//! property of the model, not of a lucky run. Results land in
//! `BENCH_cloud.json` (schema `tn-bench/v1`) at the repo root.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin bench_cloud [-- --smoke]
//! ```
//!
//! `--smoke` runs one rep and skips writing the JSON artifact, for CI.

use std::time::Instant;

use tn_bench::row;
use tn_cloud::{run_fairness, DesignKind, FairnessRun, FairnessScenario};
use tn_sim::SimTime;

/// Equalizer hold the cloud points pay (and must charge).
const HOLD: SimTime = SimTime::from_us(5);
/// Equalizer residual pacing error.
const RESIDUAL: SimTime = SimTime::from_ns(20);
/// Overlay relay fan-out.
const FANOUT: u16 = 4;

struct BenchPoint {
    jitter_ns: u64,
    run: FairnessRun,
    wall_ns: u128,
}

fn measure(sc: &FairnessScenario, jitter_ns: u64, design: &DesignKind, reps: u32) -> BenchPoint {
    let mut best = u128::MAX;
    let mut first: Option<FairnessRun> = None;
    for _ in 0..reps {
        // audit:allow(det-wallclock): timing the harness itself; wall time is reported, never fed back into the schedule
        let t0 = Instant::now();
        let run = run_fairness(sc, design);
        best = best.min(t0.elapsed().as_nanos());
        if let Some(prev) = &first {
            assert_eq!(
                (prev.digest, prev.events),
                (run.digest, run.events),
                "{} at jitter {jitter_ns} ns must be rep-deterministic",
                run.design,
            );
        }
        first = Some(run);
    }
    BenchPoint {
        jitter_ns,
        run: first.expect("at least one rep"),
        wall_ns: best,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: u32 = if smoke { 1 } else { 3 };
    let sc = FairnessScenario::small(7);

    let jitters_ns: [u64; 3] = [0, 2_000, 4_000];
    let mut points: Vec<BenchPoint> = Vec::new();
    for &jitter_ns in &jitters_ns {
        let designs = [
            DesignKind::L1Switch,
            DesignKind::LeafSpine,
            DesignKind::Cloud {
                fanout: FANOUT,
                jitter: SimTime::from_ns(jitter_ns),
                hold: HOLD,
                residual: RESIDUAL,
            },
        ];
        for design in &designs {
            points.push(measure(&sc, jitter_ns, design, reps));
        }
    }

    // The frontier claim, asserted before anything is written: wherever
    // the cloud's spread beats the L1 port skew, it paid at least its
    // hold window in added median latency.
    for p in points.iter().filter(|p| p.run.design == "cloud") {
        let l1 = points
            .iter()
            .find(|q| q.run.design == "l1" && q.jitter_ns == p.jitter_ns)
            .expect("every jitter level ran l1");
        if p.run.spread_p99_ps < l1.run.spread_p99_ps {
            assert!(
                p.run.added_median_ps >= p.run.hold_ps,
                "cloud at jitter {} beat L1 spread without paying its hold",
                p.jitter_ns,
            );
        }
    }

    println!(
        "{}",
        row(
            "design",
            &[
                "jitter".into(),
                "spread p50".into(),
                "spread p99".into(),
                "added median".into(),
                "late".into(),
                "wall ms".into(),
            ],
        )
    );
    for p in &points {
        println!(
            "{}",
            row(
                p.run.design,
                &[
                    format!("{} ns", p.jitter_ns),
                    format!("{} ns", p.run.spread_p50_ps / 1_000),
                    format!("{} ns", p.run.spread_p99_ps / 1_000),
                    format!("{} ns", p.run.added_median_ps / 1_000),
                    p.run.late.to_string(),
                    format!("{:.2}", p.wall_ns as f64 / 1e6),
                ],
            )
        );
    }
    println!("\nall digests equal across reps (asserted before reporting)");

    let cloud_best_spread = points
        .iter()
        .filter(|p| p.run.design == "cloud")
        .map(|p| p.run.spread_p99_ps)
        .min()
        .unwrap_or(0);
    let cloud_min_added = points
        .iter()
        .filter(|p| p.run.design == "cloud")
        .map(|p| p.run.added_median_ps)
        .min()
        .unwrap_or(0);
    let l1_spread = points
        .iter()
        .find(|p| p.run.design == "l1")
        .map(|p| p.run.spread_p99_ps)
        .unwrap_or(0);
    let runs: Vec<String> = points
        .iter()
        .map(|p| {
            let r = &p.run;
            format!(
                "{{\"design\":\"{}\",\"jitter_ns\":{},\"hold_ps\":{},\"subscribers\":{},\
                 \"spread_p50_ps\":{},\"spread_p99_ps\":{},\"spread_max_ps\":{},\
                 \"added_median_ps\":{},\"late\":{},\"events\":{},\
                 \"digest\":\"0x{:016x}\",\"wall_ns\":{}}}",
                r.design,
                p.jitter_ns,
                r.hold_ps,
                sc.subscribers,
                r.spread_p50_ps,
                r.spread_p99_ps,
                r.spread_max_ps,
                r.added_median_ps,
                r.late,
                r.events,
                r.digest,
                p.wall_ns,
            )
        })
        .collect();
    let json = format!(
        "{{\"schema\":\"tn-bench/v1\",\"harness\":\"bench_cloud\",\"smoke\":{smoke},\"reps\":{reps},\
         \"runs\":[{}],\
         \"summary\":{{\"l1_spread_p99_ps\":{l1_spread},\"cloud_best_spread_p99_ps\":{cloud_best_spread},\
         \"cloud_min_added_median_ps\":{cloud_min_added},\"hold_ps\":{}}}}}\n",
        runs.join(","),
        HOLD.as_ps(),
    );
    if smoke {
        println!("smoke mode: skipping BENCH_cloud.json (single rep)");
        return;
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cloud.json");
    std::fs::write(out, &json).expect("write BENCH_cloud.json");
    println!("wrote {out}");
}
