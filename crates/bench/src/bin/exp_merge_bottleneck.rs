//! E10 — the L1S merge bottleneck (§4.3).
//!
//! "Recall that market data is bursty, so merged feeds can easily exceed
//! the available bandwidth, leading to latency from queuing or packet
//! loss."
//!
//! N normalizer feeds are merged onto one strategy NIC (a 10 GbE
//! circuit). Each source emits a correlated burst — the §2 observation
//! that bursts across feeds move together. Sweeping N shows the
//! trade-off behind subscription caps: every added feed increases
//! coverage *and* tail latency, until the bounded egress starts dropping.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_merge_bottleneck
//! ```

use tn_fault::{FaultConnect, LinkSpec};
use tn_sim::{Context, Frame, Node, PortId, SimTime, Simulator};
use tn_stats::Summary;
use tn_switch::l1s::{L1Config, L1Switch};

struct Rx {
    latencies_ns: Vec<u64>,
}

impl Node for Rx {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
        self.latencies_ns.push((ctx.now() - f.born).as_ns());
    }
}

/// Merge `sources` bursting feeds onto one 10G egress with a bounded
/// queue; returns (delivered, dropped, median ns, p99 ns, max ns).
fn run(sources: usize, frames_per_burst: usize, frame_len: usize) -> (u64, u64, u64, u64, u64) {
    let mut sim = Simulator::new(2);
    let mut sw = L1Switch::new(L1Config::default());
    let out = PortId(100);
    for s in 0..sources {
        sw.provision_merge(PortId(s as u16), out);
    }
    let sw = sim.add_node("merge", sw);
    let rx = sim.add_node(
        "rx",
        Rx {
            latencies_ns: vec![],
        },
    );
    // The strategy's single NIC circuit: 10G with a 64 kB egress buffer —
    // a generous L1S mux FIFO.
    sim.connect_spec(
        sw,
        out,
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO).with_queue_bytes(65_536),
    );

    // Correlated burst: all sources fire at the same instant, each frame
    // spaced at its own line rate (they arrive on independent 10G links).
    let spacing = SimTime::serialization(frame_len, 10_000_000_000);
    for s in 0..sources {
        for i in 0..frames_per_burst {
            let mut f = sim.frame().zeroed(frame_len).build();
            f.born = spacing * i as u64; // stamp the true emission time
            sim.inject_frame(f.born, sw, PortId(s as u16), f);
        }
    }
    sim.run();
    let delivered = sim.node::<Rx>(rx).unwrap().latencies_ns.clone();
    let dropped = sim.stats().frames_dropped;
    let mut s = Summary::new();
    s.extend(delivered.iter().copied());
    (s.count() as u64, dropped, s.median(), s.p99(), s.max())
}

fn main() {
    let frames_per_burst = 400;
    let frame_len = 600;
    println!(
        "merge onto one 10G NIC circuit; correlated bursts of {frames_per_burst} x \
         {frame_len} B frames per source; 64 kB mux FIFO\n"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "feeds", "offered", "delivered", "dropped", "median", "p99", "max"
    );
    for sources in [1usize, 2, 3, 4, 6, 8] {
        let (delivered, dropped, med, p99, max) = run(sources, frames_per_burst, frame_len);
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>9} ns {:>9} ns {:>9} ns",
            sources,
            sources * frames_per_burst,
            delivered,
            dropped,
            med,
            p99,
            max
        );
    }
    println!();
    println!("one feed fits (56 ns flat). Every feed beyond the first offers another");
    println!("10 Gbps into a 10 Gbps circuit: queueing grows linearly through the burst");
    println!("until the FIFO bound, then the §4.3 failure mode — loss. This is why L1");
    println!("designs cap subscriptions, and why §5 wants filtering in the merge.");
}
