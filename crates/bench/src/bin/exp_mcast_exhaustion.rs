//! E7 — mroute-table exhaustion (§3 "Multicast Trends").
//!
//! Sweeps the number of multicast groups a trading plant asks of a
//! commodity switch past its hardware table capacity, measuring delivery
//! rate and latency per group class. Also prints the §3 trend: market
//! data grew ~500% over five years while switch multicast capacity grew
//! ~80% — partitioning demand (600 → 1300 partitions for one strategy)
//! is on a collision course with the table.
//!
//! The demand axis is expressed as a `tn-lab` sweep spec and executed by
//! the lab's batch runner through a custom [`RunExecutor`] — the
//! proof-of-reuse example for lab-backed experiments. Pass `--threads N`
//! to fan the sweep out across cores; the results are identical for any
//! thread count.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_mcast_exhaustion [-- --threads 4]
//! ```

use tn_fault::{FaultConnect, LinkSpec};
use tn_lab::{run_batch, Axis, AxisValues, RunExecutor, RunOutcome, RunPlan, SweepSpec};
use tn_sim::{Context, Frame, Node, PortId, SimTime, Simulator};
use tn_stats::Summary;
use tn_switch::{switch_generations, CommoditySwitch, SwitchConfig};
use tn_wire::{eth, igmp, ipv4, stack};

struct Receiver {
    arrivals: Vec<(u32, SimTime)>,
}

impl Node for Receiver {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
        if let Ok(v) = stack::parse_udp(&f.bytes) {
            if let Some(idx) = v.dst_ip.multicast_index() {
                self.arrivals.push((idx, ctx.now()));
            }
        }
    }
}

/// Everything one sweep cell measures.
struct SweepResult {
    hw_rate: f64,
    sw_rate: f64,
    hw_med_ns: u64,
    sw_med_ns: u64,
    /// All per-packet latencies (ps), for the lab's pooled cell stats.
    latencies_ps: Vec<u64>,
    /// Kernel trace digest + event count, for the divergence registry.
    digest: u64,
    events: u64,
}

/// Blast `packets_per_group` packets across `groups` groups on a switch
/// with `table` hardware entries.
fn run_sweep(groups: usize, table: usize, packets_per_group: usize) -> SweepResult {
    let cfg = SwitchConfig {
        mcast_table_size: table,
        sw_service: SimTime::from_us(25),
        sw_queue: 64,
        ..SwitchConfig::default()
    };
    let mut sim = Simulator::new(1);
    let sw = sim.add_node("sw", CommoditySwitch::new(cfg));
    let rx = sim.add_node("rx", Receiver { arrivals: vec![] });
    sim.connect_spec(
        sw,
        PortId(1),
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO),
    );
    for g in 0..groups as u32 {
        let join = tn_switch::commodity::igmp_frame(
            igmp::MessageType::Report,
            eth::MacAddr::host(2),
            ipv4::Addr::host(2),
            ipv4::Addr::multicast_group(g),
        );
        let f = sim.frame().copy_from(&join).build();
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
    }
    sim.run();
    // Interleave packets across groups in bursts, 1 us apart, so the
    // software queue sees sustained load rather than one megaburst.
    let mut send_times = Vec::new();
    for round in 0..packets_per_group {
        let t0 = sim.now() + SimTime::from_us(1 + round as u64 * 100);
        for g in 0..groups as u32 {
            let frame = stack::build_udp(
                eth::MacAddr::host(1),
                None,
                ipv4::Addr::host(1),
                ipv4::Addr::multicast_group(g),
                30_001,
                30_001,
                &[0u8; 100],
            );
            let f = sim.frame().copy_from(&frame).build();
            sim.inject_frame(t0, sw, PortId(0), f);
            send_times.push((g, t0));
        }
    }
    sim.run();
    let arrivals = &sim.node::<Receiver>(rx).unwrap().arrivals;
    let mut hw_lat = Summary::new();
    let mut sw_lat = Summary::new();
    let mut latencies_ps = Vec::with_capacity(arrivals.len());
    // Latency by matching per (group, round) send times in order.
    let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &(g, t) in arrivals {
        let k = seen.entry(g).or_insert(0);
        let send = send_times
            .iter()
            .filter(|(sg, _)| *sg == g)
            .nth(*k)
            .map(|&(_, st)| st)
            .unwrap_or(SimTime::ZERO);
        *k += 1;
        let lat = t - send;
        latencies_ps.push(lat.as_ps());
        if (g as usize) < table {
            hw_lat.record(lat.as_ns());
        } else {
            sw_lat.record(lat.as_ns());
        }
    }
    let hw_expected = table.min(groups) * packets_per_group;
    let sw_expected = groups.saturating_sub(table) * packets_per_group;
    let hw_rate = if hw_expected > 0 {
        hw_lat.count() as f64 / hw_expected as f64
    } else {
        1.0
    };
    let sw_rate = if sw_expected > 0 {
        sw_lat.count() as f64 / sw_expected as f64
    } else {
        1.0
    };
    SweepResult {
        hw_rate: 100.0 * hw_rate,
        sw_rate: 100.0 * sw_rate,
        hw_med_ns: hw_lat.median(),
        sw_med_ns: sw_lat.median(),
        latencies_ps,
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
    }
}

/// The demand axis as a declarative sweep spec. The `groups` axis is a
/// free-form parameter interpreted by [`McastExecutor`], not a
/// `ScenarioConfig` field — the lab's manifest/runner/aggregation layers
/// don't care which executor resolves a cell.
pub fn e7_spec() -> SweepSpec {
    SweepSpec {
        name: "mcast-exhaustion".into(),
        base: "small".into(),
        designs: vec!["commodity-switch".into()],
        overrides: vec![("table".into(), 512.0), ("packets_per_group".into(), 20.0)],
        axes: vec![Axis {
            param: "groups".into(),
            values: AxisValues::List(vec![256.0, 512.0, 576.0, 640.0, 768.0, 1024.0]),
        }],
        seeds: vec![1],
    }
}

/// Lab executor that resolves a cell of [`e7_spec`] with [`run_sweep`].
pub struct McastExecutor;

impl RunExecutor for McastExecutor {
    fn execute(&self, plan: &RunPlan) -> Result<RunOutcome, String> {
        let param = |name: &str| {
            plan.params
                .iter()
                .find(|(p, _)| p == name)
                .map(|&(_, v)| v)
                .ok_or(format!("missing param `{name}`"))
        };
        let groups = param("groups")? as usize;
        let table = param("table")? as usize;
        let packets = param("packets_per_group")? as usize;
        let r = run_sweep(groups, table, packets);
        Ok(RunOutcome {
            digest: r.digest,
            events: r.events,
            samples_ps: r.latencies_ps,
            metrics: vec![
                ("hw_delivery_pct".into(), r.hw_rate),
                ("sw_delivery_pct".into(), r.sw_rate),
                ("hw_median_ns".into(), r.hw_med_ns as f64),
                ("sw_median_ns".into(), r.sw_med_ns as f64),
            ],
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|t| t.parse::<usize>().ok())
        .unwrap_or(1);

    let spec = e7_spec();
    let manifest = spec.expand().expect("static spec expands");
    let outcomes = run_batch(&manifest, threads, &McastExecutor).expect("sweep runs");

    let table = 512usize;
    println!("mroute table capacity: {table} groups; sweeping demanded groups");
    println!("(lab-backed: spec `{}`, {threads} thread(s))\n", spec.name);
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "groups", "overflow", "hw del %", "sw del %", "hw median", "sw median"
    );
    for (plan, out) in manifest.iter().zip(&outcomes) {
        let metric = |name: &str| {
            out.metrics
                .iter()
                .find(|(m, _)| m == name)
                .map_or(0.0, |&(_, v)| v)
        };
        let groups = plan
            .params
            .iter()
            .find(|(p, _)| p == "groups")
            .map_or(0.0, |&(_, v)| v) as usize;
        println!(
            "{:>8} {:>10} {:>11.1}% {:>11.1}% {:>11} ns {:>11} ns",
            groups,
            groups.saturating_sub(table),
            metric("hw_delivery_pct"),
            metric("sw_delivery_pct"),
            metric("hw_median_ns") as u64,
            metric("sw_median_ns") as u64,
        );
    }
    println!();
    println!("the cliff: once demand passes the table, overflow groups run ~50x slower");
    println!("and drop most of their traffic — §3's 'cripples performance and induces");
    println!("heavy packet loss'.\n");

    // The §3 trend collision.
    let gens = switch_generations();
    let first = gens.first().unwrap();
    let last = gens.last().unwrap();
    println!(
        "trend: market data +500% in 5 years (Fig 2a) vs multicast groups +{:.0}%\n\
         over a decade of switch generations ({} -> {}); one strategy's partition\n\
         count alone grew 600 -> 1300 in two years (§3).",
        100.0 * (last.mcast_groups as f64 / first.mcast_groups as f64 - 1.0),
        first.mcast_groups,
        last.mcast_groups,
    );
}
