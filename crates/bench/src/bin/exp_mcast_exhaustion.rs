//! E7 — mroute-table exhaustion (§3 "Multicast Trends").
//!
//! Sweeps the number of multicast groups a trading plant asks of a
//! commodity switch past its hardware table capacity, measuring delivery
//! rate and latency per group class. Also prints the §3 trend: market
//! data grew ~500% over five years while switch multicast capacity grew
//! ~80% — partitioning demand (600 → 1300 partitions for one strategy)
//! is on a collision course with the table.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_mcast_exhaustion
//! ```

use tn_fault::{FaultConnect, LinkSpec};
use tn_sim::{Context, Frame, Node, PortId, SimTime, Simulator};
use tn_stats::Summary;
use tn_switch::{switch_generations, CommoditySwitch, SwitchConfig};
use tn_wire::{eth, igmp, ipv4, stack};

struct Receiver {
    arrivals: Vec<(u32, SimTime)>,
}

impl Node for Receiver {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
        if let Ok(v) = stack::parse_udp(&f.bytes) {
            if let Some(idx) = v.dst_ip.multicast_index() {
                self.arrivals.push((idx, ctx.now()));
            }
        }
    }
}

/// Blast `packets_per_group` packets across `groups` groups on a switch
/// with `table` hardware entries; return (hw delivery %, sw delivery %,
/// hw median ns, sw median ns).
fn run_sweep(groups: usize, table: usize, packets_per_group: usize) -> (f64, f64, u64, u64) {
    let cfg = SwitchConfig {
        mcast_table_size: table,
        sw_service: SimTime::from_us(25),
        sw_queue: 64,
        ..SwitchConfig::default()
    };
    let mut sim = Simulator::new(1);
    let sw = sim.add_node("sw", CommoditySwitch::new(cfg));
    let rx = sim.add_node("rx", Receiver { arrivals: vec![] });
    sim.connect_spec(
        sw,
        PortId(1),
        rx,
        PortId(0),
        &LinkSpec::ten_gig(SimTime::ZERO),
    );
    for g in 0..groups as u32 {
        let join = tn_switch::commodity::igmp_frame(
            igmp::MessageType::Report,
            eth::MacAddr::host(2),
            ipv4::Addr::host(2),
            ipv4::Addr::multicast_group(g),
        );
        let f = sim.new_frame(join);
        sim.inject_frame(SimTime::ZERO, sw, PortId(1), f);
    }
    sim.run();
    // Interleave packets across groups in bursts, 1 us apart, so the
    // software queue sees sustained load rather than one megaburst.
    let mut send_times = Vec::new();
    for round in 0..packets_per_group {
        let t0 = sim.now() + SimTime::from_us(1 + round as u64 * 100);
        for g in 0..groups as u32 {
            let frame = stack::build_udp(
                eth::MacAddr::host(1),
                None,
                ipv4::Addr::host(1),
                ipv4::Addr::multicast_group(g),
                30_001,
                30_001,
                &[0u8; 100],
            );
            let f = sim.new_frame(frame);
            sim.inject_frame(t0, sw, PortId(0), f);
            send_times.push((g, t0));
        }
    }
    sim.run();
    let arrivals = &sim.node::<Receiver>(rx).unwrap().arrivals;
    let mut hw_lat = Summary::new();
    let mut sw_lat = Summary::new();
    // Latency by matching per (group, round) send times in order.
    let mut seen: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &(g, t) in arrivals {
        let k = seen.entry(g).or_insert(0);
        let send = send_times
            .iter()
            .filter(|(sg, _)| *sg == g)
            .nth(*k)
            .map(|&(_, st)| st)
            .unwrap_or(SimTime::ZERO);
        *k += 1;
        let lat = (t - send).as_ns();
        if (g as usize) < table {
            hw_lat.record(lat);
        } else {
            sw_lat.record(lat);
        }
    }
    let hw_expected = table.min(groups) * packets_per_group;
    let sw_expected = groups.saturating_sub(table) * packets_per_group;
    let hw_rate = if hw_expected > 0 {
        hw_lat.count() as f64 / hw_expected as f64
    } else {
        1.0
    };
    let sw_rate = if sw_expected > 0 {
        sw_lat.count() as f64 / sw_expected as f64
    } else {
        1.0
    };
    (
        100.0 * hw_rate,
        100.0 * sw_rate,
        hw_lat.median(),
        sw_lat.median(),
    )
}

fn main() {
    let table = 512; // scaled-down hardware table for a fast sweep
    println!("mroute table capacity: {table} groups; sweeping demanded groups\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "groups", "overflow", "hw del %", "sw del %", "hw median", "sw median"
    );
    for groups in [256usize, 512, 576, 640, 768, 1024] {
        let (hw_rate, sw_rate, hw_med, sw_med) = run_sweep(groups, table, 20);
        println!(
            "{:>8} {:>10} {:>11.1}% {:>11.1}% {:>11} ns {:>11} ns",
            groups,
            groups.saturating_sub(table),
            hw_rate,
            sw_rate,
            hw_med,
            sw_med
        );
    }
    println!();
    println!("the cliff: once demand passes the table, overflow groups run ~50x slower");
    println!("and drop most of their traffic — §3's 'cripples performance and induces");
    println!("heavy packet loss'.\n");

    // The §3 trend collision.
    let gens = switch_generations();
    let first = gens.first().unwrap();
    let last = gens.last().unwrap();
    println!(
        "trend: market data +500% in 5 years (Fig 2a) vs multicast groups +{:.0}%\n\
         over a decade of switch generations ({} -> {}); one strategy's partition\n\
         count alone grew 600 -> 1300 in two years (§3).",
        100.0 * (last.mcast_groups as f64 / first.mcast_groups as f64 - 1.0),
        first.mcast_groups,
        last.mcast_groups,
    );
}
