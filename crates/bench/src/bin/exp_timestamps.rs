//! E16 — timestamp precision (§2: "Some trading firms desire precision
//! below 100 picoseconds").
//!
//! Why sub-100 ps? Because research needs the *ordering* of market-data
//! events, and at the Fig 2(c) peak (1066 events / 100 µs ≈ 94 ns mean
//! spacing) even tens of nanoseconds of clock error scrambles event
//! order across capture points. This experiment sweeps clock-sync
//! quality and measures how many event pairs two drifting capture
//! appliances would mis-order.
//!
//! ```sh
//! cargo run --release -p tn-bench --bin exp_timestamps
//! ```

use tn_market::MicroburstModel;
use tn_netdev::clock::DriftClock;
use tn_sim::SimTime;

fn misordered_pairs(events_ps: &[u64], residual_ps: i64, drift_ppb: i64) -> (u64, u64) {
    // Two capture appliances see the same stream; A is the reference, B
    // drifts and re-syncs once at t=0 with the given residual. The worst
    // case for ordering is B running *behind* A, so later events read
    // earlier — model the residual and drift as negative (slow) errors.
    let mut b = DriftClock::new(-drift_ppb, 0);
    b.sync(SimTime::ZERO, -residual_ps);
    let mut misordered = 0u64;
    let mut pairs = 0u64;
    for w in events_ps.windows(2) {
        let (t1, t2) = (w[0], w[1]);
        if t1 == t2 {
            continue;
        }
        pairs += 1;
        // A timestamps t1 perfectly; B timestamps t2 with its error.
        let b_t2 = b.read(SimTime::from_ps(t2));
        if b_t2 <= t1 as i64 {
            // B's reading of the later event sorts before A's earlier one.
            misordered += 1;
        }
    }
    (misordered, pairs)
}

fn main() {
    // Event times inside the Fig 2(c) busiest second.
    let model = MicroburstModel::default();
    let events = model.event_times_ps(6);
    let mean_gap_ns = 1e9 / events.len() as f64;
    println!(
        "{} events in the busiest second (mean spacing {:.0} ns); cross-appliance\n\
         ordering vs clock quality:\n",
        events.len(),
        mean_gap_ns
    );
    println!(
        "{:>22} {:>16} {:>16}",
        "sync residual", "misordered pairs", "rate"
    );
    for residual_ns in [10_000i64, 1_000, 100, 10, 1, 0] {
        let residual_ps = residual_ns * 1_000;
        let (bad, pairs) = misordered_pairs(&events, residual_ps, 0);
        println!(
            "{:>18} ns {:>16} {:>15.3}%",
            residual_ns,
            bad,
            100.0 * bad as f64 / pairs as f64
        );
    }
    // Sub-nanosecond: the regime the paper's 100 ps target lives in.
    for residual_ps in [500i64, 100, 50] {
        let (bad, pairs) = misordered_pairs(&events, residual_ps, 0);
        println!(
            "{:>18} ps {:>16} {:>15.3}%",
            residual_ps,
            bad,
            100.0 * bad as f64 / pairs as f64
        );
    }
    println!();
    // Drift between syncs: a 10 ppb oscillator accumulates 10 ns/s.
    let (bad, pairs) = misordered_pairs(&events, 0, 10);
    println!(
        "perfect sync but 10 ppb drift, 1 s since sync: {bad}/{pairs} pairs misordered \
         by second's end"
    );
    println!();
    println!("at microsecond-class sync (NTP), ordering is meaningless during bursts;");
    println!("at 100 ns (good PTP) ~18% of adjacent pairs still flip; at 100 ps fewer");
    println!("than 0.02% do — only events essentially simultaneous on the wire remain");
    println!("ambiguous. Hence §2's 'precision below 100 picoseconds'.");
    let (bad_100ps, pairs) = misordered_pairs(&events, 100, 0);
    let rate_100ps = bad_100ps as f64 / pairs as f64;
    assert!(
        rate_100ps < 0.0005,
        "100 ps should flip <0.05%: {rate_100ps}"
    );
    let (bad_100ns, _) = misordered_pairs(&events, 100_000, 0);
    assert!(
        bad_100ns as f64 / pairs as f64 > 0.05,
        "100 ns must flip a visible fraction"
    );
    let (bad_10us, _) = misordered_pairs(&events, 10_000_000, 0);
    assert!(bad_10us > 0, "10 us sync must scramble ordering");
}
