//! Shared fault-injection scenarios.
//!
//! The two degraded-mode experiments (`exp_loss_recovery`,
//! `exp_ab_failover`) and tn-audit's fault divergence scenarios run
//! *exactly* this code — one implementation, so the digests the audit
//! pins are the digests the experiments print.
//!
//! Both scenarios follow the paper's reliability story: the fabric is
//! allowed to drop (microwave fade, flapping ports, maintenance), and
//! the *edge* — A/B arbitration, gap requests, retransmission units —
//! papers over it.

use tn_fault::{FaultConnect, FaultSpec, LinkSpec};
use tn_feed::arb::FeedSide;
use tn_feed::nodes::{
    RecoveryReceiver, RecoveryReceiverConfig, RetransUnit, RetransUnitConfig, RECV_FEED,
    RECV_RETRANS, UNIT_REQ, UNIT_TAP,
};
use tn_feed::retrans::RecoveryConfig;
use tn_feed::Arbiter;
use tn_sim::{
    Context, Frame, KernelProfile, Node, ObsConfig, PortId, SchedulerKind, SimTime, Simulator,
    TimerToken,
};
use tn_wire::{eth, ipv4, pitch, stack};

// ---------------------------------------------------------------------
// Building blocks
// ---------------------------------------------------------------------

const TICK: TimerToken = TimerToken(1);

/// Timer-driven sequenced-unit publisher: every `interval` it emits one
/// PITCH packet of `msgs_per_packet` messages, identically on each of
/// its first `copies` ports (A/B copies, feed + retrans-server tap).
pub struct PitchSource {
    interval: SimTime,
    packets: u64,
    msgs_per_packet: u32,
    copies: u16,
    sent_packets: u64,
    next_seq: u32,
    payload_scratch: Vec<u8>,
    wire_scratch: Vec<u8>,
}

impl PitchSource {
    /// Publisher of `packets` packets at `interval`, `copies` ports wide.
    pub fn new(interval: SimTime, packets: u64, msgs_per_packet: u32, copies: u16) -> PitchSource {
        PitchSource {
            interval,
            packets,
            msgs_per_packet,
            copies,
            sent_packets: 0,
            next_seq: 1,
            payload_scratch: Vec::new(),
            wire_scratch: Vec::new(),
        }
    }

    /// Messages published so far.
    pub fn published_messages(&self) -> u64 {
        self.sent_packets * u64::from(self.msgs_per_packet)
    }
}

impl Node for PitchSource {
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        if self.sent_packets >= self.packets {
            return;
        }
        self.payload_scratch.clear();
        let mut pb = pitch::PacketBuilder::new(0, self.next_seq, 1_400);
        for i in 0..self.msgs_per_packet {
            pb.push_into(
                &pitch::Message::DeleteOrder {
                    offset_ns: i,
                    order_id: u64::from(self.next_seq.wrapping_add(i)),
                },
                &mut self.payload_scratch,
            );
        }
        if !pb.flush_into(&mut self.payload_scratch) && self.payload_scratch.is_empty() {
            return; // msgs_per_packet == 0: nothing to publish
        }
        self.next_seq = self.next_seq.wrapping_add(self.msgs_per_packet);
        self.wire_scratch.clear();
        stack::emit_udp_into(
            eth::MacAddr::host(0x0A00),
            None,
            ipv4::Addr::new(10, 200, 1, 1),
            ipv4::Addr::multicast_group(0),
            32_000,
            32_000,
            &self.payload_scratch,
            &mut self.wire_scratch,
        );
        for p in 0..self.copies {
            // Pooled copy: each port's frame reuses a recycled arena
            // buffer instead of allocating per packet on the hot path.
            let frame = ctx.frame().copy_from(&self.wire_scratch).build();
            ctx.send(PortId(p), frame);
        }
        self.sent_packets += 1;
        if self.sent_packets < self.packets {
            ctx.set_timer(self.interval, TICK);
        }
    }
}

/// A-side input of [`AbReceiver`].
pub const AB_A: PortId = PortId(0);
/// B-side input of [`AbReceiver`].
pub const AB_B: PortId = PortId(1);

/// A/B-arbitrating receiver: first copy wins, duplicates absorbed, gaps
/// (both sides lost) skipped forward — [`Arbiter`] as a node, with a
/// release timeline for degraded-window throughput.
pub struct AbReceiver {
    arb: Arbiter,
    delivered: u64,
    deliveries: Vec<(SimTime, u32)>,
    parse_errors: u64,
}

impl AbReceiver {
    /// Fresh receiver.
    pub fn new() -> AbReceiver {
        AbReceiver {
            arb: Arbiter::new(),
            delivered: 0,
            deliveries: Vec::new(),
            parse_errors: 0,
        }
    }

    /// The arbiter (per-side win shares, gap counts).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arb
    }

    /// Messages released in order.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Release timeline `(when, messages)`.
    pub fn deliveries(&self) -> &[(SimTime, u32)] {
        &self.deliveries
    }
}

impl Default for AbReceiver {
    fn default() -> AbReceiver {
        AbReceiver::new()
    }
}

impl Node for AbReceiver {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        let Ok(view) = stack::parse_udp(&frame.bytes) else {
            self.parse_errors += 1;
            return;
        };
        let side = if port == AB_A {
            FeedSide::A
        } else {
            FeedSide::B
        };
        match self.arb.offer_from(side, view.payload) {
            Ok(Some(msgs)) => {
                self.delivered += msgs.len() as u64;
                self.deliveries.push((ctx.now(), msgs.len() as u32));
            }
            Ok(None) => {}
            Err(_) => self.parse_errors += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 1: loss → gap request → retransmission
// ---------------------------------------------------------------------

/// Workload + fault for the loss-recovery scenario.
#[derive(Debug, Clone)]
pub struct LossRecoveryConfig {
    /// Kernel seed.
    pub seed: u64,
    /// Fault injected on the multicast feed link.
    pub fault: FaultSpec,
    /// Packets to publish.
    pub packets: u64,
    /// Messages per packet.
    pub msgs_per_packet: u32,
    /// Publish interval.
    pub interval: SimTime,
    /// Receiver retry policy.
    pub recovery: RecoveryConfig,
    /// Event scheduler the kernel runs on (digest-neutral).
    pub scheduler: SchedulerKind,
    /// Observability switches (digest-neutral; off by default).
    pub obs: ObsConfig,
}

impl LossRecoveryConfig {
    /// Default workload (4,000 packets / 16,000 messages over 20 ms)
    /// with `fault` on the feed link.
    pub fn new(seed: u64, fault: FaultSpec) -> LossRecoveryConfig {
        LossRecoveryConfig {
            seed,
            fault,
            packets: 4_000,
            msgs_per_packet: 4,
            interval: SimTime::from_us(5),
            recovery: RecoveryConfig {
                timeout: SimTime::from_us(50),
                backoff: 2,
                max_retries: 3,
                max_held: 10_000,
            },
            scheduler: SchedulerKind::BinaryHeap,
            obs: ObsConfig::off(),
        }
    }
}

/// What one loss-recovery run produced.
#[derive(Debug, Clone)]
pub struct LossRecoveryRun {
    /// Messages published.
    pub published_messages: u64,
    /// Messages released in order at the receiver.
    pub delivered_messages: u64,
    /// Distinct gaps detected (first requests).
    pub gaps_seen: u64,
    /// Requests sent, including timed-out re-requests.
    pub retrans_requests: u64,
    /// Messages recovered by retransmission fills.
    pub recovered_messages: u64,
    /// Sequence numbers abandoned as unrecoverable.
    pub abandoned: u64,
    /// Gap-fill latencies (request → in-order release), picoseconds.
    pub fill_latency_ps: Vec<u64>,
    /// Replays the server refused (aged out / throttled).
    pub refused: u64,
    /// Measured wall of the run.
    pub duration: SimTime,
    /// Kernel self-profile (when the profiler was on).
    pub profile: Option<KernelProfile>,
    /// Kernel trace digest.
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
}

impl LossRecoveryRun {
    /// Delivered fraction of the published stream.
    pub fn delivery_rate(&self) -> f64 {
        if self.published_messages == 0 {
            return 1.0;
        }
        self.delivered_messages as f64 / self.published_messages as f64
    }
}

/// Run the loss-recovery scenario: publisher → faulty feed link →
/// reordering receiver, with a clean tap into a retransmission unit and
/// a clean unicast recovery channel.
pub fn run_loss_recovery(cfg: &LossRecoveryConfig) -> LossRecoveryRun {
    let mut sim = Simulator::with_scheduler(cfg.seed, cfg.scheduler);
    apply_obs(&mut sim, &cfg.obs);
    let src = sim.add_node(
        "src",
        PitchSource::new(cfg.interval, cfg.packets, cfg.msgs_per_packet, 2),
    );
    let mut rx_cfg = RecoveryReceiverConfig::new(0);
    rx_cfg.recovery = cfg.recovery;
    let rx = sim.add_node("rx", RecoveryReceiver::new(rx_cfg));
    let unit = sim.add_node("unit", RetransUnit::new(RetransUnitConfig::default()));

    let prop = SimTime::from_ns(500);
    // Feed path carries the fault; tap and recovery channel stay clean.
    let feed = LinkSpec::ten_gig(prop).with_fault(cfg.fault.clone());
    sim.connect_directed_spec(src, PortId(0), rx, RECV_FEED, &feed);
    sim.connect_directed_spec(src, PortId(1), unit, UNIT_TAP, &LinkSpec::ten_gig(prop));
    sim.connect_spec(rx, RECV_RETRANS, unit, UNIT_REQ, &LinkSpec::ten_gig(prop));

    sim.schedule_timer(SimTime::from_us(10), src, TICK);
    // Publish window plus a tail for the last retries to resolve.
    let duration = cfg.interval * cfg.packets + SimTime::from_ms(5);
    sim.run_until(duration);

    let published = sim
        .node::<PitchSource>(src)
        .expect("src")
        .published_messages();
    let rx_node = sim.node::<RecoveryReceiver>(rx).expect("rx");
    let reorder = rx_node.client().reorderer().stats();
    let unit_node = sim.node::<RetransUnit>(unit).expect("unit");
    LossRecoveryRun {
        published_messages: published,
        delivered_messages: rx_node.stats().delivered_messages,
        gaps_seen: reorder.requests,
        retrans_requests: rx_node.stats().requests_sent,
        recovered_messages: reorder.recovered_messages,
        abandoned: reorder.abandoned,
        fill_latency_ps: rx_node.client().fill_latencies_ps().to_vec(),
        refused: unit_node.stats().refused,
        duration,
        profile: sim.profile(),
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
    }
}

/// Turn on the digest-neutral kernel observability a config asks for.
fn apply_obs(sim: &mut Simulator, obs: &ObsConfig) {
    if obs.flight {
        sim.set_flight_capacity(obs.flight_capacity as usize);
    }
    if obs.profile {
        sim.set_profile(true);
    }
}

// ---------------------------------------------------------------------
// Scenario 2: A/B failover through an outage
// ---------------------------------------------------------------------

/// Workload + faults for the A/B-failover scenario.
#[derive(Debug, Clone)]
pub struct AbFailoverConfig {
    /// Kernel seed.
    pub seed: u64,
    /// Fault on the A feed (the primary; normally wins every race).
    pub a_fault: FaultSpec,
    /// Fault on the B feed (`None` keeps it clean).
    pub b_fault: Option<FaultSpec>,
    /// Extra one-way propagation on B — the detour path that only wins
    /// when A is degraded.
    pub b_extra_delay: SimTime,
    /// Packets to publish.
    pub packets: u64,
    /// Messages per packet.
    pub msgs_per_packet: u32,
    /// Publish interval.
    pub interval: SimTime,
    /// Degraded window to measure throughput over (usually the A-side
    /// outage), as `(start, end)`.
    pub window: (SimTime, SimTime),
    /// Event scheduler the kernel runs on (digest-neutral).
    pub scheduler: SchedulerKind,
    /// Observability switches (digest-neutral; off by default).
    pub obs: ObsConfig,
}

impl AbFailoverConfig {
    /// Default workload: 6,000 packets over 30 ms; A suffers a hard
    /// outage for `window`; B is clean but 2 µs longer.
    pub fn new(seed: u64) -> AbFailoverConfig {
        let window = (SimTime::from_ms(10), SimTime::from_ms(20));
        AbFailoverConfig {
            seed,
            a_fault: FaultSpec::new(seed ^ 0xA).with_outage(window.0, window.1),
            b_fault: None,
            b_extra_delay: SimTime::from_us(2),
            packets: 6_000,
            msgs_per_packet: 4,
            interval: SimTime::from_us(5),
            window,
            scheduler: SchedulerKind::BinaryHeap,
            obs: ObsConfig::off(),
        }
    }
}

/// What one A/B-failover run produced.
#[derive(Debug, Clone)]
pub struct AbFailoverRun {
    /// Messages published (per side; the stream is one copy).
    pub published_messages: u64,
    /// Messages released in order.
    pub delivered_messages: u64,
    /// Distinct gap events (lost on both sides).
    pub gap_events: u64,
    /// Sequence numbers lost on both sides.
    pub gap_messages: u64,
    /// Duplicate copies absorbed.
    pub duplicates: u64,
    /// A-side (offered, won).
    pub side_a: (u64, u64),
    /// B-side (offered, won).
    pub side_b: (u64, u64),
    /// Messages delivered inside the degraded window.
    pub window_delivered: u64,
    /// Delivered messages/second inside the degraded window.
    pub window_throughput: f64,
    /// Delivered messages/second outside it.
    pub clean_throughput: f64,
    /// Kernel self-profile (when the profiler was on).
    pub profile: Option<KernelProfile>,
    /// Kernel trace digest.
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
}

/// Run the A/B-failover scenario: one publisher, two copies over
/// independently faulted links, arbitration at the receiver.
pub fn run_ab_failover(cfg: &AbFailoverConfig) -> AbFailoverRun {
    let mut sim = Simulator::with_scheduler(cfg.seed, cfg.scheduler);
    apply_obs(&mut sim, &cfg.obs);
    let src = sim.add_node(
        "src",
        PitchSource::new(cfg.interval, cfg.packets, cfg.msgs_per_packet, 2),
    );
    let rx = sim.add_node("rx", AbReceiver::new());

    let prop = SimTime::from_ns(500);
    let a_spec = LinkSpec::ten_gig(prop).with_fault(cfg.a_fault.clone());
    let mut b_spec = LinkSpec::ten_gig(prop + cfg.b_extra_delay);
    if let Some(f) = &cfg.b_fault {
        b_spec = b_spec.with_fault(f.clone());
    }
    sim.connect_directed_spec(src, PortId(0), rx, AB_A, &a_spec);
    sim.connect_directed_spec(src, PortId(1), rx, AB_B, &b_spec);

    sim.schedule_timer(SimTime::from_us(10), src, TICK);
    let duration = cfg.interval * cfg.packets + SimTime::from_ms(1);
    sim.run_until(duration);

    let published = sim
        .node::<PitchSource>(src)
        .expect("src")
        .published_messages();
    let rx_node = sim.node::<AbReceiver>(rx).expect("rx");
    let arb = rx_node.arbiter().stats();
    let (w0, w1) = cfg.window;
    let window_delivered: u64 = rx_node
        .deliveries()
        .iter()
        .filter(|(t, _)| *t >= w0 && *t < w1)
        .map(|(_, n)| u64::from(*n))
        .sum();
    let secs = |t: SimTime| t.as_ps() as f64 / 1e12;
    let window_secs = secs(w1.saturating_sub(w0)).max(1e-12);
    let clean_secs = (secs(duration) - window_secs).max(1e-12);
    AbFailoverRun {
        published_messages: published,
        delivered_messages: rx_node.delivered(),
        gap_events: arb.gap_events,
        gap_messages: arb.gap_messages,
        duplicates: arb.duplicates,
        side_a: (arb.side_a.offered, arb.side_a.won),
        side_b: (arb.side_b.offered, arb.side_b.won),
        window_delivered,
        window_throughput: window_delivered as f64 / window_secs,
        clean_throughput: (rx_node.delivered() - window_delivered) as f64 / clean_secs,
        profile: sim.profile(),
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_loss(seed: u64, fault: FaultSpec) -> LossRecoveryConfig {
        let mut c = LossRecoveryConfig::new(seed, fault);
        c.packets = 400;
        c
    }

    #[test]
    fn clean_feed_delivers_everything() {
        let run = run_loss_recovery(&small_loss(1, FaultSpec::new(0)));
        assert_eq!(run.published_messages, 1_600);
        assert_eq!(run.delivered_messages, run.published_messages);
        assert_eq!(run.gaps_seen, 0);
        assert_eq!(run.abandoned, 0);
    }

    #[test]
    fn lossy_feed_recovers_via_retransmission() {
        let fault = FaultSpec::new(77).with_iid_loss(0.02);
        let run = run_loss_recovery(&small_loss(1, fault));
        assert!(run.gaps_seen > 0, "{run:?}");
        assert!(run.recovered_messages > 0, "{run:?}");
        // The recovery loop papers over 2% loss completely.
        assert_eq!(run.delivered_messages, run.published_messages, "{run:?}");
        assert_eq!(run.abandoned, 0, "{run:?}");
        assert_eq!(run.fill_latency_ps.len() as u64, run.gaps_seen);
    }

    #[test]
    fn observability_is_digest_neutral_and_yields_a_profile() {
        let fault = FaultSpec::new(77).with_iid_loss(0.02);
        let off = run_loss_recovery(&small_loss(1, fault.clone()));
        let mut cfg = small_loss(1, fault);
        cfg.obs = ObsConfig::full();
        let on = run_loss_recovery(&cfg);
        assert_eq!(off.digest, on.digest);
        assert_eq!(off.events, on.events);
        assert!(off.profile.is_none());
        let p = on.profile.expect("profiler was on");
        assert!(p.frames > 0 && p.timers > 0, "{p:?}");
    }

    #[test]
    fn loss_recovery_is_deterministic() {
        let cfg = small_loss(9, FaultSpec::new(3).with_burst_loss(0.02, 0.3, 0.0, 0.9));
        let a = run_loss_recovery(&cfg);
        let b = run_loss_recovery(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.delivered_messages, b.delivered_messages);
    }

    #[test]
    fn ab_failover_covers_the_outage() {
        let mut cfg = AbFailoverConfig::new(4);
        cfg.packets = 3_000; // 15 ms of traffic, outage 10–20 ms
        cfg.a_fault = FaultSpec::new(4 ^ 0xA).with_outage(cfg.window.0, cfg.window.1);
        let run = run_ab_failover(&cfg);
        // Nothing lost: B carries the stream through A's outage.
        assert_eq!(run.delivered_messages, run.published_messages, "{run:?}");
        assert_eq!(run.gap_messages, 0, "{run:?}");
        // A wins while up; B wins only inside the outage.
        assert!(run.side_a.1 > 0 && run.side_b.1 > 0, "{run:?}");
        assert!(run.window_delivered > 0, "{run:?}");
        // Everything B won it won during the window (A wins otherwise).
        assert_eq!(run.side_b.1, run.window_delivered / 4, "{run:?}");
    }

    #[test]
    fn ab_failover_is_deterministic() {
        let cfg = AbFailoverConfig::new(8);
        let mut small = cfg.clone();
        small.packets = 1_000;
        let a = run_ab_failover(&small);
        let b = run_ab_failover(&small);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
    }
}
