//! Shared latency-decomposition scenario.
//!
//! `exp_latency_decomposition` (E21) and tn-audit's
//! `latency-decomposition` divergence scenario run *exactly* this code —
//! one implementation, so the digest the audit pins is the digest the
//! experiment prints.
//!
//! The chain is the paper's §2 measurement setup in miniature: a bursty
//! source, a fast ingress hop into an optical [`Tap`], a slower 1 Gb/s
//! hop into a store-and-forward relay, and a last hop to the consumer.
//! Bursts overrun the slow link and the relay holds every frame for a
//! fixed service time, so every
//! [`SegmentKind`](tn_sim::SegmentKind) shows up in the decomposition —
//! processing at the relay, queueing and serialization on the slow hop,
//! propagation everywhere.

use tn_netdev::{EtherLink, Tap};
use tn_obs::TraceWriter;
use tn_sim::{
    Context, Frame, KernelProfile, Metrics, Node, ObsConfig, PortId, Provenance, SchedulerKind,
    SimTime, Simulator, Snapshot, TimerToken,
};

const TICK: TimerToken = TimerToken(1);

/// Workload knobs for the decomposition chain.
#[derive(Debug, Clone)]
pub struct DecompositionConfig {
    /// Kernel seed.
    pub seed: u64,
    /// Timer firings at the source.
    pub bursts: u64,
    /// Frames sent back-to-back per firing (overruns the slow egress
    /// link, so queueing time is real, not synthetic).
    pub burst_frames: u32,
    /// Frame payload bytes.
    pub payload: usize,
    /// Gap between bursts.
    pub interval: SimTime,
    /// Per-frame hold time at the relay (its processing service).
    pub relay_service: SimTime,
    /// Event scheduler the kernel runs on (digest-neutral).
    pub scheduler: SchedulerKind,
}

impl DecompositionConfig {
    /// Default workload: 64 bursts of 4×512 B frames every 20 µs — a
    /// burst serializes in ~16 µs on the 1 Gb/s hop, so queues build
    /// within a burst and drain before the next (§4.3's bursty feeds,
    /// not a saturated link).
    pub fn new(seed: u64) -> DecompositionConfig {
        DecompositionConfig {
            seed,
            bursts: 64,
            burst_frames: 4,
            payload: 512,
            interval: SimTime::from_us(20),
            relay_service: SimTime::from_us(1),
            scheduler: SchedulerKind::BinaryHeap,
        }
    }
}

/// Timer-driven burst source: every `interval` it emits `burst_frames`
/// frames back-to-back on port 0.
struct BurstSource {
    interval: SimTime,
    bursts: u64,
    burst_frames: u32,
    payload: usize,
    sent: u64,
    fired: u64,
}

impl Node for BurstSource {
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        for _ in 0..self.burst_frames {
            // Pooled zero-fill: the sink recycles every payload buffer, so
            // in steady state no burst allocates.
            let frame = ctx.frame().zeroed(self.payload).build();
            ctx.send(PortId(0), frame);
            self.sent += 1;
        }
        self.fired += 1;
        if self.fired < self.bursts {
            ctx.set_timer(self.interval, TICK);
        }
    }
}

/// Store-and-forward relay: holds each arrival for a fixed service time
/// before forwarding on port 1 — the chain's only *processing* stage, so
/// the `process` segments in the decomposition are its doing.
struct Relay {
    service: SimTime,
    held: std::collections::VecDeque<Frame>,
}

impl Node for Relay {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.held.push_back(frame);
        ctx.set_timer(self.service, TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        if let Some(frame) = self.held.pop_front() {
            ctx.send(PortId(1), frame);
        }
    }
}

/// One frame as it arrived at the sink.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Frame id.
    pub frame: u64,
    /// Birth time at the source, picoseconds.
    pub born_ps: u64,
    /// Arrival time at the sink, picoseconds.
    pub arrived_ps: u64,
    /// The frame's accumulated journey (present when provenance was on).
    pub provenance: Option<Provenance>,
}

impl Delivery {
    /// End-to-end latency measured independently of provenance.
    pub fn latency_ps(&self) -> u64 {
        self.arrived_ps - self.born_ps
    }

    /// `|provenance total − measured latency|`; 0 when provenance is off.
    pub fn residual_ps(&self) -> u64 {
        match &self.provenance {
            Some(p) => p.total_ps().abs_diff(self.latency_ps()),
            None => 0,
        }
    }
}

/// Frame collector harvesting each arrival's provenance.
#[derive(Default)]
struct SinkNode {
    deliveries: Vec<Delivery>,
}

impl Node for SinkNode {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, mut frame: Frame) {
        self.deliveries.push(Delivery {
            frame: frame.id.0,
            born_ps: frame.born.as_ps(),
            arrived_ps: ctx.now().as_ps(),
            provenance: frame.meta.provenance.take().map(|b| *b),
        });
        // Terminal consumer: hand the payload buffer back to the arena so
        // the source's next burst reuses it.
        ctx.recycle(frame);
    }
}

/// What one decomposition run produced.
#[derive(Debug, Clone)]
pub struct DecompositionRun {
    /// Frames the source emitted.
    pub sent_frames: u64,
    /// Arrivals at the sink, in order.
    pub deliveries: Vec<Delivery>,
    /// `(node id, name)` of the chain, source first.
    pub nodes: Vec<(u32, String)>,
    /// Largest `|provenance total − measured latency|` over all
    /// deliveries — the reconciliation error, which must be 0.
    pub max_residual_ps: u64,
    /// Registry snapshot at the deadline (when the registry was on).
    pub snapshot: Option<Snapshot>,
    /// Kernel self-profile (when the profiler was on).
    pub profile: Option<KernelProfile>,
    /// Kernel trace digest.
    pub digest: u64,
    /// Events folded into the digest.
    pub events: u64,
}

/// Run the chain under the given telemetry switches. The digest must not
/// depend on `obs` — that is the invariant `tn-audit divergence` pins.
pub fn run_decomposition(cfg: &DecompositionConfig, obs: ObsConfig) -> DecompositionRun {
    let mut sim = Simulator::with_scheduler(cfg.seed, cfg.scheduler);
    if obs.provenance {
        sim.set_provenance(true);
    }
    if obs.registry {
        sim.set_metrics(Metrics::enabled());
    }
    if obs.flight {
        sim.set_flight_capacity(obs.flight_capacity as usize);
    }
    if obs.profile {
        sim.set_profile(true);
    }
    let src = sim.add_node(
        "src",
        BurstSource {
            interval: cfg.interval,
            bursts: cfg.bursts,
            burst_frames: cfg.burst_frames,
            payload: cfg.payload,
            sent: 0,
            fired: 0,
        },
    );
    let tap = sim.add_node("tap", Tap::new());
    let relay = sim.add_node(
        "relay",
        Relay {
            service: cfg.relay_service,
            held: std::collections::VecDeque::new(),
        },
    );
    let sink = sim.add_node("sink", SinkNode::default());
    // Fast ingress into the tap, a 1 Gb/s middle hop with metro-scale
    // propagation (dominates, and queues under bursts), then a clean
    // last hop out of the relay.
    sim.install_link(
        src,
        PortId(0),
        tap,
        PortId(0),
        Box::new(EtherLink::new(10_000_000_000, SimTime::from_ns(500))),
    );
    sim.install_link(
        tap,
        PortId(1),
        relay,
        PortId(0),
        Box::new(EtherLink::new(1_000_000_000, SimTime::from_us(5))),
    );
    sim.install_link(
        relay,
        PortId(1),
        sink,
        PortId(0),
        Box::new(EtherLink::new(10_000_000_000, SimTime::from_ns(500))),
    );
    sim.schedule_timer(SimTime::from_us(10), src, TICK);
    let deadline = cfg.interval * cfg.bursts + SimTime::from_ms(1);
    sim.run_until(deadline);

    let sent_frames = sim.node::<BurstSource>(src).expect("src").sent;
    let deliveries = sim.node::<SinkNode>(sink).expect("sink").deliveries.clone();
    let max_residual_ps = deliveries
        .iter()
        .map(Delivery::residual_ps)
        .max()
        .unwrap_or(0);
    let snapshot = sim.metrics().snapshot(deadline.as_ps());
    DecompositionRun {
        sent_frames,
        deliveries,
        nodes: vec![
            (src.0, "src".into()),
            (tap.0, "tap".into()),
            (relay.0, "relay".into()),
            (sink.0, "sink".into()),
        ],
        max_residual_ps,
        snapshot,
        profile: sim.profile(),
        digest: sim.trace.digest(),
        events: sim.trace.recorded(),
    }
}

/// Render a run as `tn-trace/v1` JSONL: meta, node bindings, one span per
/// provenance segment, one event per arrival, and the metric snapshot.
pub fn trace_jsonl(cfg: &DecompositionConfig, run: &DecompositionRun) -> String {
    let mut w = TraceWriter::new("latency-decomposition", cfg.seed);
    for (id, name) in &run.nodes {
        w.node(*id, name);
    }
    let sink = run.nodes.last().map(|(id, _)| *id).unwrap_or(0);
    for d in &run.deliveries {
        if let Some(p) = &d.provenance {
            w.provenance(d.frame, p);
        }
        w.event(d.arrived_ps, sink, "deliver", d.latency_ps());
    }
    if let Some(snap) = &run.snapshot {
        w.snapshot(snap);
    }
    w.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_reconciles_and_ignores_obs_for_digest() {
        let cfg = DecompositionConfig::new(11);
        let off = run_decomposition(&cfg, ObsConfig::off());
        let on = run_decomposition(&cfg, ObsConfig::full());
        assert_eq!(off.digest, on.digest);
        assert_eq!(off.events, on.events);
        assert_eq!(on.sent_frames, 256);
        assert_eq!(on.deliveries.len(), 256);
        // Segment sums reconcile exactly against the independent clock.
        assert_eq!(on.max_residual_ps, 0);
        // Bursts overrun the 1 Gb/s hop and the relay holds every frame:
        // all four segment kinds carry real time.
        let total = |kind: tn_sim::SegmentKind| -> u64 {
            on.deliveries
                .iter()
                .flat_map(|d| d.provenance.as_ref().unwrap().segments())
                .filter(|s| s.kind == kind)
                .map(|s| s.duration_ps())
                .sum()
        };
        for kind in tn_sim::SegmentKind::ALL {
            assert!(total(kind) > 0, "{kind:?} never observed");
        }
        assert!(off.deliveries.iter().all(|d| d.provenance.is_none()));
        // Full observability includes the kernel profiler; off means off.
        assert!(on.profile.is_some() && off.profile.is_none());
        assert!(on.profile.as_ref().unwrap().frames > 0);
    }

    #[test]
    fn trace_round_trips_through_the_parser() {
        let cfg = DecompositionConfig::new(11);
        let run = run_decomposition(&cfg, ObsConfig::full());
        let jsonl = trace_jsonl(&cfg, &run);
        let doc = tn_obs::parse(&jsonl).expect("valid tn-trace/v1");
        assert_eq!(doc.scenario, "latency-decomposition");
        assert_eq!(doc.seed, 11);
        assert!(!doc.spans.is_empty());
        let summary = tn_obs::summarize(&doc);
        assert!(summary.total_ps() > 0);
    }
}
