//! Shared helpers for the experiment binaries: table rendering and tiny
//! ASCII charts, so every figure regenerates as terminal output without
//! plotting dependencies — plus the shared fault scenarios
//! ([`faultsim`]) behind `exp_loss_recovery`/`exp_ab_failover` and
//! tn-audit's fault divergence checks.

pub mod faultsim;
pub mod obssim;

/// True when the process was invoked with `--json` (experiment binaries
/// then emit a machine-readable report instead of tables).
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Render a labeled table row with right-aligned numeric cells.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut out = format!("{label:<16}");
    for c in cells {
        out.push_str(&format!(" {c:>12}"));
    }
    out
}

/// Render a vertical-bar ASCII chart of a series (max `width` columns,
/// `height` rows), downsampling by taking column maxima — peaks are the
/// point of these figures, so they must survive downsampling.
pub fn ascii_chart(series: &[f64], width: usize, height: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let cols = width.min(series.len()).max(1);
    let chunk = series.len().div_ceil(cols);
    let col_vals: Vec<f64> = series
        .chunks(chunk)
        .map(|c| c.iter().cloned().fold(f64::MIN, f64::max))
        .collect();
    let max = col_vals.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let mut rows = Vec::with_capacity(height + 1);
    for r in (1..=height).rev() {
        let threshold = max * r as f64 / height as f64;
        let half = max * (r as f64 - 0.5) / height as f64;
        let line: String = col_vals
            .iter()
            .map(|&v| {
                if v >= threshold {
                    '█'
                } else if v >= half {
                    '▄'
                } else {
                    ' '
                }
            })
            .collect();
        rows.push(line);
    }
    rows.push("─".repeat(col_vals.len()));
    rows.join("\n")
}

/// Format a count with engineering suffixes (12.3k, 4.5M, 1.2B).
pub fn eng(v: f64) -> String {
    let (div, suffix) = if v >= 1e12 {
        (1e12, "T")
    } else if v >= 1e9 {
        (1e9, "B")
    } else if v >= 1e6 {
        (1e6, "M")
    } else if v >= 1e3 {
        (1e3, "k")
    } else {
        (1.0, "")
    };
    if suffix.is_empty() {
        format!("{v:.0}")
    } else {
        format!("{:.2}{}", v / div, suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_suffixes() {
        assert_eq!(eng(950.0), "950");
        assert_eq!(eng(12_300.0), "12.30k");
        assert_eq!(eng(4.5e6), "4.50M");
        assert_eq!(eng(2.0e11), "200.00B");
        assert_eq!(eng(1.5e12), "1.50T");
    }

    #[test]
    fn chart_shape() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let chart = ascii_chart(&series, 50, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 9);
        // Peak column is filled in every row; early columns only in low rows.
        assert!(lines[0].trim_end().ends_with('█'));
        assert!(lines[0].starts_with(' '));
        assert!(ascii_chart(&[], 10, 4).is_empty());
    }

    #[test]
    fn row_alignment() {
        let r = row("label", &["1".into(), "22".into()]);
        assert!(r.starts_with("label"));
        assert!(r.contains("            1"));
    }
}
