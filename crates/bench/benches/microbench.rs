//! Component microbenchmarks: the hot paths every experiment leans on.
//!
//! These measure *our implementation's* wall-clock costs — useful for
//! keeping the simulator fast and for sanity-checking that the modeled
//! per-event budgets (§3: 650 ns / 100 ns) are within reach of real code:
//! the normalizer core here processes a message in well under 650 ns of
//! host time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use tn_feed::normalize::{HashRepartition, NormalizerCore};
use tn_feed::Arbiter;
use tn_market::book::OrderBook;
use tn_market::{ExchangeProfile, FlowMix, MatchingEngine, OrderFlowGenerator, SymbolDirectory};
use tn_wire::pitch::{self, Side};
use tn_wire::{boe, stack, Symbol};

fn wire_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let add = pitch::Message::AddOrder {
        offset_ns: 123,
        order_id: 42,
        side: Side::Buy,
        qty: 100,
        symbol: Symbol::new("SPY").unwrap(),
        price: 450_0000,
    };
    let mut buf = Vec::new();
    add.emit(&mut buf);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("pitch_parse_add_order", |b| {
        b.iter(|| pitch::Message::parse(black_box(&buf)).unwrap())
    });
    g.bench_function("pitch_emit_add_order", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(32);
            black_box(&add).emit(&mut out);
            out
        })
    });

    let mut order_buf = Vec::new();
    boe::Message::NewOrder {
        cl_ord_id: 1,
        side: Side::Buy,
        qty: 100,
        symbol: Symbol::new("SPY").unwrap(),
        price: 450_0000,
    }
    .emit(7, &mut order_buf);
    g.bench_function("boe_parse_new_order", |b| {
        b.iter(|| boe::Message::parse(black_box(&order_buf)).unwrap())
    });

    // Whole-stack parse: Ethernet + IPv4 + UDP around a PITCH packet.
    let mut pb = pitch::PacketBuilder::new(1, 1, 1400);
    for i in 0..10 {
        pb.push(&pitch::Message::DeleteOrder {
            offset_ns: i,
            order_id: u64::from(i),
        });
    }
    let frame = stack::build_udp(
        tn_wire::eth::MacAddr::host(1),
        None,
        tn_wire::ipv4::Addr::host(1),
        tn_wire::ipv4::Addr::multicast_group(3),
        30_001,
        30_001,
        &pb.flush().unwrap(),
    );
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("stack_parse_udp_frame", |b| {
        b.iter(|| stack::parse_udp(black_box(&frame)).unwrap())
    });
    g.finish();
}

fn order_book(c: &mut Criterion) {
    let mut g = c.benchmark_group("book");
    g.bench_function("submit_cancel_cycle", |b| {
        let mut book = OrderBook::new();
        let mut id = 0u64;
        // Prime with resting depth.
        for i in 0..100 {
            id += 1;
            book.submit(id, Side::Buy, 100_0000 - i * 100, 100, false);
            id += 1;
            book.submit(id, Side::Sell, 100_1000 + i * 100, 100, false);
        }
        b.iter(|| {
            id += 1;
            book.submit(id, Side::Buy, black_box(99_5000), 10, false);
            book.cancel(id)
        })
    });
    g.bench_function("marketable_execution", |b| {
        let mut book = OrderBook::new();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            book.submit(id, Side::Sell, 100_0000, 100, false);
            id += 1;
            book.submit(id, Side::Buy, 100_0000, 100, true)
        })
    });
    g.finish();
}

fn market_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");

    // Engine + flow generator: end-to-end market event production.
    g.throughput(Throughput::Elements(1));
    g.bench_function("engine_background_event", |b| {
        let dir = SymbolDirectory::synthetic(100);
        let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
        let mut flow = OrderFlowGenerator::new(&dir, FlowMix::default());
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| flow.step(&dir, &mut engine, &mut rng, 0))
    });

    // Normalizer core: the §3 per-event budget subject. Throughput here
    // shows a real implementation comfortably beats 650 ns/msg.
    let dir = SymbolDirectory::synthetic(100);
    let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
    let mut flow = OrderFlowGenerator::new(&dir, FlowMix::default());
    let mut rng = SmallRng::seed_from_u64(2);
    let mut pb = pitch::PacketBuilder::new(0, 1, 1400);
    let mut packets = Vec::new();
    for i in 0..5_000u32 {
        for m in flow.step(&dir, &mut engine, &mut rng, i) {
            if let Some(done) = pb.push(&m) {
                packets.push(done);
            }
        }
    }
    packets.extend(pb.flush());
    let msg_count: usize = packets
        .iter()
        .map(|p| pitch::Packet::new_checked(&p[..]).unwrap().count() as usize)
        .sum();
    g.throughput(Throughput::Elements(msg_count as u64));
    g.bench_function("normalizer_core_full_feed", |b| {
        b.iter(|| {
            let mut core = NormalizerCore::new(1, HashRepartition { partitions: 16 });
            let mut out = 0usize;
            for (i, p) in packets.iter().enumerate() {
                out += core.on_packet(p, i as u64).unwrap().len();
            }
            out
        })
    });

    // A/B arbitration on the same stream.
    g.bench_function("arbiter_ab_stream", |b| {
        b.iter(|| {
            let mut arb = Arbiter::new();
            let mut n = 0usize;
            for p in &packets {
                if let Some(msgs) = arb.offer(p).unwrap() {
                    n += msgs.len();
                }
                let _ = arb.offer(p); // B copy
            }
            n
        })
    });
    g.finish();
}

fn workload_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("table1_sample_10k_frames", |b| {
        let p = ExchangeProfile::exchange_b();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            p.sample_frame_lengths(seed, 10_000)
        })
    });
    g.bench_function("fig2b_full_day", |b| {
        let m = tn_market::IntradayModel::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            m.per_second_counts(seed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    wire_codecs,
    order_book,
    market_pipeline,
    workload_models
);
criterion_main!(benches);
