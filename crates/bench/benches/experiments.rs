//! Experiment benches: one Criterion target per table/figure, timing the
//! regeneration itself (the `src/bin/*` binaries print the artifacts;
//! these keep their cost visible and their code paths exercised by
//! `cargo bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use tn_core::design::{LayerOneSwitches, TradingNetworkDesign, TraditionalSwitches};
use tn_core::ScenarioConfig;
use tn_market::{ExchangeProfile, GrowthModel, IntradayModel, MicroburstModel};
use tn_sim::SimTime;

fn table1_frame_lengths(c: &mut Criterion) {
    c.bench_function("table1_frame_lengths", |b| {
        let profiles = ExchangeProfile::table1();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            profiles
                .iter()
                .map(|p| p.sample_frame_lengths(seed, 50_000).len())
                .sum::<usize>()
        })
    });
}

fn fig2_models(c: &mut Criterion) {
    c.bench_function("fig2a_growth_series", |b| {
        let m = GrowthModel::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            m.series(seed)
        })
    });
    c.bench_function("fig2b_intraday_counts", |b| {
        let m = IntradayModel::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            m.per_second_counts(seed)
        })
    });
    c.bench_function("fig2c_microburst_windows", |b| {
        let m = MicroburstModel::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            m.window_counts(seed)
        })
    });
}

fn quick_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::builder(seed)
        .duration(SimTime::from_ms(10))
        .background_rate(20_000.0)
        .build()
        .expect("valid scenario")
}

fn design_roundtrips(c: &mut Criterion) {
    let mut g = c.benchmark_group("designs");
    g.sample_size(10);
    g.bench_function("design1_roundtrip_sim", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                quick_scenario(seed)
            },
            |sc| TraditionalSwitches::default().run(&sc),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("design3_roundtrip_sim", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                quick_scenario(seed)
            },
            |sc| LayerOneSwitches::default().run(&sc),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_frame_lengths,
    fig2_models,
    design_roundtrips
);
criterion_main!(benches);
