//! Property tests on the order book and matching engine: the invariants
//! every exchange relies on, under arbitrary operation sequences.

use proptest::prelude::*;

use tn_market::book::OrderBook;
use tn_market::{MatchingEngine, Owner, SymbolDirectory};
use tn_wire::pitch::{Message, Side};

#[derive(Debug, Clone)]
enum Op {
    Submit {
        side: Side,
        price: u64,
        qty: u32,
        ioc: bool,
    },
    Cancel {
        idx: usize,
    },
    Reduce {
        idx: usize,
        by: u32,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![Just(Side::Buy), Just(Side::Sell)],
            95_000u64..105_000,
            1u32..500,
            any::<bool>()
        )
            .prop_map(|(side, price, qty, ioc)| Op::Submit {
                side,
                price: price * 100,
                qty,
                ioc
            }),
        (any::<usize>()).prop_map(|idx| Op::Cancel { idx }),
        (any::<usize>(), 1u32..100).prop_map(|(idx, by)| Op::Reduce { idx, by }),
    ]
}

proptest! {
    /// The book is never crossed after any operation sequence: matching
    /// must consume all marketable quantity before anything posts.
    #[test]
    fn book_never_crossed(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut book = OrderBook::new();
        let mut live_ids: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        for op in ops {
            match op {
                Op::Submit { side, price, qty, ioc } => {
                    let r = book.submit(next_id, side, price, qty, ioc);
                    if r.posted > 0 {
                        live_ids.push(next_id);
                    }
                    // Executions never exceed the submitted quantity.
                    let executed: u32 = r.executions.iter().map(|e| e.qty).sum();
                    prop_assert!(executed + r.posted <= qty);
                    next_id += 1;
                }
                Op::Cancel { idx } => {
                    if !live_ids.is_empty() {
                        let id = live_ids[idx % live_ids.len()];
                        book.cancel(id);
                        live_ids.retain(|&l| l != id);
                    }
                }
                Op::Reduce { idx, by } => {
                    if !live_ids.is_empty() {
                        let id = live_ids[idx % live_ids.len()];
                        if book.reduce(id, by) == Some(0) {
                            live_ids.retain(|&l| l != id);
                        }
                    }
                }
            }
            if let (Some((bid, _)), Some((ask, _))) = (book.best_bid(), book.best_ask()) {
                prop_assert!(bid < ask, "book crossed: bid {bid} >= ask {ask}");
            }
        }
    }

    /// Engine feed-message conservation: every add is eventually matched
    /// by executions+reductions+deletes of no more than its size, and a
    /// book builder replaying the feed tracks the engine's own BBO.
    #[test]
    fn feed_replay_matches_engine_state(
        seeds in proptest::collection::vec(any::<u8>(), 20..150),
    ) {
        let dir = SymbolDirectory::synthetic(5);
        let symbol = dir.instruments()[0].symbol;
        let mut engine = MatchingEngine::new([symbol]);
        let mut builder = tn_feed::BookBuilder::new();
        let mut feed: Vec<Message> = Vec::new();
        let mut cl = 0u64;
        for s in seeds {
            cl += 1;
            let side = if s % 2 == 0 { Side::Buy } else { Side::Sell };
            let price = 100_0000 + u64::from(s % 16) * 100 - 800;
            let qty = u32::from(s % 50) + 1;
            let out = engine.submit(Owner::Background, cl, symbol, side, price, qty, s % 7 == 0, 0);
            feed.extend(out.feed.iter().copied());
            if s % 5 == 0 {
                if let Some(id) = engine.sample_open_order(s as usize) {
                    feed.extend(engine.cancel_exchange_order(id, 0).feed);
                }
            }
        }
        for m in &feed {
            builder.apply(m);
        }
        // The replayed book's BBO equals the engine's book BBO.
        let book = engine.book(symbol).unwrap();
        let (bid, bid_sz, ask, ask_sz) = builder.bbo(symbol);
        prop_assert_eq!(book.best_bid().unwrap_or((0, 0)), (bid, bid_sz as u32));
        prop_assert_eq!(book.best_ask().unwrap_or((0, 0)), (ask, ask_sz as u32));
        // And it tracked exactly the open orders.
        prop_assert_eq!(builder.tracked_orders(), engine.open_orders());
        prop_assert_eq!(builder.stats().unknown_orders, 0);
    }
}
