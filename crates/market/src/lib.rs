//! # tn-market — exchange substrate and workload models
//!
//! Everything on the exchange side of the cross-connect, plus the
//! statistical workload models behind the paper's Figure 2 and Table 1:
//!
//! * [`book`] / [`engine`] — price-time-priority order books and a
//!   multi-symbol matching engine that consumes BOE-style order entry and
//!   produces PITCH-style market data.
//! * [`feedpub`] — packs engine events into sequenced multicast packets
//!   across feed units.
//! * [`partition`] / [`symbols`] — feed partitioning schemes (§2) over an
//!   interned symbol directory.
//! * [`flow`] — background order-flow generation with a realistic
//!   message-type mix.
//! * [`workload`] — the Figure 2 models: multi-year growth (2a), intraday
//!   per-second bursts (2b), and 100 µs microbursts (2c).
//! * [`profiles`] — per-exchange frame-length profiles calibrated to
//!   Table 1.
//! * [`exchange`] — the whole exchange as a pluggable simulation node.

pub mod book;
pub mod engine;
pub mod exchange;
pub mod feedpub;
pub mod flow;
pub mod partition;
pub mod profiles;
pub mod symbols;
pub mod workload;

pub use book::OrderBook;
pub use engine::{MatchingEngine, Owner};
pub use exchange::{Exchange, ExchangeConfig, ExchangeStats, ORDER_ENTRY_PORT, TICK};
pub use feedpub::FeedPublisher;
pub use flow::{FlowMix, OrderFlowGenerator};
pub use partition::PartitionScheme;
pub use profiles::ExchangeProfile;
pub use symbols::{InstrumentClass, SymbolDirectory};
pub use workload::{GrowthModel, IntradayModel, MicroburstModel};
