//! Feed publisher: engine events → sequenced multicast packets.
//!
//! Routes each feed message to its unit (per the exchange's partitioning
//! scheme), prefixes `Time` messages on second rollover, packs messages
//! into sequenced-unit packets, and seals packets at the end of each
//! publication batch (exchanges flush immediately — coalescing happens
//! only when messages are produced together, which is what makes quiet
//! periods emit small frames and bursts emit MTU-sized ones).

use std::collections::HashMap;

use tn_wire::pitch::{self, PacketBuilder};

use crate::partition::PartitionScheme;
use crate::symbols::SymbolDirectory;

/// A sealed packet tagged with its unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitPacket {
    /// Feed unit (multicast group selector).
    pub unit: u16,
    /// The sequenced-unit packet bytes (UDP payload).
    pub bytes: Vec<u8>,
}

/// The publisher.
pub struct FeedPublisher {
    scheme: PartitionScheme,
    builders: Vec<PacketBuilder>,
    last_time_sec: Vec<Option<u32>>,
    /// Which unit an exchange order id lives on (learned from AddOrder,
    /// forgotten on DeleteOrder) — messages like executions don't carry a
    /// symbol, mirroring the statefulness of real PITCH.
    order_units: HashMap<u64, u16>,
    /// Per-packet protocol-specific extra header bytes (paper: "another
    /// 8–16 bytes of protocol-specific headers"); prepended as padding.
    extra_header: usize,
}

impl FeedPublisher {
    /// Publisher for `scheme`, packing up to `max_payload` bytes per
    /// packet (excluding `extra_header`).
    pub fn new(scheme: PartitionScheme, max_payload: usize, extra_header: usize) -> FeedPublisher {
        let units = scheme.units() as usize;
        FeedPublisher {
            scheme,
            builders: (0..units)
                .map(|u| PacketBuilder::new(u as u8, 1, max_payload))
                .collect(),
            last_time_sec: vec![None; units],
            order_units: HashMap::new(),
            extra_header,
        }
    }

    /// The partitioning scheme in force.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Route one message to its unit.
    fn unit_of(&mut self, dir: &SymbolDirectory, msg: &pitch::Message) -> u16 {
        if let Some(symbol) = msg.symbol() {
            let unit = self.scheme.unit_for(dir, symbol);
            if let (pitch::Message::AddOrder { order_id, .. }, u) = (msg, unit) {
                self.order_units.insert(*order_id, u);
            }
            return unit;
        }
        if let Some(order_id) = msg.order_id() {
            let unit = self.order_units.get(&order_id).copied().unwrap_or(0);
            if matches!(msg, pitch::Message::DeleteOrder { .. }) {
                self.order_units.remove(&order_id);
            }
            return unit;
        }
        0
    }

    /// Publish a batch of messages stamped at `time_ns` (nanoseconds since
    /// midnight). Returns sealed packets, at most one per touched unit
    /// (plus extras if a unit's batch overflowed the payload cap).
    pub fn publish(
        &mut self,
        dir: &SymbolDirectory,
        time_ns: u64,
        msgs: &[pitch::Message],
    ) -> Vec<UnitPacket> {
        // audit:allow(hotpath-alloc): per-publish sealed-packet batch; batch reuse is ROADMAP item 2
        let mut sealed = Vec::new();
        let second = (time_ns / 1_000_000_000) as u32;
        // audit:allow(hotpath-alloc): per-publish touched-unit set; batch reuse is ROADMAP item 2
        let mut touched = Vec::new();
        for msg in msgs {
            let unit = self.unit_of(dir, msg);
            let b = &mut self.builders[unit as usize];
            if self.last_time_sec[unit as usize] != Some(second) {
                self.last_time_sec[unit as usize] = Some(second);
                if let Some(done) = b.push(&pitch::Message::Time { seconds: second }) {
                    sealed.push(UnitPacket { unit, bytes: done });
                }
            }
            if let Some(done) = b.push(msg) {
                sealed.push(UnitPacket { unit, bytes: done });
            }
            if !touched.contains(&unit) {
                touched.push(unit);
            }
        }
        for unit in touched {
            if let Some(done) = self.builders[unit as usize].flush() {
                sealed.push(UnitPacket { unit, bytes: done });
            }
        }
        if self.extra_header > 0 {
            for p in &mut sealed {
                // Prepend the exchange's extra framing as opaque padding.
                // audit:allow(hotpath-alloc): re-framing copy when an extra header is configured; zero-copy emit is ROADMAP item 2
                let mut with = vec![0u8; self.extra_header];
                with.extend_from_slice(&p.bytes);
                p.bytes = with;
            }
        }
        sealed
    }

    /// Orders currently tracked for unit routing.
    pub fn tracked_orders(&self) -> usize {
        self.order_units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_wire::pitch::Side;
    use tn_wire::Symbol;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn add(order_id: u64, symbol: Symbol) -> pitch::Message {
        pitch::Message::AddOrder {
            offset_ns: 1,
            order_id,
            side: Side::Buy,
            qty: 100,
            symbol,
            price: 100_0000,
        }
    }

    fn dir() -> SymbolDirectory {
        SymbolDirectory::synthetic(100)
    }

    #[test]
    fn time_message_prefixes_each_new_second() {
        let d = dir();
        let mut p = FeedPublisher::new(PartitionScheme::ByHash { units: 1 }, 1400, 0);
        let packets = p.publish(&d, 34_200_000_000_000, &[add(1, sym("A0000"))]);
        assert_eq!(packets.len(), 1);
        let pkt = pitch::Packet::new_checked(&packets[0].bytes[..]).unwrap();
        let msgs: Vec<_> = pkt.messages().map(|m| m.unwrap()).collect();
        assert_eq!(msgs[0], pitch::Message::Time { seconds: 34_200 });
        assert!(matches!(msgs[1], pitch::Message::AddOrder { .. }));
        // Same second: no new Time message.
        let packets = p.publish(&d, 34_200_500_000_000, &[add(2, sym("A0000"))]);
        let pkt = pitch::Packet::new_checked(&packets[0].bytes[..]).unwrap();
        assert_eq!(pkt.count(), 1);
        // New second: Time again.
        let packets = p.publish(&d, 34_201_000_000_000, &[add(3, sym("A0000"))]);
        let pkt = pitch::Packet::new_checked(&packets[0].bytes[..]).unwrap();
        assert_eq!(pkt.count(), 2);
    }

    #[test]
    fn messages_route_to_units_and_track_orders() {
        let d = dir();
        let scheme = PartitionScheme::ByHash { units: 4 };
        let mut p = FeedPublisher::new(scheme, 1400, 0);
        let s1 = sym("A0000");
        let s2 = sym("B0001");
        let u1 = scheme.unit_for(&d, s1);
        let packets = p.publish(&d, 1_000_000_000, &[add(1, s1), add(2, s2)]);
        // Executions without symbols follow the add's unit.
        let exec = pitch::Message::OrderExecuted {
            offset_ns: 2,
            order_id: 1,
            qty: 10,
            exec_id: 1,
        };
        let packets2 = p.publish(&d, 1_000_000_100, &[exec]);
        assert_eq!(packets2.len(), 1);
        assert_eq!(packets2[0].unit, u1);
        assert_eq!(p.tracked_orders(), 2);
        // Deletes release tracking.
        let del = pitch::Message::DeleteOrder {
            offset_ns: 3,
            order_id: 1,
        };
        let _ = p.publish(&d, 1_000_000_200, &[del]);
        assert_eq!(p.tracked_orders(), 1);
        let _ = packets;
    }

    #[test]
    fn sequences_are_continuous_per_unit() {
        let d = dir();
        let mut p = FeedPublisher::new(PartitionScheme::ByHash { units: 1 }, 1400, 0);
        let mut next_seq = 1u32;
        for batch in 0..5 {
            let msgs: Vec<_> = (0..3)
                .map(|i| add(batch * 3 + i + 1, sym("A0000")))
                .collect();
            let packets = p.publish(&d, 1_000_000_000 * (batch + 1), &msgs);
            for pkt_bytes in &packets {
                let pkt = pitch::Packet::new_checked(&pkt_bytes.bytes[..]).unwrap();
                assert_eq!(pkt.sequence(), next_seq);
                next_seq += u32::from(pkt.count());
            }
        }
    }

    #[test]
    fn bursts_overflow_into_multiple_packets() {
        let d = dir();
        let mut p = FeedPublisher::new(PartitionScheme::ByHash { units: 1 }, 120, 0);
        let msgs: Vec<_> = (0..20).map(|i| add(i + 1, sym("A0000"))).collect();
        let packets = p.publish(&d, 1_000_000_000, &msgs);
        assert!(packets.len() > 1);
        let total: usize = packets
            .iter()
            .map(|pk| pitch::Packet::new_checked(&pk.bytes[..]).unwrap().count() as usize)
            .sum();
        assert_eq!(total, 21); // 20 adds + 1 Time
        for pk in &packets {
            assert!(pk.bytes.len() <= 120);
        }
    }

    #[test]
    fn extra_header_pads_packets() {
        let d = dir();
        let mut with = FeedPublisher::new(PartitionScheme::ByHash { units: 1 }, 1400, 9);
        let mut without = FeedPublisher::new(PartitionScheme::ByHash { units: 1 }, 1400, 0);
        let a = with.publish(&d, 1_000_000_000, &[add(1, sym("A0000"))]);
        let b = without.publish(&d, 1_000_000_000, &[add(1, sym("A0000"))]);
        assert_eq!(a[0].bytes.len(), b[0].bytes.len() + 9);
        // The PITCH packet still parses after skipping the extra header.
        assert!(pitch::Packet::new_checked(&a[0].bytes[9..]).is_ok());
    }
}
