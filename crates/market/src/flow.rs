//! Background order-flow generation.
//!
//! Drives a [`crate::engine::MatchingEngine`] with a realistic mix of
//! adds, cancels, reductions, modifies and aggressive orders so the
//! published feed has the message-type composition of real depth-of-book
//! feeds (adds and deletes dominate; executions are comparatively rare).

use rand::rngs::SmallRng;
use rand::Rng;

use tn_wire::pitch::{self, Side};
use tn_wire::Symbol;

use crate::engine::{MatchingEngine, Owner};
use crate::symbols::SymbolDirectory;

/// Mix of operations, as weights (need not sum to 1).
#[derive(Debug, Clone, Copy)]
pub struct FlowMix {
    /// Post a new passive order.
    pub add: f64,
    /// Cancel an open order outright.
    pub cancel: f64,
    /// Reduce an open order's size.
    pub reduce: f64,
    /// Cross the spread (produces executions).
    pub aggress: f64,
}

impl Default for FlowMix {
    /// Roughly the composition of US equities depth feeds: adds and full
    /// cancels dominate; a few percent of events are trades.
    fn default() -> FlowMix {
        FlowMix {
            add: 0.47,
            cancel: 0.38,
            reduce: 0.09,
            aggress: 0.06,
        }
    }
}

/// The generator. Holds per-symbol reference prices that random-walk
/// through the day.
pub struct OrderFlowGenerator {
    mix: FlowMix,
    mid_prices: Vec<u64>,
    next_cl_ord: u64,
    sample_k: usize,
}

impl OrderFlowGenerator {
    /// Generator over `dir`'s universe with initial mid prices spread
    /// over a realistic range.
    pub fn new(dir: &SymbolDirectory, mix: FlowMix) -> OrderFlowGenerator {
        let mid_prices = dir
            .instruments()
            .iter()
            .map(|inst| 5_0000 + u64::from(inst.id % 997) * 5000) // $0.50 .. ~$500
            .collect();
        OrderFlowGenerator {
            mix,
            mid_prices,
            next_cl_ord: 1,
            sample_k: 0,
        }
    }

    fn pick_symbol(&self, dir: &SymbolDirectory, rng: &mut SmallRng) -> Symbol {
        // Zipf-ish: low ids trade more (the single-stock focus of Fig 2b/c
        // comes from exactly this concentration).
        let n = dir.len();
        let r: f64 = rng.gen::<f64>();
        let idx = ((n as f64) * r * r) as usize;
        // audit:allow(hotpath-unwrap): idx is clamped to n-1, so the directory lookup cannot miss
        dir.by_id(idx.min(n - 1) as u32).expect("in range").symbol
    }

    /// Run one operation against `engine`, returning the feed messages it
    /// produced. `offset_ns` stamps the messages.
    pub fn step(
        &mut self,
        dir: &SymbolDirectory,
        engine: &mut MatchingEngine,
        rng: &mut SmallRng,
        offset_ns: u32,
    ) -> Vec<pitch::Message> {
        let total = self.mix.add + self.mix.cancel + self.mix.reduce + self.mix.aggress;
        let mut pick = rng.gen::<f64>() * total;
        self.sample_k = self.sample_k.wrapping_add(1);

        // Keep a floor of resting liquidity: force adds while thin.
        let forced_add = engine.open_orders() < 32;
        if !forced_add {
            pick -= self.mix.cancel;
            if pick < 0.0 {
                if let Some(id) = engine.sample_open_order(self.sample_k) {
                    return engine.cancel_exchange_order(id, offset_ns).feed;
                }
            }
            pick -= self.mix.reduce;
            if pick < 0.0 {
                if let Some(id) = engine.sample_open_order(self.sample_k) {
                    let by = rng.gen_range(1..=50);
                    return engine.reduce_exchange_order(id, by, offset_ns).feed;
                }
            }
            pick -= self.mix.aggress;
            if pick < 0.0 {
                let symbol = self.pick_symbol(dir, rng);
                // audit:allow(hotpath-unwrap): pick_symbol only returns symbols from this directory
                let inst = dir.get(symbol).expect("listed");
                let side = if rng.gen() { Side::Buy } else { Side::Sell };
                let mid = self.mid_prices[inst.id as usize];
                // Cross far enough to hit the touch.
                let price = match side {
                    Side::Buy => mid + 10_000,
                    Side::Sell => mid.saturating_sub(10_000).max(100),
                };
                let qty = rng.gen_range(1..=200);
                self.next_cl_ord += 1;
                return engine
                    .submit(
                        Owner::Background,
                        0,
                        symbol,
                        side,
                        price,
                        qty,
                        true,
                        offset_ns,
                    )
                    .feed;
            }
        }

        // Default: post passive liquidity near the mid.
        let symbol = self.pick_symbol(dir, rng);
        // audit:allow(hotpath-unwrap): pick_symbol only returns symbols from this directory
        let inst = dir.get(symbol).expect("listed");
        // Random-walk the reference price occasionally.
        if rng.gen::<f64>() < 0.02 {
            let delta = rng.gen_range(-3i64..=3) * 100;
            let mid = &mut self.mid_prices[inst.id as usize];
            *mid = (*mid as i64 + delta).max(200) as u64;
        }
        let mid = self.mid_prices[inst.id as usize];
        let side = if rng.gen() { Side::Buy } else { Side::Sell };
        let ticks = u64::from(rng.gen_range(1u32..=20)) * 100;
        let price = match side {
            Side::Buy => mid.saturating_sub(ticks).max(100),
            Side::Sell => mid + ticks,
        };
        let qty = rng.gen_range(1..=65_000);
        self.next_cl_ord += 1;
        engine
            .submit(
                Owner::Background,
                0,
                symbol,
                side,
                price,
                qty,
                false,
                offset_ns,
            )
            .feed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flow_produces_realistic_message_mix() {
        let dir = SymbolDirectory::synthetic(50);
        let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
        let mut gen = OrderFlowGenerator::new(&dir, FlowMix::default());
        let mut rng = SmallRng::seed_from_u64(77);
        let mut adds = 0u32;
        let mut dels = 0u32;
        let mut execs = 0u32;
        let mut reduces = 0u32;
        let mut total = 0u32;
        for i in 0..20_000 {
            for m in gen.step(&dir, &mut engine, &mut rng, i) {
                total += 1;
                match m {
                    pitch::Message::AddOrder { .. } => adds += 1,
                    pitch::Message::DeleteOrder { .. } => dels += 1,
                    pitch::Message::OrderExecuted { .. } => execs += 1,
                    pitch::Message::ReduceSize { .. } => reduces += 1,
                    _ => {}
                }
            }
        }
        assert!(total > 15_000, "total {total}");
        // Adds and deletes dominate; trades are a small fraction.
        assert!(adds > total / 3, "adds {adds}/{total}");
        assert!(dels > total / 10, "dels {dels}/{total}");
        assert!(execs > 0);
        assert!(execs < total / 8, "execs {execs}/{total}");
        assert!(reduces > 0);
        // The book stays populated (the generator maintains liquidity).
        assert!(engine.open_orders() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let dir = SymbolDirectory::synthetic(10);
        let run = |seed: u64| {
            let mut engine = MatchingEngine::new(dir.instruments().iter().map(|i| i.symbol));
            let mut gen = OrderFlowGenerator::new(&dir, FlowMix::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for i in 0..500 {
                out.extend(gen.step(&dir, &mut engine, &mut rng, i));
            }
            out
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn zipf_concentration() {
        let dir = SymbolDirectory::synthetic(100);
        let gen = OrderFlowGenerator::new(&dir, FlowMix::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            let s = gen.pick_symbol(&dir, &mut rng);
            counts[dir.get(s).unwrap().id as usize] += 1;
        }
        // The top decile of symbols gets far more than its share.
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 2_500, "head {head}");
    }
}
