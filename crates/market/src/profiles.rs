//! Per-exchange feed profiles calibrated to Table 1.
//!
//! Table 1 reports frame-length statistics (including Ethernet, IP and UDP
//! headers) for three production feeds sampled mid-day:
//!
//! | Feed       | min | avg | median | max  |
//! |------------|-----|-----|--------|------|
//! | Exchange A | 73  | 92  | 89     | 1514 |
//! | Exchange B | 64  | 113 | 76     | 1067 |
//! | Exchange C | 81  | 151 | 101    | 1442 |
//!
//! A frame's length is `42 (Eth+IP+UDP) + extra protocol header + 8 (unit
//! header) + packed messages`, so the distribution is fully determined by
//! each exchange's message mix, its coalescing behaviour, and its extra
//! header bytes (the paper notes 8–16 bytes of protocol-specific headers
//! beyond the 40-byte network stack). The three profiles here choose
//! those parameters to land on the table's anchors:
//!
//! * **A**: 9 extra header bytes; deletes are the smallest frame
//!   (73 bytes); mostly single-message packets with rare MTU-filling
//!   bursts (max 1514). A 30-byte attributed add order frames at exactly
//!   89 bytes and straddles the 50th percentile, so the measured median
//!   is exactly the table's 89.
//! * **B**: no extra header (min 64 = a bare delete); single short adds
//!   dominate the median (76); moderate burst tail; 1025-byte payload cap
//!   (max 1067).
//! * **C**: 15 extra bytes and long-form messages (an options feed);
//!   smallest frame is a short size-reduction (81); a 36-byte two-sided
//!   quote frames at exactly 101 and anchors the median there; heavier
//!   coalescing pushes the mean to ~150 (max 1442).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tn_wire::pitch::UNIT_HEADER_LEN;
use tn_wire::stack::UDP_OVERHEAD;

/// Wire sizes of the message kinds a profile mixes (see `tn_wire::pitch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// 14-byte order delete.
    Delete,
    /// 16-byte short size reduction.
    ReduceShort,
    /// 19-byte short modify.
    ModifyShort,
    /// 26-byte short add order.
    AddShort,
    /// 26-byte execution.
    Executed,
    /// 27-byte long modify.
    ModifyLong,
    /// 30-byte attributed add order (short add plus a 4-byte MPID).
    AddAttributed,
    /// 33-byte short trade.
    TradeShort,
    /// 34-byte long add order.
    AddLong,
    /// 36-byte two-sided quote (options feeds).
    QuoteTwoSided,
    /// 41-byte long trade.
    TradeLong,
}

impl MsgKind {
    /// Encoded size in bytes.
    pub fn wire_len(self) -> usize {
        match self {
            MsgKind::Delete => 14,
            MsgKind::ReduceShort => 16,
            MsgKind::ModifyShort => 19,
            MsgKind::AddShort => 26,
            MsgKind::Executed => 26,
            MsgKind::ModifyLong => 27,
            MsgKind::AddAttributed => 30,
            MsgKind::TradeShort => 33,
            MsgKind::AddLong => 34,
            MsgKind::QuoteTwoSided => 36,
            MsgKind::TradeLong => 41,
        }
    }
}

/// A feed profile: message mix plus framing/coalescing parameters.
#[derive(Debug, Clone)]
pub struct ExchangeProfile {
    /// Display name ("Exchange A").
    pub name: &'static str,
    /// Protocol-specific header bytes beyond Eth+IP+UDP.
    pub extra_header: usize,
    /// Largest frame the feed emits (Table 1 max column).
    pub max_frame: usize,
    /// `(kind, weight)` message mix.
    pub mix: Vec<(MsgKind, f64)>,
    /// Probability that a packet keeps coalescing one more message.
    pub coalesce_p: f64,
    /// Probability of an MTU-filling burst packet.
    pub heavy_burst_p: f64,
}

impl ExchangeProfile {
    /// Exchange A of Table 1 (73 / 92 / 89 / 1514).
    pub fn exchange_a() -> ExchangeProfile {
        ExchangeProfile {
            name: "Exchange A",
            extra_header: 9,
            max_frame: 1514,
            mix: vec![
                (MsgKind::Delete, 0.20),
                (MsgKind::AddShort, 0.13),
                (MsgKind::AddAttributed, 0.35),
                (MsgKind::Executed, 0.09),
                (MsgKind::TradeShort, 0.13),
                (MsgKind::ModifyShort, 0.06),
                (MsgKind::ReduceShort, 0.04),
            ],
            coalesce_p: 0.10,
            heavy_burst_p: 0.0035,
        }
    }

    /// Exchange B of Table 1 (64 / 113 / 76 / 1067).
    pub fn exchange_b() -> ExchangeProfile {
        ExchangeProfile {
            name: "Exchange B",
            extra_header: 0,
            max_frame: 1067,
            mix: vec![
                (MsgKind::Delete, 0.24),
                (MsgKind::AddShort, 0.46),
                (MsgKind::Executed, 0.18),
                (MsgKind::ModifyShort, 0.06),
                (MsgKind::TradeShort, 0.06),
            ],
            coalesce_p: 0.08,
            heavy_burst_p: 0.039,
        }
    }

    /// Exchange C of Table 1 (81 / 151 / 101 / 1442).
    pub fn exchange_c() -> ExchangeProfile {
        ExchangeProfile {
            name: "Exchange C",
            extra_header: 15,
            max_frame: 1442,
            mix: vec![
                (MsgKind::ReduceShort, 0.13),
                (MsgKind::Executed, 0.15),
                (MsgKind::AddLong, 0.25),
                (MsgKind::QuoteTwoSided, 0.16),
                (MsgKind::TradeShort, 0.10),
                (MsgKind::ModifyLong, 0.11),
                (MsgKind::TradeLong, 0.10),
            ],
            coalesce_p: 0.32,
            heavy_burst_p: 0.031,
        }
    }

    /// All three Table 1 profiles, in table order.
    pub fn table1() -> Vec<ExchangeProfile> {
        vec![Self::exchange_a(), Self::exchange_b(), Self::exchange_c()]
    }

    /// Fixed per-frame overhead: network stack + extra header + unit header.
    pub fn frame_overhead(&self) -> usize {
        UDP_OVERHEAD + self.extra_header + UNIT_HEADER_LEN
    }

    /// Largest message payload a frame may carry.
    pub fn max_message_bytes(&self) -> usize {
        self.max_frame - self.frame_overhead()
    }

    fn sample_kind(&self, rng: &mut SmallRng) -> MsgKind {
        let total: f64 = self.mix.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        for &(kind, w) in &self.mix {
            pick -= w;
            if pick <= 0.0 {
                return kind;
            }
        }
        self.mix.last().expect("non-empty mix").0
    }

    /// Sample one frame's length (bytes on the wire).
    pub fn sample_frame_len(&self, rng: &mut SmallRng) -> u64 {
        let cap = self.max_message_bytes();
        let mut bytes = 0usize;
        if rng.gen::<f64>() < self.heavy_burst_p {
            // An MTU-filling burst: pack until nothing more fits.
            loop {
                let k = self.sample_kind(rng).wire_len();
                if bytes + k > cap {
                    break;
                }
                bytes += k;
            }
        } else {
            loop {
                let k = self.sample_kind(rng).wire_len();
                if bytes + k > cap {
                    break;
                }
                bytes += k;
                if rng.gen::<f64>() >= self.coalesce_p {
                    break;
                }
            }
        }
        (self.frame_overhead() + bytes) as u64
    }

    /// Sample `n` frame lengths.
    pub fn sample_frame_lengths(&self, seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample_frame_len(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_stats::Summary;

    fn stats(p: &ExchangeProfile) -> (u64, f64, u64, u64) {
        let mut s = Summary::new();
        s.extend(p.sample_frame_lengths(1234, 200_000));
        (s.min(), s.mean(), s.median(), s.max())
    }

    #[test]
    fn exchange_a_matches_table1_band() {
        let (min, avg, median, max) = stats(&ExchangeProfile::exchange_a());
        // Paper: 73 / 92 / 89 / 1514. The median is pinned exactly: the
        // 89-byte attributed-add frame straddles the 50th percentile.
        assert_eq!(min, 73, "min");
        assert!((85.0..=99.0).contains(&avg), "avg {avg}");
        assert_eq!(median, 89, "median");
        assert!((1480..=1514).contains(&max), "max {max}");
    }

    #[test]
    fn exchange_b_matches_table1_band() {
        let (min, avg, median, max) = stats(&ExchangeProfile::exchange_b());
        // Paper: 64 / 113 / 76 / 1067.
        assert_eq!(min, 64, "min");
        assert!((100.0..=126.0).contains(&avg), "avg {avg}");
        assert!((70..=84).contains(&median), "median {median}");
        assert!((1030..=1067).contains(&max), "max {max}");
    }

    #[test]
    fn exchange_c_matches_table1_band() {
        let (min, avg, median, max) = stats(&ExchangeProfile::exchange_c());
        // Paper: 81 / 151 / 101 / 1442. The median is pinned exactly: the
        // 101-byte two-sided-quote frame straddles the 50th percentile.
        assert_eq!(min, 81, "min");
        assert!((135.0..=167.0).contains(&avg), "avg {avg}");
        assert_eq!(median, 101, "median");
        assert!((1400..=1442).contains(&max), "max {max}");
    }

    #[test]
    fn header_share_matches_paper_claim() {
        // §3: "40 bytes of network headers (plus another 8-16 bytes of
        // protocol-specific headers) represent 25%-40% of the data sent."
        // Per feed the network-header share ranges ~28-46% (Exchange A's
        // small average frame puts it at the top); the cross-feed
        // aggregate lands inside the paper's 25-40% band.
        let mut total_bytes = 0u64;
        let mut total_headers = 0u64;
        for p in ExchangeProfile::table1() {
            let lens = p.sample_frame_lengths(9, 50_000);
            let total: u64 = lens.iter().sum();
            let headers = UDP_OVERHEAD as u64 * lens.len() as u64;
            let share = headers as f64 / total as f64;
            assert!(
                (0.20..=0.50).contains(&share),
                "{}: header share {share:.2}",
                p.name
            );
            total_bytes += total;
            total_headers += headers;
        }
        let aggregate = total_headers as f64 / total_bytes as f64;
        assert!(
            (0.25..=0.40).contains(&aggregate),
            "aggregate share {aggregate:.3}"
        );
    }

    #[test]
    fn profiles_are_deterministic() {
        let p = ExchangeProfile::exchange_b();
        assert_eq!(
            p.sample_frame_lengths(5, 100),
            p.sample_frame_lengths(5, 100)
        );
    }

    #[test]
    fn overhead_accounting() {
        let a = ExchangeProfile::exchange_a();
        assert_eq!(a.frame_overhead(), 42 + 9 + 8);
        assert!(a.max_message_bytes() < 1514);
    }
}
