//! Price-time-priority limit order book.
//!
//! The core data structure of every exchange matching engine. Orders rest
//! at price levels; incoming marketable orders execute against the
//! opposite side best-first, oldest-first. The book reports BBO changes
//! so feed publication can be driven directly off book mutations.

use std::collections::{BTreeMap, HashMap, VecDeque};

use tn_wire::pitch::Side;

/// Integer price in 1e-4 dollars (the PITCH long convention).
pub type Price = u64;
/// Order quantity.
pub type Qty = u32;
/// Exchange-assigned order id.
pub type OrderId = u64;

/// A fill produced by matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// The resting order that traded.
    pub resting_id: OrderId,
    /// Executed quantity.
    pub qty: Qty,
    /// Execution price (the resting order's price).
    pub price: Price,
    /// Remaining quantity on the resting order after this execution.
    pub resting_leaves: Qty,
}

/// Outcome of submitting an order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitResult {
    /// Fills against resting orders, in match order.
    pub executions: Vec<Execution>,
    /// Quantity left posted on the book (0 if fully filled or IOC).
    pub posted: Qty,
}

#[derive(Debug, Clone)]
struct Resting {
    id: OrderId,
    qty: Qty,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Locator {
    side: Side,
    price: Price,
}

/// The book itself. One instance per symbol.
#[derive(Debug, Default)]
pub struct OrderBook {
    /// Bids: highest price first (iterate via `.rev()`).
    bids: BTreeMap<Price, VecDeque<Resting>>,
    /// Asks: lowest price first.
    asks: BTreeMap<Price, VecDeque<Resting>>,
    locators: HashMap<OrderId, Locator>,
}

impl OrderBook {
    /// An empty book.
    pub fn new() -> OrderBook {
        OrderBook::default()
    }

    /// Best bid (price, total displayed size).
    pub fn best_bid(&self) -> Option<(Price, Qty)> {
        self.bids
            .iter()
            .next_back()
            .map(|(&p, level)| (p, level_size(level)))
    }

    /// Best ask (price, total displayed size).
    pub fn best_ask(&self) -> Option<(Price, Qty)> {
        self.asks
            .iter()
            .next()
            .map(|(&p, level)| (p, level_size(level)))
    }

    /// Number of resting orders.
    pub fn open_orders(&self) -> usize {
        self.locators.len()
    }

    /// Total displayed size at a price on a side.
    pub fn depth_at(&self, side: Side, price: Price) -> Qty {
        let level = match side {
            Side::Buy => self.bids.get(&price),
            Side::Sell => self.asks.get(&price),
        };
        level.map(level_size).unwrap_or(0)
    }

    /// Submit a limit order. Marketable quantity executes immediately;
    /// the remainder posts unless `ioc` (immediate-or-cancel) is set.
    pub fn submit(
        &mut self,
        id: OrderId,
        side: Side,
        price: Price,
        mut qty: Qty,
        ioc: bool,
    ) -> SubmitResult {
        assert!(!self.locators.contains_key(&id), "duplicate order id {id}");
        // audit:allow(hotpath-alloc): per-submit execution batch; batch reuse is ROADMAP item 2
        let mut executions = Vec::new();
        // Match against the opposite side while crossed.
        loop {
            if qty == 0 {
                break;
            }
            let best = match side {
                Side::Buy => self
                    .asks
                    .iter()
                    .next()
                    .map(|(&p, _)| p)
                    .filter(|&p| p <= price),
                Side::Sell => self
                    .bids
                    .iter()
                    .next_back()
                    .map(|(&p, _)| p)
                    .filter(|&p| p >= price),
            };
            let Some(level_price) = best else {
                break;
            };
            let levels = match side {
                Side::Buy => &mut self.asks,
                Side::Sell => &mut self.bids,
            };
            // audit:allow(hotpath-unwrap): `best` was read from this side's map just above; the level cannot be gone
            let level = levels.get_mut(&level_price).expect("level exists");
            while qty > 0 {
                let Some(front) = level.front_mut() else {
                    break;
                };
                let traded = qty.min(front.qty);
                front.qty -= traded;
                qty -= traded;
                executions.push(Execution {
                    resting_id: front.id,
                    qty: traded,
                    price: level_price,
                    resting_leaves: front.qty,
                });
                if front.qty == 0 {
                    self.locators.remove(&front.id);
                    level.pop_front();
                }
            }
            if level.is_empty() {
                levels.remove(&level_price);
            }
        }
        let posted = if qty > 0 && !ioc {
            let levels = match side {
                Side::Buy => &mut self.bids,
                Side::Sell => &mut self.asks,
            };
            levels
                .entry(price)
                .or_default()
                .push_back(Resting { id, qty });
            self.locators.insert(id, Locator { side, price });
            qty
        } else {
            0
        };
        SubmitResult { executions, posted }
    }

    /// Cancel an open order; returns its remaining quantity if it existed.
    pub fn cancel(&mut self, id: OrderId) -> Option<Qty> {
        let loc = self.locators.remove(&id)?;
        let levels = match loc.side {
            Side::Buy => &mut self.bids,
            Side::Sell => &mut self.asks,
        };
        let level = levels.get_mut(&loc.price)?;
        let idx = level.iter().position(|r| r.id == id)?;
        let qty = level[idx].qty;
        level.remove(idx);
        if level.is_empty() {
            levels.remove(&loc.price);
        }
        Some(qty)
    }

    /// Reduce an order's quantity in place (keeps time priority).
    /// Returns the new remaining quantity, or `None` if unknown.
    pub fn reduce(&mut self, id: OrderId, by: Qty) -> Option<Qty> {
        let loc = *self.locators.get(&id)?;
        let levels = match loc.side {
            Side::Buy => &mut self.bids,
            Side::Sell => &mut self.asks,
        };
        let level = levels.get_mut(&loc.price)?;
        let idx = level.iter().position(|r| r.id == id)?;
        let r = &mut level[idx];
        if by >= r.qty {
            level.remove(idx);
            if level.is_empty() {
                levels.remove(&loc.price);
            }
            self.locators.remove(&id);
            Some(0)
        } else {
            r.qty -= by;
            Some(r.qty)
        }
    }

    /// Look up an open order's side, price and remaining quantity.
    pub fn lookup(&self, id: OrderId) -> Option<(Side, Price, Qty)> {
        let loc = self.locators.get(&id)?;
        let level = match loc.side {
            Side::Buy => self.bids.get(&loc.price)?,
            Side::Sell => self.asks.get(&loc.price)?,
        };
        let r = level.iter().find(|r| r.id == id)?;
        Some((loc.side, loc.price, r.qty))
    }
}

fn level_size(level: &VecDeque<Resting>) -> Qty {
    level.iter().map(|r| r.qty).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posting_and_bbo() {
        let mut b = OrderBook::new();
        assert_eq!(b.best_bid(), None);
        let r = b.submit(1, Side::Buy, 100_0000, 100, false);
        assert!(r.executions.is_empty());
        assert_eq!(r.posted, 100);
        b.submit(2, Side::Buy, 101_0000, 50, false);
        b.submit(3, Side::Sell, 102_0000, 75, false);
        assert_eq!(b.best_bid(), Some((101_0000, 50)));
        assert_eq!(b.best_ask(), Some((102_0000, 75)));
        assert_eq!(b.open_orders(), 3);
        assert_eq!(b.depth_at(Side::Buy, 100_0000), 100);
    }

    #[test]
    fn price_time_priority_matching() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Sell, 100_0000, 30, false); // first at best
        b.submit(2, Side::Sell, 100_0000, 30, false); // second at best
        b.submit(3, Side::Sell, 99_0000, 30, false); // better price
        let r = b.submit(10, Side::Buy, 100_0000, 70, false);
        // Best price first (99), then time priority at 100 (id 1, then 2).
        assert_eq!(r.executions.len(), 3);
        assert_eq!(
            r.executions[0],
            Execution {
                resting_id: 3,
                qty: 30,
                price: 99_0000,
                resting_leaves: 0
            }
        );
        assert_eq!(
            r.executions[1],
            Execution {
                resting_id: 1,
                qty: 30,
                price: 100_0000,
                resting_leaves: 0
            }
        );
        assert_eq!(
            r.executions[2],
            Execution {
                resting_id: 2,
                qty: 10,
                price: 100_0000,
                resting_leaves: 20
            }
        );
        assert_eq!(r.posted, 0);
        assert_eq!(b.best_ask(), Some((100_0000, 20)));
    }

    #[test]
    fn partial_fill_posts_remainder() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Sell, 100_0000, 40, false);
        let r = b.submit(2, Side::Buy, 100_0000, 100, false);
        assert_eq!(r.executions.len(), 1);
        assert_eq!(r.posted, 60);
        assert_eq!(b.best_bid(), Some((100_0000, 60)));
        assert_eq!(b.best_ask(), None);
    }

    #[test]
    fn ioc_does_not_post() {
        let mut b = OrderBook::new();
        let r = b.submit(1, Side::Buy, 100_0000, 10, true);
        assert_eq!(r.posted, 0);
        assert_eq!(b.open_orders(), 0);
        b.submit(2, Side::Sell, 100_0000, 5, false);
        let r = b.submit(3, Side::Buy, 100_0000, 10, true);
        assert_eq!(r.executions.len(), 1);
        assert_eq!(r.executions[0].qty, 5);
        assert_eq!(r.posted, 0);
    }

    #[test]
    fn no_trade_through_uncrossed_prices() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Sell, 101_0000, 10, false);
        let r = b.submit(2, Side::Buy, 100_0000, 10, false);
        assert!(r.executions.is_empty());
        assert_eq!(r.posted, 10);
        // Both orders rest; the book is locked at no point (bid < ask).
        assert!(b.best_bid().unwrap().0 < b.best_ask().unwrap().0);
    }

    #[test]
    fn cancel_and_reduce() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Buy, 100_0000, 100, false);
        b.submit(2, Side::Buy, 100_0000, 50, false);
        assert_eq!(b.cancel(1), Some(100));
        assert_eq!(b.cancel(1), None); // idempotent
        assert_eq!(b.best_bid(), Some((100_0000, 50)));
        assert_eq!(b.reduce(2, 20), Some(30));
        assert_eq!(b.best_bid(), Some((100_0000, 30)));
        assert_eq!(b.reduce(2, 30), Some(0)); // reduce-to-zero removes
        assert_eq!(b.best_bid(), None);
        assert_eq!(b.reduce(2, 1), None);
        assert_eq!(b.open_orders(), 0);
    }

    #[test]
    fn reduce_keeps_time_priority() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Sell, 100_0000, 100, false);
        b.submit(2, Side::Sell, 100_0000, 100, false);
        b.reduce(1, 50);
        let r = b.submit(3, Side::Buy, 100_0000, 60, false);
        // Order 1 still matches first despite the reduction.
        assert_eq!(r.executions[0].resting_id, 1);
        assert_eq!(r.executions[0].qty, 50);
        assert_eq!(r.executions[1].resting_id, 2);
        assert_eq!(r.executions[1].qty, 10);
    }

    #[test]
    fn lookup_reflects_state() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Sell, 100_0000, 100, false);
        assert_eq!(b.lookup(1), Some((Side::Sell, 100_0000, 100)));
        b.submit(2, Side::Buy, 100_0000, 40, false);
        assert_eq!(b.lookup(1), Some((Side::Sell, 100_0000, 60)));
        b.cancel(1);
        assert_eq!(b.lookup(1), None);
    }

    #[test]
    #[should_panic(expected = "duplicate order id")]
    fn duplicate_ids_rejected() {
        let mut b = OrderBook::new();
        b.submit(1, Side::Buy, 1, 1, false);
        b.submit(1, Side::Buy, 1, 1, false);
    }
}
