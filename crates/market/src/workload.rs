//! Statistical workload models calibrated to the paper's Figure 2.
//!
//! Three models, one per panel:
//!
//! * [`GrowthModel`] — events/day for US options + equities across five
//!   years (Fig 2a): ~500% growth ending around 2×10¹¹ events/day, with
//!   heavy day-to-day variability.
//! * [`IntradayModel`] — per-second BBO event counts for one active
//!   stock's options across one trading day (Fig 2b): zero outside
//!   9:30–16:00, median busy-second > 300k, busiest second ≈ 1.5M.
//! * [`MicroburstModel`] — the busiest second at 100 µs resolution
//!   (Fig 2c): median window ≈ 129 events, busiest ≈ 1066.
//!
//! Each model generates *counts* in closed form (full-day/multi-year
//! figures never need event-level simulation) and can expand any window
//! into event times for event-level network simulation; a test checks the
//! two views agree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Trading session bounds, seconds since midnight (9:30–16:00 ET).
pub const SESSION_OPEN_SEC: u64 = 34_200;
/// Session close.
pub const SESSION_CLOSE_SEC: u64 = 57_600;
/// Session length in seconds.
pub const SESSION_SECS: u64 = SESSION_CLOSE_SEC - SESSION_OPEN_SEC;

/// Sample a standard normal via Box–Muller (avoids a distribution crate).
fn std_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample Poisson(λ). Exact (Knuth) for small λ, normal approximation for
/// large λ — event counts here reach 10⁶ per window, where the
/// approximation error is far below calibration tolerances.
fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let sample = lambda + lambda.sqrt() * std_normal(rng);
    sample.max(0.0).round() as u64
}

// ---------------------------------------------------------------------
// Fig 2a — multi-year growth
// ---------------------------------------------------------------------

/// One trading day's aggregate event count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayPoint {
    /// Fractional year (2020.0 ..).
    pub year: f64,
    /// Events that day across US options + equities.
    pub events: u64,
}

/// Multi-year growth model for Fig 2a.
#[derive(Debug, Clone, Copy)]
pub struct GrowthModel {
    /// Events/day at the start of the series.
    pub start_events_per_day: f64,
    /// Events/day at the end (paper: ≈2×10¹¹ in 2024, ≈5× the start).
    pub end_events_per_day: f64,
    /// First year (e.g. 2020.0).
    pub start_year: f64,
    /// Number of years.
    pub years: f64,
    /// Day-to-day lognormal sigma (the visible thickness of Fig 2a).
    pub day_sigma: f64,
}

impl Default for GrowthModel {
    fn default() -> GrowthModel {
        GrowthModel {
            start_events_per_day: 4.0e10,
            end_events_per_day: 2.0e11,
            start_year: 2020.0,
            years: 5.0,
            day_sigma: 0.25,
        }
    }
}

impl GrowthModel {
    /// Generate one point per trading day (252/year).
    pub fn series(&self, seed: u64) -> Vec<DayPoint> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let days = (self.years * 252.0) as usize;
        let growth = (self.end_events_per_day / self.start_events_per_day).ln();
        (0..days)
            .map(|d| {
                let frac = d as f64 / (self.years * 252.0);
                let trend = self.start_events_per_day * (growth * frac).exp();
                let noise = (self.day_sigma * std_normal(&mut rng)
                    - self.day_sigma * self.day_sigma / 2.0)
                    .exp();
                DayPoint {
                    year: self.start_year + frac * self.years,
                    events: (trend * noise) as u64,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Fig 2b — intraday per-second counts
// ---------------------------------------------------------------------

/// Intraday model: U-shaped base intensity with lognormal burst
/// multipliers and a heavy-tailed spike process.
#[derive(Debug, Clone, Copy)]
pub struct IntradayModel {
    /// Mid-session base rate (events/sec).
    pub base_rate: f64,
    /// Extra rate at the open, decaying exponentially.
    pub open_boost: f64,
    /// Open-decay time constant (seconds).
    pub open_tau: f64,
    /// Extra rate at the close, growing exponentially into the bell.
    pub close_boost: f64,
    /// Close-ramp time constant (seconds).
    pub close_tau: f64,
    /// Per-second lognormal sigma.
    pub sigma: f64,
    /// Per-second probability of a spike.
    pub spike_prob: f64,
    /// Spike multiplier Pareto shape (heavier < 2).
    pub spike_alpha: f64,
    /// Hard ceiling on a single second (events/sec; keeps the max within
    /// Fig 2b's ≈1.5M band rather than letting the Pareto tail run away).
    pub cap: f64,
}

impl Default for IntradayModel {
    fn default() -> IntradayModel {
        IntradayModel {
            base_rate: 310_000.0,
            open_boost: 260_000.0,
            open_tau: 1200.0,
            close_boost: 160_000.0,
            close_tau: 900.0,
            sigma: 0.18,
            spike_prob: 0.004,
            spike_alpha: 1.6,
            cap: 1_500_000.0,
        }
    }
}

impl IntradayModel {
    /// Expected rate at `sec` since midnight (0 outside the session).
    pub fn base_at(&self, sec: u64) -> f64 {
        if !(SESSION_OPEN_SEC..SESSION_CLOSE_SEC).contains(&sec) {
            return 0.0;
        }
        let since_open = (sec - SESSION_OPEN_SEC) as f64;
        let to_close = (SESSION_CLOSE_SEC - sec) as f64;
        self.base_rate
            + self.open_boost * (-since_open / self.open_tau).exp()
            + self.close_boost * (-to_close / self.close_tau).exp()
    }

    /// Per-second counts for a whole day (86,400 entries; zero outside
    /// the session).
    pub fn per_second_counts(&self, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..86_400u64)
            .map(|sec| {
                let base = self.base_at(sec);
                if base == 0.0 {
                    return 0;
                }
                let ln_mult =
                    (self.sigma * std_normal(&mut rng) - self.sigma * self.sigma / 2.0).exp();
                let spike = if rng.gen::<f64>() < self.spike_prob {
                    // Pareto(α) with minimum 1.5x.
                    1.5 * rng.gen_range(1e-9f64..1.0).powf(-1.0 / self.spike_alpha)
                } else {
                    1.0
                };
                let lambda = (base * ln_mult * spike).min(self.cap);
                poisson(&mut rng, lambda)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Fig 2c — 100 µs microbursts within one second
// ---------------------------------------------------------------------

/// Microburst model: distributes one second's events over fixed windows
/// with lognormal intensity modulation (self-excitation at the 100 µs
/// scale shows up as a heavy upper tail).
#[derive(Debug, Clone, Copy)]
pub struct MicroburstModel {
    /// Total events in the second.
    pub total_events: u64,
    /// Number of windows (10,000 × 100 µs = 1 s).
    pub windows: usize,
    /// Lognormal sigma of per-window intensity.
    pub sigma: f64,
}

impl Default for MicroburstModel {
    fn default() -> MicroburstModel {
        MicroburstModel {
            total_events: 1_450_000,
            windows: 10_000,
            sigma: 0.56,
        }
    }
}

impl MicroburstModel {
    /// Per-window event counts.
    pub fn window_counts(&self, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mean = self.total_events as f64 / self.windows as f64;
        // Median of a lognormal is exp(mu); keep the *mean* at `mean` by
        // setting mu = ln(mean) - sigma^2/2.
        let mu = mean.ln() - self.sigma * self.sigma / 2.0;
        (0..self.windows)
            .map(|_| {
                let lambda = (mu + self.sigma * std_normal(&mut rng)).exp();
                poisson(&mut rng, lambda)
            })
            .collect()
    }

    /// Expand window counts into event times (picoseconds within the
    /// second), uniformly placed inside each window — the event-level
    /// view used by network simulations.
    pub fn event_times_ps(&self, seed: u64) -> Vec<u64> {
        let counts = self.window_counts(seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let window_ps = 1_000_000_000_000u64 / self.windows as u64;
        let mut times = Vec::with_capacity(counts.iter().sum::<u64>() as usize);
        for (w, &c) in counts.iter().enumerate() {
            let start = w as u64 * window_ps;
            for _ in 0..c {
                times.push(start + rng.gen_range(0..window_ps));
            }
        }
        times.sort_unstable();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_stats::Summary;

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let small: u64 = (0..n).map(|_| poisson(&mut rng, 3.0)).sum();
        let small_mean = small as f64 / n as f64;
        assert!((2.9..3.1).contains(&small_mean), "mean {small_mean}");
        let large: u64 = (0..n).map(|_| poisson(&mut rng, 5000.0)).sum();
        let large_mean = large as f64 / n as f64;
        assert!((4990.0..5010.0).contains(&large_mean), "mean {large_mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn growth_model_hits_anchors() {
        // Fig 2a: ~4x10^10 -> ~2x10^11 events/day over 5 years (≈500%).
        let series = GrowthModel::default().series(42);
        assert_eq!(series.len(), 1260);
        let head: f64 = series[..60].iter().map(|p| p.events as f64).sum::<f64>() / 60.0;
        let tail: f64 = series[series.len() - 60..]
            .iter()
            .map(|p| p.events as f64)
            .sum::<f64>()
            / 60.0;
        assert!((3.0e10..5.5e10).contains(&head), "head {head:e}");
        assert!((1.6e11..2.6e11).contains(&tail), "tail {tail:e}");
        let growth = tail / head;
        assert!((4.0..6.5).contains(&growth), "growth {growth}");
        // Day-to-day variability is visible (max/min over a quarter > 1.5).
        let q: Vec<f64> = series[..63].iter().map(|p| p.events as f64).collect();
        let ratio =
            q.iter().cloned().fold(0.0, f64::max) / q.iter().cloned().fold(f64::MAX, f64::min);
        assert!(ratio > 1.5, "ratio {ratio}");
        assert!((series[0].year - 2020.0).abs() < 0.01);
        assert!(series.last().unwrap().year < 2025.01);
    }

    #[test]
    fn intraday_model_matches_fig2b_statistics() {
        let counts = IntradayModel::default().per_second_counts(7);
        assert_eq!(counts.len(), 86_400);
        // Zero outside the session.
        assert!(counts[..SESSION_OPEN_SEC as usize].iter().all(|&c| c == 0));
        assert!(counts[SESSION_CLOSE_SEC as usize..].iter().all(|&c| c == 0));
        let mut s = Summary::new();
        s.extend(counts.iter().copied().filter(|&c| c > 0));
        let median = s.median();
        let max = s.max();
        // Paper: "The median second has over 300k events, and the busiest
        // second contains 1.5M events."
        assert!(median > 300_000, "median {median}");
        assert!(median < 450_000, "median {median}");
        assert!((1_200_000..=1_550_000).contains(&max), "max {max}");
    }

    #[test]
    fn intraday_shape_is_u_like() {
        let m = IntradayModel::default();
        let open = m.base_at(SESSION_OPEN_SEC);
        let mid = m.base_at((SESSION_OPEN_SEC + SESSION_CLOSE_SEC) / 2);
        let close = m.base_at(SESSION_CLOSE_SEC - 1);
        assert!(open > mid * 1.3, "open {open} vs mid {mid}");
        assert!(close > mid * 1.2, "close {close} vs mid {mid}");
        assert_eq!(m.base_at(0), 0.0);
        assert_eq!(m.base_at(SESSION_CLOSE_SEC), 0.0);
    }

    #[test]
    fn microburst_model_matches_fig2c_statistics() {
        let counts = MicroburstModel::default().window_counts(11);
        assert_eq!(counts.len(), 10_000);
        let mut s = Summary::new();
        s.extend(counts.iter().copied());
        let median = s.median();
        let max = s.max();
        // Paper: "The median 100 microsecond interval contains 129 events,
        // and the busiest interval contains 1066 events."
        assert!((100..=160).contains(&median), "median {median}");
        assert!((700..=1600).contains(&max), "max {max}");
        // Total matches the busiest second's magnitude.
        let total: u64 = s.sum() as u64;
        assert!((1_200_000..=1_700_000).contains(&total), "total {total}");
    }

    #[test]
    fn event_times_agree_with_window_counts() {
        let m = MicroburstModel {
            total_events: 50_000,
            windows: 1000,
            sigma: 0.5,
        };
        let counts = m.window_counts(3);
        let times = m.event_times_ps(3);
        assert_eq!(times.len() as u64, counts.iter().sum::<u64>());
        // Recount the events into windows: must match exactly.
        let window_ps = 1_000_000_000_000u64 / 1000;
        let mut recount = vec![0u64; 1000];
        for &t in &times {
            recount[(t / window_ps) as usize] += 1;
        }
        assert_eq!(recount, counts);
        // Sorted.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn determinism_per_seed() {
        let m = IntradayModel::default();
        assert_eq!(m.per_second_counts(5), m.per_second_counts(5));
        assert_ne!(m.per_second_counts(5), m.per_second_counts(6));
        let g = GrowthModel::default();
        assert_eq!(g.series(5), g.series(5));
    }
}
